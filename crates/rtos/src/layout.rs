//! The physical memory map of the simulated platform.
//!
//! Siskiyou Peak uses a flat physical addressing model with memory-mapped
//! I/O (§4); every component below lives at a fixed, documented address so
//! the boot code, the EA-MPU rules, and the tests all agree.

/// Base of the interrupt descriptor table (64 vectors × 4 bytes).
pub const IDT_BASE: u32 = 0x0000_0040;
/// Number of IDT vectors.
pub const IDT_VECTORS: u32 = 64;

/// Base of the kernel's guest-code region: interrupt save stubs, the
/// context-restore stub, and the idle loop live here.
pub const KERNEL_BASE: u32 = 0x0000_0400;
/// Size of the kernel guest-code region.
pub const KERNEL_CODE_LEN: u32 = 0x0000_0400;
/// The kernel firmware trap address: all interrupt stubs branch here and
/// the host-side kernel takes over.
pub const KERNEL_TRAP: u32 = KERNEL_BASE + KERNEL_CODE_LEN - 4;

/// Top of the kernel/idle stack (used while no task context is live).
pub const KERNEL_STACK_TOP: u32 = 0x0000_1000;

/// Base of the trusted-components guest-code region (TyTAN platform only:
/// Int Mux, entry thunks); sized generously.
pub const TRUSTED_BASE: u32 = 0x0000_1000;
/// Size of the trusted-components region.
pub const TRUSTED_CODE_LEN: u32 = 0x0000_1000;

/// Base of the trusted-components *data* area: the Int Mux busy flag and
/// the interrupt dispatch table live here, protected by a static EA-MPU
/// rule (writable by trusted code only).
pub const TRUSTED_DATA_BASE: u32 = 0x0000_3d00;
/// Length of the trusted data area.
pub const TRUSTED_DATA_LEN: u32 = 0x200;
/// The Int Mux re-entrancy/busy flag.
pub const INTMUX_BUSY_FLAG: u32 = TRUSTED_DATA_BASE;
/// The Int Mux handler dispatch table (one word per IDT vector).
pub const INT_DISPATCH_TABLE: u32 = TRUSTED_DATA_BASE + 0x100;

/// Start of the dynamic task heap: the loader allocates task memory here.
pub const HEAP_BASE: u32 = 0x0000_4000;
/// End of the dynamic task heap (exclusive); RAM above is free for tests.
pub const HEAP_END: u32 = 0x000e_0000;

/// Timer MMIO base.
pub const TIMER_BASE: u32 = 0xf000_0000;
/// Pedal-position sensor MMIO base (use-case Figure 2).
pub const PEDAL_BASE: u32 = 0xf000_0100;
/// Radar range sensor MMIO base (use-case Figure 2).
pub const RADAR_BASE: u32 = 0xf000_0110;
/// UART MMIO base.
pub const UART_BASE: u32 = 0xf000_0200;
/// Engine actuator MMIO base (use-case Figure 2).
pub const ACTUATOR_BASE: u32 = 0xf000_0300;

/// IRQ vector of the RTOS tick timer.
pub const TICK_VECTOR: u8 = 32;
/// Software-interrupt vector for kernel syscalls (yield/delay/suspend,
/// queue operations).
pub const SYSCALL_VECTOR: u8 = 0x21;
/// Software-interrupt vector invoking TyTAN's secure IPC proxy (§4).
pub const IPC_VECTOR: u8 = 0x30;

/// Number of saved words in an interrupt frame: `r0..r6` pushed by the
/// save stub plus `EIP` and `EFLAGS` pushed by the exception engine.
pub const FRAME_WORDS: u32 = 9;

/// Byte offset, from the post-save stack pointer, of saved register `r<i>`
/// (`i` in `0..=6`) within an interrupt frame.
///
/// The stub pushes `r0` first and `r6` last, so `r6` sits at the top.
pub fn frame_reg_offset(index: u32) -> u32 {
    assert!(index <= 6, "only r0..r6 are in the frame");
    (6 - index) * 4
}

/// Byte offset of the saved `EIP` within an interrupt frame.
pub const FRAME_EIP_OFFSET: u32 = 7 * 4;
/// Byte offset of the saved `EFLAGS` within an interrupt frame.
pub const FRAME_EFLAGS_OFFSET: u32 = 8 * 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        // Evaluated via runtime values so the checks stay meaningful if
        // the constants become configurable.
        let bounds = [
            (IDT_BASE, IDT_BASE + IDT_VECTORS * 4),
            (KERNEL_BASE, KERNEL_BASE + KERNEL_CODE_LEN),
            (TRUSTED_BASE, TRUSTED_BASE + TRUSTED_CODE_LEN),
            (TRUSTED_DATA_BASE, TRUSTED_DATA_BASE + TRUSTED_DATA_LEN),
            (HEAP_BASE, HEAP_END),
        ];
        for pair in bounds.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "{pair:?} overlap");
        }
        for (start, end) in bounds {
            assert!(start < end, "empty region {start:#x}..{end:#x}");
        }
    }

    #[test]
    fn trap_address_is_inside_kernel_region() {
        let region = (KERNEL_BASE, KERNEL_BASE + KERNEL_CODE_LEN);
        let addr = KERNEL_TRAP;
        assert!(
            addr >= region.0 && addr < region.1,
            "{addr:#x} outside kernel region"
        );
    }

    #[test]
    fn frame_offsets() {
        assert_eq!(frame_reg_offset(6), 0);
        assert_eq!(frame_reg_offset(0), 24);
        assert_eq!(FRAME_EIP_OFFSET, 28);
        assert_eq!(FRAME_EFLAGS_OFFSET, 32);
        assert_eq!(FRAME_WORDS * 4, 36);
    }

    #[test]
    #[should_panic(expected = "r0..r6")]
    fn frame_offset_rejects_sp() {
        let _ = frame_reg_offset(7);
    }
}
