//! Task control blocks.

use eampu::Region;
use std::fmt;

/// A handle to a task slot in the kernel's task table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskHandle(pub(crate) usize);

impl TaskHandle {
    /// The raw slot index (stable for the task's lifetime).
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs a handle from a raw index (test harnesses and tools;
    /// the kernel only honours handles of live tasks).
    pub fn from_index(index: usize) -> Self {
        TaskHandle(index)
    }
}

impl fmt::Display for TaskHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

/// Whether a task is a normal task (OS-accessible) or a secure task
/// (EA-MPU isolated from all other software including the OS, §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Isolated from other tasks but accessible to the OS.
    Normal,
    /// Isolated from everything including the OS.
    Secure,
}

/// Scheduling state of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Eligible to run.
    Ready,
    /// Currently executing on the core.
    Running,
    /// Sleeping until the given tick.
    Delayed {
        /// Absolute tick at which the task becomes ready again.
        until_tick: u64,
    },
    /// Waiting on a queue operation.
    BlockedOnQueue,
    /// Loaded but deliberately not executing (§4 "task suspending").
    Suspended,
}

/// Parameters for creating a task.
#[derive(Debug, Clone)]
pub struct TcbParams {
    /// Human-readable name.
    pub name: String,
    /// Scheduling priority; higher value runs first.
    pub priority: u8,
    /// Absolute address of the task's entry point.
    pub entry: u32,
    /// Top of the task's stack (stacks grow down).
    pub stack_top: u32,
    /// The task's code region (for EA-MPU rules and sender identification).
    pub code: Region,
    /// The task's data region (data + bss + stack).
    pub data: Region,
    /// Normal or secure.
    pub kind: TaskKind,
}

/// A task control block.
#[derive(Debug, Clone)]
pub struct Tcb {
    /// Creation parameters.
    pub params: TcbParams,
    /// Current scheduling state.
    pub state: TaskState,
    /// Saved stack pointer (points at the interrupt frame once started).
    pub saved_sp: u32,
    /// Whether the task has run at least once (controls the start vs
    /// resume path on dispatch).
    pub started: bool,
    /// Number of times the task has been given the CPU.
    pub dispatches: u64,
    /// Pending syscall return value to patch into the saved frame's `r0`
    /// when the task next resumes (normal tasks only).
    pub pending_result: Option<u32>,
}

impl Tcb {
    /// Creates a ready, never-started TCB.
    pub fn new(params: TcbParams) -> Self {
        let saved_sp = params.stack_top;
        Tcb {
            params,
            state: TaskState::Ready,
            saved_sp,
            started: false,
            dispatches: 0,
            pending_result: None,
        }
    }

    /// The task's name.
    pub fn name(&self) -> &str {
        &self.params.name
    }

    /// Whether the task is a secure task.
    pub fn is_secure(&self) -> bool {
        self.params.kind == TaskKind::Secure
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TcbParams {
        TcbParams {
            name: "t".into(),
            priority: 1,
            entry: 0x4000,
            stack_top: 0x5000,
            code: Region::new(0x4000, 0x100),
            data: Region::new(0x4100, 0xf00),
            kind: TaskKind::Normal,
        }
    }

    #[test]
    fn new_tcb_is_ready_and_unstarted() {
        let tcb = Tcb::new(params());
        assert_eq!(tcb.state, TaskState::Ready);
        assert!(!tcb.started);
        assert_eq!(tcb.saved_sp, 0x5000);
        assert_eq!(tcb.dispatches, 0);
    }

    #[test]
    fn secure_flag() {
        let mut p = params();
        p.kind = TaskKind::Secure;
        assert!(Tcb::new(p).is_secure());
        assert!(!Tcb::new(params()).is_secure());
    }

    #[test]
    fn handle_display() {
        assert_eq!(TaskHandle(3).to_string(), "task#3");
        assert_eq!(TaskHandle(3).index(), 3);
    }
}
