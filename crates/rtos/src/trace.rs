//! Scheduling trace for real-time analysis.
//!
//! Table 1 of the paper verifies that tasks keep their deadlines while a
//! new task loads; the trace records every scheduling decision with its
//! cycle timestamp so experiments can compute achieved task frequencies
//! and check deadlines offline.
//!
//! The trace is a *bounded* drop-oldest ring: long-running platforms trace
//! forever in constant memory, keeping the newest
//! [`SchedTrace::capacity`] events and counting what they shed in
//! [`SchedTrace::dropped`]. Every consumer in this workspace analyses a
//! recent bounded window (or clears the trace first), so drop-oldest is
//! the correct policy.
//!
//! A [`SchedTrace`] can additionally forward every event onto the shared
//! cross-layer sink (see [`SchedTrace::set_sink`]), where it appears on the
//! `rtos` track of the Chrome trace export next to the emulator's IRQ spans
//! and the core layer's loader/IPC/attestation markers.

use crate::tcb::TaskHandle;
use std::collections::VecDeque;
use tytan_trace::{EventKind, Layer, Tracer};

/// What happened at a trace point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedEventKind {
    /// A task was given the CPU.
    Dispatched(TaskHandle),
    /// The idle loop was entered (no ready task).
    Idle,
    /// A kernel tick was processed.
    Tick(u64),
    /// A task was created.
    Created(TaskHandle),
    /// A task was deleted.
    Deleted(TaskHandle),
    /// A task blocked (delay or queue).
    Blocked(TaskHandle),
    /// A task was suspended.
    Suspended(TaskHandle),
    /// A task was resumed from suspension.
    Resumed(TaskHandle),
}

/// A timestamped scheduling event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedEvent {
    /// Cycle counter at the event.
    pub cycle: u64,
    /// The event.
    pub kind: SchedEventKind,
}

/// Default ring capacity: comfortably covers the longest analysis window
/// any experiment uses (a few million cycles of scheduling activity) while
/// bounding a day-long run to the same memory.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// A bounded scheduling trace (drop-oldest ring).
///
/// # Examples
///
/// ```
/// use rtos::{SchedEvent, SchedEventKind, SchedTrace, TaskHandle};
///
/// let mut trace = SchedTrace::new();
/// trace.record(100, SchedEventKind::Idle);
/// assert_eq!(trace.events().len(), 1);
/// assert_eq!(trace.dropped(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct SchedTrace {
    events: VecDeque<SchedEvent>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
    sink: Option<Tracer>,
}

impl Default for SchedTrace {
    fn default() -> Self {
        SchedTrace::new()
    }
}

impl SchedTrace {
    /// Creates an enabled, empty trace with the default capacity.
    pub fn new() -> Self {
        SchedTrace::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// Creates an enabled, empty trace keeping at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be nonzero");
        SchedTrace {
            events: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
            enabled: true,
            sink: None,
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events dropped to make room for newer ones.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Enables or disables recording (disabled traces cost nothing).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Forwards every subsequently recorded event onto the shared
    /// cross-layer sink as `rtos`-layer events: dispatches land on the
    /// dispatched task's track, ticks and idle entries on the kernel's main
    /// track. The local ring keeps recording independently.
    pub fn set_sink(&mut self, tracer: Tracer) {
        self.sink = Some(tracer);
    }

    /// Records an event if recording is enabled, dropping the oldest
    /// retained event when the ring is full.
    pub fn record(&mut self, cycle: u64, kind: SchedEventKind) {
        if !self.enabled {
            return;
        }
        if let Some(tracer) = &self.sink {
            forward(tracer, cycle, kind);
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped = self.dropped.saturating_add(1);
        }
        self.events.push_back(SchedEvent { cycle, kind });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<SchedEvent> {
        self.events.iter().copied().collect()
    }

    /// Clears the trace and resets the dropped count.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }

    /// Counts dispatches of `task` within the half-open cycle window.
    ///
    /// Only retained events are counted: a window reaching further back
    /// than the ring's oldest event undercounts (check
    /// [`SchedTrace::dropped`] when that matters).
    pub fn dispatches_in_window(&self, task: TaskHandle, start: u64, end: u64) -> u64 {
        self.events
            .iter()
            .filter(|e| {
                e.cycle >= start
                    && e.cycle < end
                    && matches!(e.kind, SchedEventKind::Dispatched(h) if h == task)
            })
            .count() as u64
    }

    /// The achieved dispatch frequency of `task` in the window, in events
    /// per 1,000,000 cycles (i.e. kHz on a 1 GHz clock; divide by the
    /// actual clock to get physical units).
    pub fn dispatch_rate_per_mcycle(&self, task: TaskHandle, start: u64, end: u64) -> f64 {
        if end <= start {
            return 0.0;
        }
        let n = self.dispatches_in_window(task, start, end) as f64;
        n * 1_000_000.0 / (end - start) as f64
    }
}

/// Maps a scheduling event onto the shared sink's event vocabulary.
fn forward(tracer: &Tracer, cycle: u64, kind: SchedEventKind) {
    let (tid, event) = match kind {
        SchedEventKind::Dispatched(h) => (h.index() as u32, EventKind::Mark("dispatch")),
        SchedEventKind::Idle => (0, EventKind::Mark("idle")),
        SchedEventKind::Tick(n) => (0, EventKind::Value("tick", n)),
        SchedEventKind::Created(h) => (h.index() as u32, EventKind::Mark("task_created")),
        SchedEventKind::Deleted(h) => (h.index() as u32, EventKind::Mark("task_deleted")),
        SchedEventKind::Blocked(h) => (h.index() as u32, EventKind::Mark("task_blocked")),
        SchedEventKind::Suspended(h) => (h.index() as u32, EventKind::Mark("task_suspended")),
        SchedEventKind::Resumed(h) => (h.index() as u32, EventKind::Mark("task_resumed")),
    };
    tracer.emit(Layer::Rtos, tid, cycle, event);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tytan_trace::RingRecorder;

    #[test]
    fn records_and_filters() {
        let mut t = SchedTrace::new();
        let a = TaskHandle(0);
        let b = TaskHandle(1);
        t.record(10, SchedEventKind::Dispatched(a));
        t.record(20, SchedEventKind::Dispatched(b));
        t.record(30, SchedEventKind::Dispatched(a));
        t.record(40, SchedEventKind::Dispatched(a));
        assert_eq!(t.dispatches_in_window(a, 0, 35), 2);
        assert_eq!(t.dispatches_in_window(a, 0, 100), 3);
        assert_eq!(t.dispatches_in_window(b, 0, 100), 1);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = SchedTrace::new();
        t.set_enabled(false);
        t.record(1, SchedEventKind::Idle);
        assert!(t.events().is_empty());
    }

    #[test]
    fn rate_computation() {
        let mut t = SchedTrace::new();
        let a = TaskHandle(0);
        for i in 0..10 {
            t.record(i * 100, SchedEventKind::Dispatched(a));
        }
        // 10 dispatches in 1000 cycles = 10_000 per mcycle.
        let rate = t.dispatch_rate_per_mcycle(a, 0, 1000);
        assert!((rate - 10_000.0).abs() < 1e-9);
        assert_eq!(t.dispatch_rate_per_mcycle(a, 5, 5), 0.0);
    }

    #[test]
    fn clear_empties() {
        let mut t = SchedTrace::new();
        t.record(1, SchedEventKind::Idle);
        t.clear();
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_drops_oldest_with_accounting() {
        let mut t = SchedTrace::with_capacity(3);
        for i in 0..10u64 {
            t.record(i, SchedEventKind::Tick(i));
        }
        let cycles: Vec<u64> = t.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![7, 8, 9]);
        assert_eq!(t.dropped(), 7);
        // Window analysis over the retained suffix still works.
        let a = TaskHandle(0);
        t.record(11, SchedEventKind::Dispatched(a));
        assert_eq!(t.dispatches_in_window(a, 0, 100), 1);
    }

    #[test]
    fn clear_after_wrap_restarts_accounting() {
        let mut t = SchedTrace::with_capacity(2);
        for i in 0..5u64 {
            t.record(i, SchedEventKind::Idle);
        }
        assert_eq!(t.dropped(), 3);
        t.clear();
        assert_eq!(t.dropped(), 0);
        t.record(9, SchedEventKind::Idle);
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _ = SchedTrace::with_capacity(0);
    }

    #[test]
    fn sink_receives_rtos_layer_events() {
        let ring = Arc::new(RingRecorder::new(16));
        let mut t = SchedTrace::new();
        t.set_sink(Tracer::new(ring.clone()));
        t.record(100, SchedEventKind::Dispatched(TaskHandle(3)));
        t.record(200, SchedEventKind::Tick(7));
        t.record(300, SchedEventKind::Idle);

        let events = ring.events();
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.layer == Layer::Rtos));
        assert_eq!(events[0].tid, 3, "dispatch lands on the task's track");
        assert_eq!(events[0].kind, EventKind::Mark("dispatch"));
        assert_eq!(events[1].kind, EventKind::Value("tick", 7));
        assert_eq!(events[2].kind, EventKind::Mark("idle"));
    }
}
