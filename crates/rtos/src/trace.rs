//! Scheduling trace for real-time analysis.
//!
//! Table 1 of the paper verifies that tasks keep their deadlines while a
//! new task loads; the trace records every scheduling decision with its
//! cycle timestamp so experiments can compute achieved task frequencies
//! and check deadlines offline.

use crate::tcb::TaskHandle;

/// What happened at a trace point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedEventKind {
    /// A task was given the CPU.
    Dispatched(TaskHandle),
    /// The idle loop was entered (no ready task).
    Idle,
    /// A kernel tick was processed.
    Tick(u64),
    /// A task was created.
    Created(TaskHandle),
    /// A task was deleted.
    Deleted(TaskHandle),
    /// A task blocked (delay or queue).
    Blocked(TaskHandle),
    /// A task was suspended.
    Suspended(TaskHandle),
    /// A task was resumed from suspension.
    Resumed(TaskHandle),
}

/// A timestamped scheduling event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedEvent {
    /// Cycle counter at the event.
    pub cycle: u64,
    /// The event.
    pub kind: SchedEventKind,
}

/// An append-only scheduling trace.
///
/// # Examples
///
/// ```
/// use rtos::{SchedEvent, SchedEventKind, SchedTrace, TaskHandle};
///
/// let mut trace = SchedTrace::new();
/// trace.record(100, SchedEventKind::Idle);
/// assert_eq!(trace.events().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SchedTrace {
    events: Vec<SchedEvent>,
    enabled: bool,
}

impl SchedTrace {
    /// Creates an enabled, empty trace.
    pub fn new() -> Self {
        SchedTrace {
            events: Vec::new(),
            enabled: true,
        }
    }

    /// Enables or disables recording (disabled traces cost nothing).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Appends an event if recording is enabled.
    pub fn record(&mut self, cycle: u64, kind: SchedEventKind) {
        if self.enabled {
            self.events.push(SchedEvent { cycle, kind });
        }
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[SchedEvent] {
        &self.events
    }

    /// Clears the trace.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Counts dispatches of `task` within the half-open cycle window.
    pub fn dispatches_in_window(&self, task: TaskHandle, start: u64, end: u64) -> u64 {
        self.events
            .iter()
            .filter(|e| {
                e.cycle >= start
                    && e.cycle < end
                    && matches!(e.kind, SchedEventKind::Dispatched(h) if h == task)
            })
            .count() as u64
    }

    /// The achieved dispatch frequency of `task` in the window, in events
    /// per 1,000,000 cycles (i.e. kHz on a 1 GHz clock; divide by the
    /// actual clock to get physical units).
    pub fn dispatch_rate_per_mcycle(&self, task: TaskHandle, start: u64, end: u64) -> f64 {
        if end <= start {
            return 0.0;
        }
        let n = self.dispatches_in_window(task, start, end) as f64;
        n * 1_000_000.0 / (end - start) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_filters() {
        let mut t = SchedTrace::new();
        let a = TaskHandle(0);
        let b = TaskHandle(1);
        t.record(10, SchedEventKind::Dispatched(a));
        t.record(20, SchedEventKind::Dispatched(b));
        t.record(30, SchedEventKind::Dispatched(a));
        t.record(40, SchedEventKind::Dispatched(a));
        assert_eq!(t.dispatches_in_window(a, 0, 35), 2);
        assert_eq!(t.dispatches_in_window(a, 0, 100), 3);
        assert_eq!(t.dispatches_in_window(b, 0, 100), 1);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = SchedTrace::new();
        t.set_enabled(false);
        t.record(1, SchedEventKind::Idle);
        assert!(t.events().is_empty());
    }

    #[test]
    fn rate_computation() {
        let mut t = SchedTrace::new();
        let a = TaskHandle(0);
        for i in 0..10 {
            t.record(i * 100, SchedEventKind::Dispatched(a));
        }
        // 10 dispatches in 1000 cycles = 10_000 per mcycle.
        let rate = t.dispatch_rate_per_mcycle(a, 0, 1000);
        assert!((rate - 10_000.0).abs() < 1e-9);
        assert_eq!(t.dispatch_rate_per_mcycle(a, 5, 5), 0.0);
    }

    #[test]
    fn clear_empties() {
        let mut t = SchedTrace::new();
        t.record(1, SchedEventKind::Idle);
        t.clear();
        assert!(t.events().is_empty());
    }
}
