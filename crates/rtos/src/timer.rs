//! Software timers: alarms and time-outs.
//!
//! Property (5) of the paper's real-time OS requirements (§4). Timers fire
//! at tick granularity and execute a bounded [`TimerAction`], keeping the
//! tick handler's execution time bounded.

use crate::queue::QueueId;
use crate::tcb::TaskHandle;

/// Identifier of a software timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub(crate) usize);

impl TimerId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// The bounded action a timer performs when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerAction {
    /// Resume a suspended task.
    ResumeTask(TaskHandle),
    /// Send a value to a queue (dropped if the queue is full).
    QueueSend {
        /// Destination queue.
        queue: QueueId,
        /// The value to send.
        value: u32,
    },
    /// Record only (the trace carries the firing).
    Noop,
}

/// A one-shot or periodic software timer.
#[derive(Debug, Clone)]
pub struct SoftTimer {
    /// Ticks between firings.
    pub period_ticks: u64,
    /// Absolute tick of the next firing.
    pub next_fire_tick: u64,
    /// Whether the timer re-arms after firing.
    pub periodic: bool,
    /// What to do on fire.
    pub action: TimerAction,
    /// Whether the timer is armed.
    pub active: bool,
    /// How many times the timer has fired.
    pub fired: u64,
}

impl SoftTimer {
    /// Creates an armed timer first firing at `now + period_ticks`.
    pub fn new(now_tick: u64, period_ticks: u64, periodic: bool, action: TimerAction) -> Self {
        SoftTimer {
            period_ticks: period_ticks.max(1),
            next_fire_tick: now_tick + period_ticks.max(1),
            periodic,
            action,
            active: true,
            fired: 0,
        }
    }

    /// Advances the timer to `tick`; returns the action if it fired.
    pub fn advance(&mut self, tick: u64) -> Option<TimerAction> {
        if !self.active || tick < self.next_fire_tick {
            return None;
        }
        self.fired += 1;
        if self.periodic {
            while self.next_fire_tick <= tick {
                self.next_fire_tick += self.period_ticks;
            }
        } else {
            self.active = false;
        }
        Some(self.action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_fires_once() {
        let mut t = SoftTimer::new(0, 5, false, TimerAction::Noop);
        assert_eq!(t.advance(4), None);
        assert_eq!(t.advance(5), Some(TimerAction::Noop));
        assert_eq!(t.advance(100), None);
        assert_eq!(t.fired, 1);
        assert!(!t.active);
    }

    #[test]
    fn periodic_rearms() {
        let mut t = SoftTimer::new(0, 10, true, TimerAction::Noop);
        assert_eq!(t.advance(10), Some(TimerAction::Noop));
        assert_eq!(t.advance(15), None);
        assert_eq!(t.advance(20), Some(TimerAction::Noop));
        assert_eq!(t.fired, 2);
        assert!(t.active);
    }

    #[test]
    fn periodic_catches_up_without_burst() {
        let mut t = SoftTimer::new(0, 10, true, TimerAction::Noop);
        assert_eq!(t.advance(55), Some(TimerAction::Noop));
        // Skipped firings collapse into one; next is beyond 55.
        assert_eq!(t.next_fire_tick, 60);
    }

    #[test]
    fn zero_period_clamped() {
        let t = SoftTimer::new(3, 0, true, TimerAction::Noop);
        assert_eq!(t.period_ticks, 1);
        assert_eq!(t.next_fire_tick, 4);
    }
}
