//! A FreeRTOS-like real-time kernel for the simulated TyTAN platform.
//!
//! TyTAN builds on FreeRTOS ported to Siskiyou Peak (§4). This crate is the
//! reproduction's kernel substrate, providing the seven real-time-OS
//! properties the paper lists: (1) multi-tasking, (2) priority-based
//! pre-emptive scheduling, (3) bounded execution time for primitives,
//! (4) a high-resolution real-time clock (the cycle counter), (5) alarms
//! and time-outs ([`SoftTimer`]), (6) real-time queuing ([`MessageQueue`]),
//! and (7) delaying/suspending of tasks.
//!
//! The kernel is *trusted-firmware style* code: it runs host-side when the
//! machine pauses at the kernel trap address, manipulates guest state
//! through the [`sp_emu::Machine`] API, and charges its modelled cycle
//! costs to the same clock guest code runs on. Low-level context save and
//! restore execute as real SP32 stubs (see [`stubs`]), so their cycle
//! counts — the quantities Tables 2 and 3 of the paper report — come from
//! the instruction stream.
//!
//! [`Runner`] packages a machine plus kernel into the *baseline* platform
//! of the paper's comparison rows: unmodified-FreeRTOS semantics, normal
//! tasks only, no EA-MPU enforcement. The TyTAN platform in the `tytan`
//! crate extends the same kernel with secure tasks, the Int Mux, secure
//! IPC, and dynamic loading.
//!
//! # Examples
//!
//! ```
//! use rtos::{Runner, RunnerConfig, StaticTask};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut runner = Runner::new(RunnerConfig::default())?;
//! runner.add_task(StaticTask {
//!     name: "count".into(),
//!     priority: 1,
//!     source: "main:\n movi r1, counter\n\
//!              loop:\n ldw r2, [r1]\n addi r2, 1\n stw [r1], r2\n jmp loop\n\
//!              counter:\n .word 0\n"
//!         .into(),
//!     stack_len: 256,
//! })?;
//! runner.start()?;
//! runner.run_for(100_000)?;
//! # Ok(())
//! # }
//! ```

pub mod kernel;
pub mod layout;
pub mod queue;
pub mod runner;
pub mod stubs;
pub mod sync;
pub mod timer;
pub mod trace;

mod tcb;

pub use kernel::{Kernel, KernelConfig, KernelError, SyscallOutcome};
pub use queue::{MessageQueue, QueueError, QueueId};
pub use runner::{Runner, RunnerConfig, RunnerError, StaticTask};
pub use sync::{SemOp, Semaphore, SemaphoreId};
pub use tcb::{TaskHandle, TaskKind, TaskState, Tcb, TcbParams};
pub use timer::{SoftTimer, TimerAction, TimerId};
pub use trace::{SchedEvent, SchedEventKind, SchedTrace};
