//! Property tests: every Chrome trace export must survive a round trip
//! through the strict in-tree JSON parser, whatever the event stream —
//! the CI artifact is only useful if Perfetto can always load it.

use proptest::collection;
use proptest::prelude::*;
use tytan_trace::chrome::{chrome_trace_json, escape_json_string};
use tytan_trace::{json, EventKind, Layer, TraceEvent};

/// Span names are `&'static str`, so the generator draws from a fixed
/// pool chosen to cover every escaping hazard: quotes, backslashes, the
/// C0 shorthand and `\u00XX` ranges, non-ASCII BMP, and non-BMP scalars
/// (which the parser must reassemble from surrogate pairs if escaped,
/// or pass through as raw UTF-8).
const NAME_POOL: [&str; 9] = [
    "load",
    "irq",
    "we\"ird",
    "back\\slash",
    "line\nbreak\ttab\rcr",
    "\u{08}\u{0c}bell\u{07}unit\u{1f}",
    "emoji\u{1F600}\u{1F680}",
    "µs → done",
    "",
];

fn arb_kind() -> impl Strategy<Value = EventKind> {
    (0u8..4, 0usize..NAME_POOL.len(), any::<u64>()).prop_map(|(kind, name, value)| {
        let name = NAME_POOL[name];
        match kind {
            0 => EventKind::Enter(name),
            1 => EventKind::Exit(name),
            2 => EventKind::Mark(name),
            _ => EventKind::Value(name, value),
        }
    })
}

fn arb_event() -> impl Strategy<Value = TraceEvent> {
    (any::<u64>(), 0u8..4, any::<u32>(), arb_kind()).prop_map(|(cycle, layer, tid, kind)| {
        TraceEvent {
            cycle,
            layer: match layer {
                0 => Layer::Emu,
                1 => Layer::EaMpu,
                2 => Layer::Rtos,
                _ => Layer::Core,
            },
            tid,
            kind,
        }
    })
}

/// An arbitrary `char`, biased toward the escaping edge cases: C0
/// controls, the mandatory escapes, and non-BMP scalars.
fn arb_char() -> impl Strategy<Value = char> {
    prop_oneof![
        0u32..0x20,
        Just('"' as u32),
        Just('\\' as u32),
        Just('/' as u32),
        0x20u32..0x7f,
        0xa0u32..0xd800,
        0xe000u32..0x1_0000,
        0x1_0000u32..0x11_0000,
    ]
    .prop_map(|c| char::from_u32(c).expect("generator avoids the surrogate gap"))
}

proptest! {
    #[test]
    fn escaped_strings_round_trip(chars in collection::vec(arb_char(), 0..64)) {
        let raw: String = chars.into_iter().collect();
        let doc = format!("{{\"k\":\"{}\"}}", escape_json_string(&raw));
        let value = json::parse(&doc).expect("escaped string must parse");
        prop_assert_eq!(value.get("k").and_then(json::Value::as_str), Some(raw.as_str()));
    }

    #[test]
    fn chrome_export_round_trips(events in collection::vec(arb_event(), 0..48)) {
        let doc = chrome_trace_json(&events);
        let value = json::parse(&doc).expect("chrome export must be valid JSON");
        let rows = value
            .get("traceEvents")
            .and_then(json::Value::as_array)
            .expect("traceEvents array");

        let layers_present = [Layer::Emu, Layer::EaMpu, Layer::Rtos, Layer::Core]
            .into_iter()
            .filter(|l| events.iter().any(|e| e.layer == *l))
            .count();
        prop_assert_eq!(rows.len(), layers_present + events.len());

        // Every event row (after the metadata prefix) carries the source
        // event's name, phase, pid, and timestamp, bit-exact.
        for (event, row) in events.iter().zip(&rows[layers_present..]) {
            prop_assert_eq!(
                row.get("name").and_then(json::Value::as_str),
                Some(event.kind.name())
            );
            let phase = match event.kind {
                EventKind::Enter(_) => "B",
                EventKind::Exit(_) => "E",
                EventKind::Mark(_) => "i",
                EventKind::Value(..) => "C",
            };
            prop_assert_eq!(row.get("ph").and_then(json::Value::as_str), Some(phase));
            prop_assert_eq!(
                row.get("pid").and_then(json::Value::as_number),
                Some(f64::from(event.layer.pid()))
            );
            prop_assert_eq!(
                row.get("ts").and_then(json::Value::as_number),
                Some(event.cycle as f64)
            );
        }
    }
}

#[test]
fn parser_rejects_lone_surrogates_escaper_never_emits_them() {
    // The parser is strict about surrogate escapes...
    assert!(json::parse("\"\\ud800\"").is_err(), "lone high surrogate");
    assert!(json::parse("\"\\udc00\"").is_err(), "lone low surrogate");
    assert!(
        json::parse("\"\\ud800\\ud800\"").is_err(),
        "high surrogate followed by another high"
    );
    // ...and a paired escape decodes to the non-BMP scalar.
    let v = json::parse("\"\\ud83d\\ude00\"").expect("valid pair");
    assert_eq!(v.as_str(), Some("\u{1F600}"));
    // The escaper cannot emit surrogates at all: Rust chars are scalar
    // values, and non-BMP scalars pass through as raw UTF-8.
    let escaped = escape_json_string("\u{1F600}");
    assert_eq!(escaped, "\u{1F600}");
    assert!(!escaped.contains("\\ud"));
}
