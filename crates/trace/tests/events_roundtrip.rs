//! Property tests: every line of the structured event JSONL must parse
//! back and re-encode byte-identically, whatever the emitter wrote —
//! forensics tooling (`fleet replay-bundle`, log shippers) depends on
//! the canonical encoding being a fixed point.

use proptest::collection;
use proptest::prelude::*;
use tytan_trace::events::{EventLog, LogEvent, LogFields, Severity, MAX_DETAIL_LEN, MAX_NAME_LEN};

/// Scope/event names drawn to cover every escaping hazard the canonical
/// encoder handles: quotes, backslashes, the C0 shorthand escapes and
/// `\u00XX` fallbacks, non-ASCII BMP, non-BMP scalars, and the empty
/// string — plus names past [`MAX_NAME_LEN`] so truncation is exercised,
/// including a multi-byte run where the byte limit falls mid-character.
const NAME_POOL: [&str; 9] = [
    "fleet.verifier",
    "verdict",
    "we\"ird\\scope",
    "line\nbreak\ttab\rcr",
    "\u{08}\u{0c}bell\u{07}unit\u{1f}",
    "emoji\u{1F600}\u{1F680}",
    "µs → done",
    "",
    "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxéééééééé",
];

fn arb_severity() -> impl Strategy<Value = Severity> {
    (0u8..4).prop_map(|n| match n {
        0 => Severity::Debug,
        1 => Severity::Info,
        2 => Severity::Warn,
        _ => Severity::Error,
    })
}

/// An arbitrary `char`, biased toward the escaping edge cases: C0
/// controls, the mandatory escapes, and non-BMP scalars.
fn arb_char() -> impl Strategy<Value = char> {
    prop_oneof![
        0u32..0x20,
        Just('"' as u32),
        Just('\\' as u32),
        0x20u32..0x7f,
        0xa0u32..0xd800,
        0xe000u32..0x1_0000,
        0x1_0000u32..0x11_0000,
    ]
    .prop_map(|c| char::from_u32(c).expect("generator avoids the surrogate gap"))
}

/// Optional ids with the boundary values over-represented.
fn arb_opt_id() -> impl Strategy<Value = Option<u64>> {
    (0u8..4, any::<u64>()).prop_map(|(kind, v)| match kind {
        0 => None,
        1 => Some(0),
        2 => Some(u64::MAX),
        _ => Some(v),
    })
}

/// Detail strings: hazard-pool names, or an arbitrary string up to
/// 1.5× the detail cap so the truncation path runs on real input.
fn arb_detail() -> impl Strategy<Value = String> {
    prop_oneof![
        (0usize..NAME_POOL.len()).prop_map(|i| NAME_POOL[i].to_string()),
        collection::vec(arb_char(), 0..(MAX_DETAIL_LEN + MAX_DETAIL_LEN / 2))
            .prop_map(|chars| chars.into_iter().collect()),
    ]
}

#[allow(clippy::type_complexity)]
fn arb_emission() -> impl Strategy<Value = (Severity, usize, usize, LogFields)> {
    (
        (
            arb_severity(),
            0usize..NAME_POOL.len(),
            0usize..NAME_POOL.len(),
        ),
        (arb_opt_id(), arb_opt_id(), arb_opt_id(), arb_detail()),
    )
        .prop_map(|((sev, scope, event), (device, session, corr, detail))| {
            (
                sev,
                scope,
                event,
                LogFields {
                    device,
                    session,
                    corr,
                    detail,
                },
            )
        })
}

proptest! {
    #[test]
    fn jsonl_round_trips_byte_identically(
        emissions in collection::vec(arb_emission(), 1..24),
    ) {
        let log = EventLog::new(16);
        for (sev, scope, event, fields) in &emissions {
            log.emit(*sev, NAME_POOL[*scope], NAME_POOL[*event], fields.clone());
        }
        prop_assert_eq!(log.emitted(), emissions.len() as u64);
        prop_assert_eq!(
            log.dropped(),
            (emissions.len() as u64).saturating_sub(16)
        );

        let jsonl = log.to_jsonl();
        let retained = log.events();
        let lines: Vec<&str> = jsonl.lines().collect();
        prop_assert_eq!(lines.len(), retained.len());

        for (line, original) in lines.iter().zip(&retained) {
            // The canonical line parses back to the retained event...
            let parsed = LogEvent::from_json(line)
                .map_err(|e| TestCaseError::Fail(format!("{e}: {line}")))?;
            prop_assert_eq!(&parsed, original);
            // ...and re-encodes to the identical bytes: the encoding is
            // a fixed point, so logs can be shipped, parsed, and
            // re-emitted without drift.
            let reencoded = parsed.to_json();
            prop_assert_eq!(reencoded.as_str(), *line);

            // Truncation landed on char boundaries within the caps.
            prop_assert!(original.scope.len() <= MAX_NAME_LEN);
            prop_assert!(original.event.len() <= MAX_NAME_LEN);
            prop_assert!(original.fields.detail.len() <= MAX_DETAIL_LEN);
        }
    }
}

#[test]
fn max_length_fields_survive_verbatim() {
    // Exactly-at-cap ASCII fields must pass through untruncated and
    // round-trip byte-identically.
    let log = EventLog::new(4);
    let name = "n".repeat(MAX_NAME_LEN);
    let detail = "d".repeat(MAX_DETAIL_LEN);
    log.emit(
        Severity::Error,
        &name,
        &name,
        LogFields {
            device: Some(u64::MAX),
            session: Some(0),
            corr: Some(u64::MAX),
            detail: detail.clone(),
        },
    );
    let event = &log.events()[0];
    assert_eq!(event.scope, name);
    assert_eq!(event.fields.detail, detail);
    let line = event.to_json();
    let parsed = LogEvent::from_json(&line).expect("canonical line parses");
    assert_eq!(&parsed, event);
    assert_eq!(parsed.to_json(), line);
}
