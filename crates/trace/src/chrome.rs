//! Chrome `trace_event` JSON export.
//!
//! Produces the JSON Array-in-Object format understood by
//! `chrome://tracing` and Perfetto: one *pid* per [`Layer`], one *tid* per
//! logical track within the layer, `B`/`E` duration spans from
//! [`EventKind::Enter`]/[`EventKind::Exit`] pairs, instants for
//! [`EventKind::Mark`], and counter tracks for [`EventKind::Value`].
//! Timestamps are guest cycles passed through as the `ts` field (the
//! viewer's "µs" are our cycles; relative durations are what matter).

use crate::{EventKind, Layer, TraceEvent};
use std::fmt::Write as _;

/// Escapes `s` as the body of a JSON string (no surrounding quotes).
///
/// Handles the two mandatory escapes (`"` and `\`), the common control
/// shorthands, and the `\u00XX` form for the rest of the C0 range, so any
/// Rust string round-trips through a strict JSON parser.
pub fn escape_json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn push_common(out: &mut String, name: &str, ph: char, event: &TraceEvent) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"ph\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{}",
        escape_json_string(name),
        ph,
        event.layer.pid(),
        event.tid,
        event.cycle,
    );
}

/// Renders `events` as a complete Chrome trace JSON document.
///
/// Process-name metadata rows are emitted for every layer that appears, so
/// the viewer labels the pids `emu`/`eampu`/`rtos`/`core`/`fleet`.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;

    // One process_name metadata record per layer present in the stream.
    for layer in [
        Layer::Emu,
        Layer::EaMpu,
        Layer::Rtos,
        Layer::Core,
        Layer::Fleet,
    ] {
        if events.iter().any(|e| e.layer == layer) {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                layer.pid(),
                escape_json_string(layer.name()),
            );
        }
    }

    for event in events {
        if !first {
            out.push(',');
        }
        first = false;
        match event.kind {
            EventKind::Enter(name) => {
                push_common(&mut out, name, 'B', event);
                out.push('}');
            }
            EventKind::Exit(name) => {
                push_common(&mut out, name, 'E', event);
                out.push('}');
            }
            EventKind::Mark(name) => {
                push_common(&mut out, name, 'i', event);
                out.push_str(",\"s\":\"t\"}");
            }
            EventKind::Value(name, value) => {
                push_common(&mut out, name, 'C', event);
                let _ = write!(
                    out,
                    ",\"args\":{{\"{}\":{}}}}}",
                    escape_json_string(name),
                    value
                );
            }
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn ev(cycle: u64, layer: Layer, tid: u32, kind: EventKind) -> TraceEvent {
        TraceEvent {
            cycle,
            layer,
            tid,
            kind,
        }
    }

    #[test]
    fn escaping_quotes_backslashes_and_controls() {
        assert_eq!(escape_json_string("plain"), "plain");
        assert_eq!(escape_json_string("a\"b"), "a\\\"b");
        assert_eq!(escape_json_string("a\\b"), "a\\\\b");
        assert_eq!(escape_json_string("line\nbreak"), "line\\nbreak");
        assert_eq!(escape_json_string("tab\there"), "tab\\there");
        assert_eq!(escape_json_string("cr\rlf"), "cr\\rlf");
        assert_eq!(escape_json_string("\u{08}\u{0c}"), "\\b\\f");
        assert_eq!(escape_json_string("\u{01}\u{1f}"), "\\u0001\\u001f");
        // Non-ASCII passes through unescaped (JSON strings are UTF-8).
        assert_eq!(escape_json_string("µs → ok"), "µs → ok");
    }

    #[test]
    fn escaped_strings_round_trip_through_the_parser() {
        for raw in ["q\"q", "b\\b", "nl\n", "mix\"\\\n\t\r\u{02}"] {
            let doc = format!("{{\"k\":\"{}\"}}", escape_json_string(raw));
            let value = json::parse(&doc).expect("escaped string parses");
            assert_eq!(
                value.get("k").and_then(json::Value::as_str),
                Some(raw),
                "round trip of {raw:?}"
            );
        }
    }

    #[test]
    fn export_has_spans_instants_counters_and_metadata() {
        let events = [
            ev(10, Layer::Core, 1, EventKind::Enter("load")),
            ev(25, Layer::Emu, 0, EventKind::Mark("fault")),
            ev(30, Layer::Rtos, 2, EventKind::Value("tick", 3)),
            ev(90, Layer::Core, 1, EventKind::Exit("load")),
        ];
        let doc = chrome_trace_json(&events);
        let value = json::parse(&doc).expect("chrome export is valid JSON");
        let rows = value
            .get("traceEvents")
            .and_then(json::Value::as_array)
            .expect("traceEvents array");
        // 3 metadata rows (emu, rtos, core present) + 4 events.
        assert_eq!(rows.len(), 7);
        let phases: Vec<&str> = rows
            .iter()
            .filter_map(|r| r.get("ph").and_then(json::Value::as_str))
            .collect();
        assert_eq!(phases, vec!["M", "M", "M", "B", "i", "C", "E"]);
        // The B/E pair shares pid/tid/name.
        let b = &rows[3];
        let e = &rows[6];
        for key in ["name", "pid", "tid"] {
            assert_eq!(b.get(key), e.get(key), "span field {key}");
        }
        assert_eq!(
            rows[5].get("args").and_then(|a| a.get("tick")),
            Some(&json::Value::Number(3.0))
        );
    }

    #[test]
    fn empty_stream_is_still_valid_json() {
        let doc = chrome_trace_json(&[]);
        let value = json::parse(&doc).expect("parses");
        assert_eq!(
            value
                .get("traceEvents")
                .and_then(json::Value::as_array)
                .map(Vec::len),
            Some(0)
        );
    }

    #[test]
    fn hostile_span_names_stay_valid_json() {
        let events = [ev(
            1,
            Layer::Core,
            0,
            EventKind::Enter("we\"ird\\name\nwith\tcontrols\u{01}"),
        )];
        let doc = chrome_trace_json(&events);
        assert!(json::parse(&doc).is_ok(), "escaping kept the doc valid");
    }
}
