//! The monotonic counter registry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Maximum number of registered counters. Registration past this point
/// returns [`CounterId::DISCARD`], a sink slot whose value is never
/// reported — observability must degrade, never abort the platform.
pub const MAX_COUNTERS: usize = 128;

/// Handle to one registered counter. Copy it into hot paths so increments
/// are a single relaxed atomic add with no name lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

impl CounterId {
    /// The overflow slot: increments land in a counter that is counted
    /// (as `counters_discarded` pressure) but never snapshotted by name.
    pub const DISCARD: CounterId = CounterId(MAX_COUNTERS);
}

/// A registry of named, monotonic, saturating `u64` counters.
///
/// Increments are relaxed atomics — safe to share across layers and
/// threads, never blocking the hot path. Values saturate at `u64::MAX`
/// instead of wrapping, so a rate computed from a snapshot can never go
/// negative over any observation interval.
///
/// # Examples
///
/// ```
/// use tytan_trace::Counters;
///
/// let counters = Counters::new();
/// let hits = counters.register("cache_hits");
/// counters.add(hits, 2);
/// counters.add(hits, 1);
/// assert_eq!(counters.get("cache_hits"), Some(3));
/// assert_eq!(counters.snapshot(), vec![("cache_hits".to_string(), 3)]);
/// ```
#[derive(Debug)]
pub struct Counters {
    names: Mutex<Vec<String>>,
    // One extra slot receives increments of `CounterId::DISCARD`.
    values: [AtomicU64; MAX_COUNTERS + 1],
}

impl Default for Counters {
    fn default() -> Self {
        Counters::new()
    }
}

impl Counters {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Counters {
            names: Mutex::new(Vec::new()),
            values: [const { AtomicU64::new(0) }; MAX_COUNTERS + 1],
        }
    }

    /// Registers (or finds) the counter named `name`. Registering a
    /// duplicate name returns the *existing* id — never a second slot —
    /// so layers can share counters by name without coordination, and a
    /// re-attach cannot split one metric across two cells. The duplicate
    /// lookup succeeds even when the registry is full.
    pub fn register(&self, name: &str) -> CounterId {
        let mut names = self.names.lock().expect("counter registry lock");
        if let Some(i) = names.iter().position(|n| n == name) {
            return CounterId(i);
        }
        if names.len() >= MAX_COUNTERS {
            return CounterId::DISCARD;
        }
        names.push(name.to_string());
        CounterId(names.len() - 1)
    }

    /// Number of registered counters.
    pub fn len(&self) -> usize {
        self.names.lock().expect("counter registry lock").len()
    }

    /// Whether no counters are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds `delta` to the counter, saturating at `u64::MAX`.
    #[inline]
    pub fn add(&self, id: CounterId, delta: u64) {
        let cell = &self.values[id.0];
        // A compare-exchange loop implements *saturating* add; the common
        // far-from-saturation case is one load + one CAS.
        let mut current = cell.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_add(delta);
            match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Convenience: adds one.
    #[inline]
    pub fn incr(&self, id: CounterId) {
        self.add(id, 1);
    }

    /// Reads a counter's value by id.
    pub fn value(&self, id: CounterId) -> u64 {
        self.values[id.0].load(Ordering::Relaxed)
    }

    /// Reads a counter's value by name, if registered.
    pub fn get(&self, name: &str) -> Option<u64> {
        let names = self.names.lock().expect("counter registry lock");
        let i = names.iter().position(|n| n == name)?;
        Some(self.values[i].load(Ordering::Relaxed))
    }

    /// Snapshot of all registered counters in registration order.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let names = self.names.lock().expect("counter registry lock");
        names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), self.values[i].load(Ordering::Relaxed)))
            .collect()
    }

    /// Resets every counter to zero (names stay registered).
    pub fn reset(&self) {
        for v in &self.values {
            v.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent() {
        let c = Counters::new();
        let a = c.register("a");
        let b = c.register("b");
        assert_ne!(a, b);
        assert_eq!(c.register("a"), a);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn duplicate_register_shares_one_cell_and_get_unknown_is_none() {
        let c = Counters::new();
        // `get` on a name nobody registered is None, not zero — callers
        // can distinguish "never existed" from "never incremented".
        assert_eq!(c.get("ghost"), None);
        let first = c.register("shared");
        let second = c.register("shared");
        assert_eq!(first, second);
        c.add(first, 2);
        c.add(second, 3);
        assert_eq!(c.get("shared"), Some(5), "one cell, not two");
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("ghost"), None);
    }

    #[test]
    fn duplicate_register_resolves_even_when_full() {
        let c = Counters::new();
        let early = c.register("early");
        for i in 0..MAX_COUNTERS - 1 {
            c.register(&format!("c{i}"));
        }
        assert_eq!(c.len(), MAX_COUNTERS);
        // A full registry still finds existing names by lookup...
        assert_eq!(c.register("early"), early);
        // ...and only truly new names degrade to the discard slot.
        assert_eq!(c.register("late"), CounterId::DISCARD);
    }

    #[test]
    fn add_saturates_at_max() {
        let c = Counters::new();
        let id = c.register("near_max");
        c.add(id, u64::MAX - 5);
        c.add(id, 3);
        assert_eq!(c.value(id), u64::MAX - 2);
        // Crossing the ceiling pins at MAX instead of wrapping...
        c.add(id, 100);
        assert_eq!(c.value(id), u64::MAX);
        // ...and stays there.
        c.incr(id);
        assert_eq!(c.get("near_max"), Some(u64::MAX));
    }

    #[test]
    fn registry_overflow_degrades_to_discard() {
        let c = Counters::new();
        for i in 0..MAX_COUNTERS {
            assert_ne!(c.register(&format!("c{i}")), CounterId::DISCARD);
        }
        let spill = c.register("one_too_many");
        assert_eq!(spill, CounterId::DISCARD);
        // Adding through the discard id must not panic or alias slot 0.
        c.add(spill, 7);
        assert_eq!(c.get("c0"), Some(0));
        assert_eq!(c.get("one_too_many"), None);
        assert_eq!(c.len(), MAX_COUNTERS);
    }

    #[test]
    fn snapshot_and_reset() {
        let c = Counters::new();
        let x = c.register("x");
        let y = c.register("y");
        c.add(x, 5);
        c.add(y, 9);
        assert_eq!(
            c.snapshot(),
            vec![("x".to_string(), 5), ("y".to_string(), 9)]
        );
        c.reset();
        assert_eq!(c.value(x), 0);
        assert_eq!(c.value(y), 0);
        assert_eq!(c.len(), 2, "names survive a reset");
    }
}
