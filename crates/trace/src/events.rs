//! Structured JSONL event log for fleet-scale observability.
//!
//! Counters and histograms ([`crate::Counters`], [`crate::hist`]) answer
//! *how many* and *how long*; they cannot answer *what happened to this
//! one attestation*. This module is the narrative side of the
//! observation plane: a bounded, thread-safe [`EventLog`] of
//! [`LogEvent`]s, each carrying a severity, the emitting scope, an
//! optional device / session / correlation id, and a monotonic sequence
//! number assigned at emission — so the exported stream is totally
//! ordered even when many threads log concurrently.
//!
//! # Wire format
//!
//! [`LogEvent::to_json`] emits one canonical JSON object per event (one
//! line of a JSONL file). The encoding is deliberately rigid so the
//! stream is diffable and round-trippable:
//!
//! - keys always appear, in a fixed order (`seq`, `sev`, `scope`,
//!   `event`, `device`, `session`, `corr`, `detail`); absent ids are
//!   `null`;
//! - 64-bit ids are JSON **strings** (`"seq":"42"`), because JSON
//!   numbers are doubles and silently lose integer precision above
//!   2^53 — a real hazard for hash-derived device ids;
//! - strings escape `"`\\, the common control shorthands (`\n`, `\t`,
//!   `\r`) and every other byte below 0x20 as `\u00XX`; nothing else
//!   is escaped.
//!
//! [`LogEvent::from_json`] inverts the encoding exactly:
//! `from_json(line).to_json() == line` for every line the log emits
//! (property-tested, including escaping and maximum-length fields).
//!
//! # Examples
//!
//! ```
//! use tytan_trace::events::{EventLog, LogFields, Severity};
//!
//! let log = EventLog::new(1024);
//! log.emit(
//!     Severity::Info,
//!     "fleet.verifier",
//!     "verdict",
//!     LogFields {
//!         device: Some(7),
//!         corr: Some(42),
//!         detail: "accepted".to_string(),
//!         ..LogFields::default()
//!     },
//! );
//! let line = log.to_jsonl();
//! assert!(line.contains("\"corr\":\"42\""));
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json::{self, Value};

/// Longest `detail` string (in bytes) an event may carry; longer strings
/// are truncated at a character boundary on emission. Bounds both memory
/// and the line length downstream `grep`s must handle.
pub const MAX_DETAIL_LEN: usize = 256;

/// Longest `scope` / `event` name (in bytes); same truncation rule.
pub const MAX_NAME_LEN: usize = 64;

/// Event severity, ordered from chattiest to most urgent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Developer-facing detail.
    Debug,
    /// Normal operation worth recording.
    Info,
    /// Something degraded but handled (e.g. events dropped).
    Warn,
    /// A typed failure (e.g. a rejected report).
    Error,
}

impl Severity {
    /// Stable wire name (`"debug"`, `"info"`, `"warn"`, `"error"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Parses a wire name produced by [`Severity::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "debug" => Some(Severity::Debug),
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

/// The optional identity fields of an event. Split out so
/// [`EventLog::emit`] stays callable without naming every id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogFields {
    /// The device the event concerns, if any.
    pub device: Option<u64>,
    /// The device's session (connection) number, if any.
    pub session: Option<u64>,
    /// The wire correlation id threaded through the protocol, if any.
    pub corr: Option<u64>,
    /// Free-text detail, truncated to [`MAX_DETAIL_LEN`] bytes.
    pub detail: String,
}

/// One structured event: what happened, to whom, in which attestation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEvent {
    /// Monotonic sequence number, assigned by the [`EventLog`].
    pub seq: u64,
    /// How urgent.
    pub severity: Severity,
    /// The emitting component, dotted (`"fleet.verifier"`).
    pub scope: String,
    /// The event name (`"verdict"`, `"challenge"`, `"bundle"`).
    pub event: String,
    /// Identity fields (device / session / correlation id / detail).
    pub fields: LogFields,
}

/// Truncates `s` to at most `max` bytes on a character boundary.
fn truncate(s: &str, max: usize) -> &str {
    if s.len() <= max {
        return s;
    }
    let mut end = max;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

/// Appends `s` as a JSON string literal with the canonical escaping
/// described in the module docs.
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_opt_id(out: &mut String, key: &str, id: Option<u64>) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    match id {
        Some(v) => {
            out.push('"');
            out.push_str(&v.to_string());
            out.push('"');
        }
        None => out.push_str("null"),
    }
}

impl LogEvent {
    /// Canonical single-line JSON encoding (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96 + self.fields.detail.len());
        out.push_str("{\"seq\":\"");
        out.push_str(&self.seq.to_string());
        out.push_str("\",\"sev\":\"");
        out.push_str(self.severity.as_str());
        out.push_str("\",\"scope\":");
        push_json_string(&mut out, &self.scope);
        out.push_str(",\"event\":");
        push_json_string(&mut out, &self.event);
        out.push(',');
        push_opt_id(&mut out, "device", self.fields.device);
        out.push(',');
        push_opt_id(&mut out, "session", self.fields.session);
        out.push(',');
        push_opt_id(&mut out, "corr", self.fields.corr);
        out.push_str(",\"detail\":");
        push_json_string(&mut out, &self.fields.detail);
        out.push('}');
        out
    }

    /// Parses one line produced by [`LogEvent::to_json`]. Strict: every
    /// key must be present, ids must be decimal strings or `null`, and
    /// length limits must hold — so `from_json(line).to_json() == line`.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn from_json(line: &str) -> Result<LogEvent, String> {
        let value = json::parse(line).map_err(|e| e.to_string())?;
        let str_field = |key: &str| -> Result<String, String> {
            value
                .get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string field {key:?}"))
        };
        let id_field = |key: &str| -> Result<Option<u64>, String> {
            match value.get(key) {
                Some(Value::Null) => Ok(None),
                Some(Value::String(s)) => s
                    .parse::<u64>()
                    .map(Some)
                    .map_err(|e| format!("field {key:?}: {e}")),
                Some(other) => Err(format!(
                    "field {key:?}: expected string id or null, got {}",
                    other.type_name()
                )),
                None => Err(format!("missing field {key:?}")),
            }
        };
        let seq = id_field("seq")?.ok_or("field \"seq\" must not be null")?;
        let sev = str_field("sev")?;
        let severity = Severity::parse(&sev).ok_or_else(|| format!("unknown severity {sev:?}"))?;
        let scope = str_field("scope")?;
        let event = str_field("event")?;
        let detail = str_field("detail")?;
        if scope.len() > MAX_NAME_LEN || event.len() > MAX_NAME_LEN {
            return Err(format!("scope/event longer than {MAX_NAME_LEN} bytes"));
        }
        if detail.len() > MAX_DETAIL_LEN {
            return Err(format!("detail longer than {MAX_DETAIL_LEN} bytes"));
        }
        Ok(LogEvent {
            seq,
            severity,
            scope,
            event,
            fields: LogFields {
                device: id_field("device")?,
                session: id_field("session")?,
                corr: id_field("corr")?,
                detail,
            },
        })
    }
}

/// A bounded, thread-safe structured event log: drop-oldest ring with
/// the same shedding contract as [`crate::RingRecorder`] — recording
/// never blocks progress and never grows without bound, and everything
/// shed is counted in [`EventLog::dropped`].
#[derive(Debug)]
pub struct EventLog {
    inner: Mutex<LogState>,
    dropped: AtomicU64,
    capacity: usize,
}

#[derive(Debug)]
struct LogState {
    next_seq: u64,
    events: VecDeque<LogEvent>,
}

impl EventLog {
    /// Creates a log retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// If `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "EventLog capacity must be non-zero");
        EventLog {
            inner: Mutex::new(LogState {
                next_seq: 0,
                events: VecDeque::with_capacity(capacity.min(1024)),
            }),
            dropped: AtomicU64::new(0),
            capacity,
        }
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one event, assigning the next sequence number (returned).
    /// `scope`, `event` and `fields.detail` are truncated to their
    /// length limits; if the ring is full the oldest event is shed and
    /// counted.
    pub fn emit(&self, severity: Severity, scope: &str, event: &str, fields: LogFields) -> u64 {
        let mut fields = fields;
        fields.detail = truncate(&fields.detail, MAX_DETAIL_LEN).to_string();
        let mut state = self.inner.lock().expect("event log poisoned");
        let seq = state.next_seq;
        state.next_seq += 1;
        if state.events.len() == self.capacity {
            state.events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        state.events.push_back(LogEvent {
            seq,
            severity,
            scope: truncate(scope, MAX_NAME_LEN).to_string(),
            event: truncate(event, MAX_NAME_LEN).to_string(),
            fields,
        });
        seq
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<LogEvent> {
        let state = self.inner.lock().expect("event log poisoned");
        state.events.iter().cloned().collect()
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("event log poisoned").events.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events emitted in total (including any later shed).
    pub fn emitted(&self) -> u64 {
        self.inner.lock().expect("event log poisoned").next_seq
    }

    /// Events shed because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The retained events as a JSONL document (one canonical line per
    /// event, each newline-terminated).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in self.events() {
            out.push_str(&event.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LogEvent {
        LogEvent {
            seq: 3,
            severity: Severity::Error,
            scope: "fleet.verifier".to_string(),
            event: "verdict".to_string(),
            fields: LogFields {
                device: Some(u64::MAX),
                session: None,
                corr: Some(9_007_199_254_740_993), // 2^53 + 1: breaks f64
                detail: "line\nbreak \"quoted\" \\ tab\t\u{1}".to_string(),
            },
        }
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        let line = sample().to_json();
        let back = LogEvent::from_json(&line).expect("parses");
        assert_eq!(back, sample());
        assert_eq!(back.to_json(), line);
    }

    #[test]
    fn large_ids_survive_exactly() {
        // The whole point of string-encoded ids: 2^53 + 1 is not
        // representable as an f64, but must survive the round trip.
        let back = LogEvent::from_json(&sample().to_json()).expect("parses");
        assert_eq!(back.fields.corr, Some(9_007_199_254_740_993));
        assert_eq!(back.fields.device, Some(u64::MAX));
    }

    #[test]
    fn log_assigns_monotonic_seq_and_sheds_oldest() {
        let log = EventLog::new(2);
        for i in 0..5u64 {
            let seq = log.emit(
                Severity::Info,
                "s",
                "e",
                LogFields {
                    device: Some(i),
                    ..LogFields::default()
                },
            );
            assert_eq!(seq, i);
        }
        let events = log.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 3);
        assert_eq!(events[1].seq, 4);
        assert_eq!(log.dropped(), 3);
        assert_eq!(log.emitted(), 5);
    }

    #[test]
    fn detail_is_truncated_at_char_boundary() {
        let log = EventLog::new(4);
        // 'é' is 2 bytes; an odd limit would split it without the
        // boundary walk.
        let detail: String = "é".repeat(MAX_DETAIL_LEN);
        log.emit(
            Severity::Debug,
            "s",
            "e",
            LogFields {
                detail,
                ..LogFields::default()
            },
        );
        let event = &log.events()[0];
        assert!(event.fields.detail.len() <= MAX_DETAIL_LEN);
        assert!(event.fields.detail.chars().all(|c| c == 'é'));
        // And the truncated event still round-trips.
        let line = event.to_json();
        assert_eq!(LogEvent::from_json(&line).unwrap().to_json(), line);
    }

    #[test]
    fn from_json_rejects_overlong_and_malformed() {
        let long = LogEvent {
            fields: LogFields {
                detail: "x".repeat(MAX_DETAIL_LEN + 1),
                ..LogFields::default()
            },
            ..sample()
        };
        assert!(LogEvent::from_json(&long.to_json()).is_err());
        assert!(LogEvent::from_json("{}").is_err());
        assert!(LogEvent::from_json("not json").is_err());
        // A numeric id (instead of a string) is rejected, not coerced.
        let line = sample().to_json().replace("\"seq\":\"3\"", "\"seq\":3");
        assert!(LogEvent::from_json(&line).is_err());
    }

    #[test]
    fn jsonl_export_has_one_line_per_event() {
        let log = EventLog::new(8);
        for _ in 0..3 {
            log.emit(Severity::Info, "s", "e", LogFields::default());
        }
        let doc = log.to_jsonl();
        assert_eq!(doc.lines().count(), 3);
        for line in doc.lines() {
            LogEvent::from_json(line).expect("every line parses");
        }
    }
}
