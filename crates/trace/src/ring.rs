//! The bounded drop-oldest event recorder.

use crate::{TraceEvent, TraceSink};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A bounded ring of [`TraceEvent`]s: the newest `capacity` events are
/// kept, older ones are dropped (and counted). Long-running workloads can
/// therefore trace forever in constant memory; consumers that care about
/// loss read [`RingRecorder::dropped`].
///
/// The ring itself sits behind a mutex (recording is a few stores under a
/// lock that is never held across user code); the dropped counter is a
/// relaxed atomic so it can be read without taking the lock.
///
/// # Examples
///
/// ```
/// use tytan_trace::{EventKind, Layer, RingRecorder, TraceEvent, TraceSink};
///
/// let ring = RingRecorder::new(2);
/// for cycle in 0..5 {
///     ring.record(TraceEvent {
///         cycle,
///         layer: Layer::Emu,
///         tid: 0,
///         kind: EventKind::Mark("m"),
///     });
/// }
/// let kept: Vec<u64> = ring.events().iter().map(|e| e.cycle).collect();
/// assert_eq!(kept, vec![3, 4]);
/// assert_eq!(ring.dropped(), 3);
/// ```
#[derive(Debug)]
pub struct RingRecorder {
    inner: Mutex<Ring>,
    dropped: AtomicU64,
    capacity: usize,
}

#[derive(Debug)]
struct Ring {
    /// Storage; grows up to `capacity`, then wraps.
    buf: Vec<TraceEvent>,
    /// Index of the oldest event once the buffer is full.
    head: usize,
}

impl RingRecorder {
    /// Creates a recorder keeping at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be nonzero");
        RingRecorder {
            inner: Mutex::new(Ring {
                buf: Vec::new(),
                head: 0,
            }),
            dropped: AtomicU64::new(0),
            capacity,
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("ring lock").buf.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events dropped to make room (monotonic, saturating).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Snapshot of retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let ring = self.inner.lock().expect("ring lock");
        let mut out = Vec::with_capacity(ring.buf.len());
        out.extend_from_slice(&ring.buf[ring.head..]);
        out.extend_from_slice(&ring.buf[..ring.head]);
        out
    }

    /// Forgets all retained events and resets the dropped count.
    pub fn clear(&self) {
        let mut ring = self.inner.lock().expect("ring lock");
        ring.buf.clear();
        ring.head = 0;
        self.dropped.store(0, Ordering::Relaxed);
    }
}

impl TraceSink for RingRecorder {
    fn dropped(&self) -> u64 {
        RingRecorder::dropped(self)
    }

    fn record(&self, event: TraceEvent) {
        let mut ring = self.inner.lock().expect("ring lock");
        if ring.buf.len() < self.capacity {
            ring.buf.push(event);
        } else {
            let head = ring.head;
            ring.buf[head] = event;
            ring.head = (head + 1) % self.capacity;
            // Relaxed: the count is advisory; saturate rather than wrap.
            let d = self.dropped.load(Ordering::Relaxed);
            self.dropped.store(d.saturating_add(1), Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, Layer};

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            layer: Layer::Emu,
            tid: 0,
            kind: EventKind::Mark("m"),
        }
    }

    #[test]
    fn fills_then_wraps_in_order() {
        let ring = RingRecorder::new(3);
        assert!(ring.is_empty());
        for c in 0..3 {
            ring.record(ev(c));
        }
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.len(), 3);

        // Two more: 0 and 1 fall off, order stays oldest-first.
        ring.record(ev(3));
        ring.record(ev(4));
        let cycles: Vec<u64> = ring.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn wraps_many_times_with_exact_accounting() {
        let ring = RingRecorder::new(4);
        for c in 0..100 {
            ring.record(ev(c));
        }
        let cycles: Vec<u64> = ring.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![96, 97, 98, 99]);
        assert_eq!(ring.dropped(), 96);
    }

    #[test]
    fn clear_resets_events_and_dropped() {
        let ring = RingRecorder::new(2);
        for c in 0..5 {
            ring.record(ev(c));
        }
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
        ring.record(ev(9));
        assert_eq!(ring.events().len(), 1);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _ = RingRecorder::new(0);
    }
}
