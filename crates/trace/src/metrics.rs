//! Metrics exposition: Prometheus text format over the shared
//! registries, plus windowed delta snapshots.
//!
//! The [`crate::Counters`] and [`crate::hist::Histograms`] registries
//! hold monotonic totals — right for end-of-run books, wrong for a
//! dashboard, which wants *rates*. This module provides both views:
//!
//! - [`prometheus_text`] renders one exposition document in the
//!   Prometheus text format (version 0.0.4): each counter as a
//!   `counter` family, each histogram as a `summary` family with
//!   `quantile` labels plus `_sum` / `_count` series. Names are
//!   prefixed `tytan_` and sanitized to the metric-name alphabet.
//! - [`DeltaWindow`] remembers the previous counter snapshot and turns
//!   the next one into per-window deltas and per-second rates —
//!   `run_fleet` ticks one periodically and logs the snapshot into its
//!   structured event stream.
//! - [`validate_prometheus_text`] is a strict line-level checker for
//!   the subset this module emits; the `fleet check-metrics`
//!   subcommand uses it (plus a required-family schema) so CI can gate
//!   the exposition format without external tooling.
//!
//! # Examples
//!
//! ```
//! use tytan_trace::{metrics, Tracer};
//!
//! let tracer = Tracer::null();
//! let id = tracer.counters().register("fleet_accepted");
//! tracer.counters().add(id, 3);
//! let text = metrics::prometheus_text(tracer.counters(), tracer.histograms());
//! assert!(text.contains("tytan_fleet_accepted 3"));
//! metrics::validate_prometheus_text(&text).expect("well-formed");
//! ```

use std::time::Instant;

use crate::counters::Counters;
use crate::hist::Histograms;

/// Prefix applied to every exported metric name.
pub const METRIC_PREFIX: &str = "tytan_";

/// Maps `name` into the Prometheus metric-name alphabet
/// (`[a-zA-Z0-9_:]`), replacing anything else with `_`, and prepends
/// [`METRIC_PREFIX`].
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(METRIC_PREFIX.len() + name.len());
    out.push_str(METRIC_PREFIX);
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders the registries as one Prometheus text-format document:
/// counters first (registration order), then histogram summaries
/// (empty distributions are skipped, matching
/// [`Histograms::snapshot`]).
pub fn prometheus_text(counters: &Counters, hists: &Histograms) -> String {
    let mut out = String::new();
    for (name, value) in counters.snapshot() {
        let name = metric_name(&name);
        out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
    }
    for (name, summary) in hists.snapshot() {
        let name = metric_name(&name);
        out.push_str(&format!("# TYPE {name} summary\n"));
        for (q, v) in [
            ("0.5", summary.p50),
            ("0.9", summary.p90),
            ("0.99", summary.p99),
        ] {
            out.push_str(&format!("{name}{{quantile=\"{q}\"}} {v}\n"));
        }
        out.push_str(&format!("{name}_sum {}\n", summary.sum));
        out.push_str(&format!("{name}_count {}\n", summary.count));
    }
    out
}

/// One counter's movement across a window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRate {
    /// Registry counter name (unprefixed).
    pub name: String,
    /// Increase across the window (counters are monotonic, so ≥ 0).
    pub delta: u64,
    /// `delta` divided by the window's wall-clock seconds.
    pub per_sec: f64,
}

/// One windowed delta snapshot: every counter's movement since the
/// previous [`DeltaWindow::tick`].
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSnapshot {
    /// Wall-clock length of the window in seconds.
    pub window_secs: f64,
    /// Per-counter movement, registration order.
    pub rates: Vec<WindowRate>,
}

impl WindowSnapshot {
    /// Compact single-line rendering of the non-zero rates
    /// (`name +delta (rate/s)`), for structured-event details.
    pub fn compact(&self) -> String {
        let mut parts: Vec<String> = self
            .rates
            .iter()
            .filter(|r| r.delta > 0)
            .map(|r| format!("{} +{} ({:.0}/s)", r.name, r.delta, r.per_sec))
            .collect();
        if parts.is_empty() {
            parts.push("idle".to_string());
        }
        parts.join(", ")
    }
}

/// Turns monotonic counter totals into windowed rates by remembering
/// the previous snapshot.
#[derive(Debug)]
pub struct DeltaWindow {
    prev: Vec<(String, u64)>,
    last_tick: Instant,
}

impl DeltaWindow {
    /// Opens a window anchored at the registry's current totals.
    pub fn new(counters: &Counters) -> Self {
        DeltaWindow {
            prev: counters.snapshot(),
            last_tick: Instant::now(),
        }
    }

    /// Closes the current window and opens the next: returns every
    /// counter's movement since the previous tick (counters registered
    /// mid-window are reported against an implicit previous value of
    /// zero).
    pub fn tick(&mut self, counters: &Counters) -> WindowSnapshot {
        let now = Instant::now();
        let window_secs = now.duration_since(self.last_tick).as_secs_f64();
        let current = counters.snapshot();
        let rates = current
            .iter()
            .map(|(name, value)| {
                let prev = self
                    .prev
                    .iter()
                    .find(|(n, _)| n == name)
                    .map_or(0, |(_, v)| *v);
                let delta = value.saturating_sub(prev);
                WindowRate {
                    name: name.clone(),
                    delta,
                    per_sec: delta as f64 / window_secs.max(f64::EPSILON),
                }
            })
            .collect();
        self.prev = current;
        self.last_tick = now;
        WindowSnapshot { window_secs, rates }
    }
}

/// Checks that `text` is a well-formed document in the subset of the
/// Prometheus text format that [`prometheus_text`] emits, and returns
/// the family names declared by `# TYPE` lines (in order).
///
/// # Errors
///
/// A description of the first malformed line (1-based line number
/// included), or of a sample series that precedes any `# TYPE`
/// declaration.
pub fn validate_prometheus_text(text: &str) -> Result<Vec<String>, String> {
    fn is_metric_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            && s.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }

    let mut families: Vec<String> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (name, kind) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
            if !is_metric_name(name) {
                return Err(format!("line {lineno}: bad family name {name:?}"));
            }
            if !matches!(kind, "counter" | "gauge" | "summary" | "histogram") {
                return Err(format!("line {lineno}: bad family type {kind:?}"));
            }
            if parts.next().is_some() {
                return Err(format!("line {lineno}: trailing tokens in TYPE line"));
            }
            families.push(name.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments are legal
        }
        // A sample: `name[{labels}] value`.
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {lineno}: sample without a value"))?;
        let name = series.split('{').next().unwrap_or("");
        let base = name
            .strip_suffix("_sum")
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(name);
        if !is_metric_name(name) {
            return Err(format!("line {lineno}: bad series name {name:?}"));
        }
        if value.parse::<f64>().is_err() {
            return Err(format!("line {lineno}: non-numeric value {value:?}"));
        }
        if !families.iter().any(|f| f == base || f == name) {
            return Err(format!(
                "line {lineno}: series {name:?} precedes its TYPE declaration"
            ));
        }
    }
    Ok(families)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    #[test]
    fn exposition_covers_counters_and_histograms() {
        let t = Tracer::null();
        let c = t.counters().register("fleet_accepted");
        t.counters().add(c, 41);
        let h = t.histograms().register("lat_fleet_verify");
        t.histograms().record(h, 100);
        t.histograms().record(h, 300);
        let text = prometheus_text(t.counters(), t.histograms());
        assert!(text.contains("# TYPE tytan_fleet_accepted counter\n"));
        assert!(text.contains("tytan_fleet_accepted 41\n"));
        assert!(text.contains("# TYPE tytan_lat_fleet_verify summary\n"));
        assert!(text.contains("tytan_lat_fleet_verify{quantile=\"0.99\"}"));
        assert!(text.contains("tytan_lat_fleet_verify_count 2\n"));
        let families = validate_prometheus_text(&text).expect("well-formed");
        assert_eq!(
            families,
            vec!["tytan_fleet_accepted", "tytan_lat_fleet_verify"]
        );
    }

    #[test]
    fn empty_histograms_are_skipped() {
        let t = Tracer::null();
        t.histograms().register("lat_never_recorded");
        let text = prometheus_text(t.counters(), t.histograms());
        assert!(!text.contains("lat_never_recorded"));
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(metric_name("a.b-c/d"), "tytan_a_b_c_d");
        assert_eq!(metric_name("ok_name:x9"), "tytan_ok_name:x9");
    }

    #[test]
    fn delta_window_reports_movement_not_totals() {
        let t = Tracer::null();
        let c = t.counters().register("reqs");
        t.counters().add(c, 10);
        let mut window = DeltaWindow::new(t.counters());
        t.counters().add(c, 5);
        let snap = window.tick(t.counters());
        assert_eq!(snap.rates.len(), 1);
        assert_eq!(snap.rates[0].name, "reqs");
        assert_eq!(snap.rates[0].delta, 5);
        assert!(snap.rates[0].per_sec > 0.0);
        // Next window starts from the new totals.
        let snap = window.tick(t.counters());
        assert_eq!(snap.rates[0].delta, 0);
        assert!(snap.compact().contains("idle"));
    }

    #[test]
    fn counters_registered_mid_window_count_from_zero() {
        let t = Tracer::null();
        let mut window = DeltaWindow::new(t.counters());
        let c = t.counters().register("late");
        t.counters().add(c, 7);
        let snap = window.tick(t.counters());
        assert_eq!(snap.rates[0].delta, 7);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_prometheus_text("tytan_x 1\n").is_err()); // no TYPE
        assert!(validate_prometheus_text("# TYPE tytan_x widget\ntytan_x 1\n").is_err());
        assert!(validate_prometheus_text("# TYPE tytan_x counter\ntytan_x abc\n").is_err());
        assert!(validate_prometheus_text("# TYPE 9bad counter\n").is_err());
        assert!(
            validate_prometheus_text("# TYPE tytan_x summary\ntytan_x_count 3\n").is_ok(),
            "suffixed series belong to their base family"
        );
    }
}
