//! A minimal JSON reader.
//!
//! The workspace builds fully offline with no registry dependencies, so
//! exports that must be *verified* — the Chrome trace document, the
//! `BENCH_tables.json` schema check in CI — need an in-tree parser. This
//! is a strict recursive-descent reader of the whole JSON grammar
//! (objects, arrays, strings with escapes, numbers, booleans, null); it
//! favours clear errors over speed and is not used on any hot path.

use std::fmt;

/// A parsed JSON value. Numbers are `f64`, like the format itself.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order preserved, duplicate keys kept.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (first match); `None` on other kinds.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }

    /// JSON type name for error messages ("object", "number", …).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses `input` as one JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first offending byte.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        let Some(slice) = self.bytes.get(self.pos..end) else {
            return Err(self.err("truncated \\u escape"));
        };
        let text = std::str::from_utf8(slice).map_err(|_| self.err("non-ASCII \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("escape is not a scalar value"))?;
                            out.push(c);
                        }
                        other => return Err(self.err(format!("bad escape '\\{}'", other as char))),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| b & 0xc0 == 0x80) {
                        self.pos += 1;
                    }
                    let text = std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("input is valid UTF-8");
                    out.push_str(text);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Number(42.0));
        assert_eq!(parse("-2.5e2").unwrap(), Value::Number(-250.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, {"b": null}, "x"], "c": {"d": true}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")),
            Some(&Value::Bool(true))
        );
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[1].get("b"), Some(&Value::Null));
    }

    #[test]
    fn string_escapes_decode() {
        let v = parse(r#""a\"b\\c\ndAµ""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAµ"));
        // Surrogate pair for U+1F600.
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1}x",
            "\"lone\\ud800\"",
            "\"bad\\q\"",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn error_carries_offset() {
        let err = parse("[1, ?]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }
}
