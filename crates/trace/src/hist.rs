//! Log-linear (HDR-style) fixed-bin latency histograms.
//!
//! The bench trajectory needs *distributions*, not just totals: the paper's
//! real-time claims (§6, Tables 4–6) are about worst-case interrupt latency
//! and context-switch jitter, which a mean hides. A [`Histogram`] records
//! `u64` cycle durations into a fixed set of bins — exact below 16, then 16
//! sub-buckets per power of two — so the relative quantile error is bounded
//! by 1/16 (6.25%) at any magnitude while the whole structure stays a flat
//! array of relaxed atomics: recording is lock-free, allocation-free, and
//! guest-cycle-neutral like the rest of the observation plane.
//!
//! [`Histograms`] is the shared registry mirroring [`crate::Counters`]:
//! register a name once, copy the [`HistId`] into the recording path, and
//! degrade to a discard slot past capacity instead of aborting.
//!
//! # Examples
//!
//! ```
//! use tytan_trace::hist::Histograms;
//!
//! let hists = Histograms::new();
//! let irq = hists.register("irq_entry");
//! for v in [10, 12, 300, 40_000] {
//!     hists.record(irq, v);
//! }
//! let s = hists.get("irq_entry").unwrap().summary();
//! assert_eq!(s.count, 4);
//! assert_eq!(s.max, 40_000);
//! assert!(s.p50 >= 10 && s.p50 <= 12);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Values below this record exactly (one bin per value).
const LINEAR_LIMIT: u64 = 16;
/// Sub-buckets per power of two above the linear range.
const SUB_BUCKETS: usize = 16;
/// Total bins: 16 exact + 16 per power of two for exponents 4..=63.
pub const NUM_BUCKETS: usize = LINEAR_LIMIT as usize + (64 - 4) * SUB_BUCKETS;

/// Maximum number of registered histograms. Registration past this point
/// returns [`HistId::DISCARD`]; recordings land in a sink slot that is
/// never reported — observability degrades, it never aborts the platform.
pub const MAX_HISTOGRAMS: usize = 64;

/// Bin index for a value: identity below 16, then log-linear.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_LIMIT {
        v as usize
    } else {
        // msb >= 4; the top 5 significant bits select the bin, so every
        // bin spans at most 1/16 of its value range.
        let msb = 63 - v.leading_zeros() as usize;
        LINEAR_LIMIT as usize + (msb - 4) * SUB_BUCKETS + (((v >> (msb - 4)) as usize) & 15)
    }
}

/// Smallest value mapping to bin `i` (the reported quantile value).
fn bucket_low(i: usize) -> u64 {
    if i < LINEAR_LIMIT as usize {
        i as u64
    } else {
        let rel = i - LINEAR_LIMIT as usize;
        let msb = 4 + rel / SUB_BUCKETS;
        let sub = (rel % SUB_BUCKETS) as u64;
        (16 + sub) << (msb - 4)
    }
}

/// Point-in-time summary of one distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// 50th percentile (bin lower bound; exact below 16).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest recorded value (exact, not binned).
    pub max: u64,
}

/// One log-linear histogram of `u64` durations.
///
/// All operations are relaxed atomics; `record` is safe to call from any
/// layer at any time and never blocks or allocates.
#[derive(Debug)]
pub struct Histogram {
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating sum: a wrapped total would corrupt every derived mean.
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(v);
            match self
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (exact).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Value at quantile `q` in `[0, 1]`: the lower bound of the first bin
    /// whose cumulative count reaches `ceil(q * count)`. Exact below 16,
    /// within 1/16 relative error above. Returns 0 for an empty histogram;
    /// `q >= 1` reports the exact maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max();
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_low(i);
            }
        }
        self.max()
    }

    /// Count/sum/p50/p90/p99/max in one pass-friendly struct.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count(),
            sum: self.sum(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }

    /// Clears all bins and stats (for registry reuse across runs).
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Handle to one registered histogram. Copy it into recording paths so
/// each `record` is an index plus three relaxed atomic ops, no lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(usize);

impl HistId {
    /// The overflow slot: recordings land in a histogram that is never
    /// snapshotted by name.
    pub const DISCARD: HistId = HistId(MAX_HISTOGRAMS);
}

/// A registry of named histograms, mirroring [`crate::Counters`]:
/// registration is idempotent by name, capacity overflow degrades to
/// [`HistId::DISCARD`], recording is lock-free.
#[derive(Debug)]
pub struct Histograms {
    names: Mutex<Vec<String>>,
    // One extra slot receives recordings through `HistId::DISCARD`.
    hists: Vec<Histogram>,
}

impl Default for Histograms {
    fn default() -> Self {
        Histograms::new()
    }
}

impl Histograms {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Histograms {
            names: Mutex::new(Vec::new()),
            hists: (0..=MAX_HISTOGRAMS).map(|_| Histogram::new()).collect(),
        }
    }

    /// Registers (or finds) the histogram named `name`. Registering the
    /// same name twice returns the same id.
    pub fn register(&self, name: &str) -> HistId {
        let mut names = self.names.lock().expect("histogram registry lock");
        if let Some(i) = names.iter().position(|n| n == name) {
            return HistId(i);
        }
        if names.len() >= MAX_HISTOGRAMS {
            return HistId::DISCARD;
        }
        names.push(name.to_string());
        HistId(names.len() - 1)
    }

    /// Number of registered histograms.
    pub fn len(&self) -> usize {
        self.names.lock().expect("histogram registry lock").len()
    }

    /// Whether no histograms are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records one value into the histogram behind `id`.
    #[inline]
    pub fn record(&self, id: HistId, v: u64) {
        self.hists[id.0].record(v);
    }

    /// The histogram behind `id` (the discard slot for `DISCARD`).
    pub fn hist(&self, id: HistId) -> &Histogram {
        &self.hists[id.0]
    }

    /// Looks a histogram up by name, if registered.
    pub fn get(&self, name: &str) -> Option<&Histogram> {
        let names = self.names.lock().expect("histogram registry lock");
        let i = names.iter().position(|n| n == name)?;
        Some(&self.hists[i])
    }

    /// Summaries of every *non-empty* registered histogram, in
    /// registration order. Empty distributions are skipped: a latency
    /// table full of zero rows only hides the ones that measured.
    pub fn snapshot(&self) -> Vec<(String, Summary)> {
        let names = self.names.lock().expect("histogram registry lock");
        names
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.hists[*i].is_empty())
            .map(|(i, n)| (n.clone(), self.hists[i].summary()))
            .collect()
    }

    /// Resets every histogram (names stay registered).
    pub fn reset(&self) {
        for h in &self.hists {
            h.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..16 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.sum(), (0..16).sum::<u64>());
        assert_eq!(h.quantile(0.0), 0);
        // rank ceil(0.5*16)=8 → 8th smallest (1-based) is value 7.
        assert_eq!(h.quantile(0.5), 7);
        assert_eq!(h.max(), 15);
    }

    #[test]
    fn bucket_bounds_are_monotone_and_tight() {
        // Every bin's lower bound maps back into that bin, bounds strictly
        // increase, and the relative width never exceeds 1/16.
        let mut prev = None;
        for i in 0..NUM_BUCKETS {
            let low = bucket_low(i);
            assert_eq!(bucket_index(low), i, "bin {i} low {low}");
            if let Some(p) = prev {
                assert!(low > p, "bin {i} not monotone");
            }
            prev = Some(low);
        }
        for v in [16u64, 17, 255, 256, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            let low = bucket_low(i);
            assert!(low <= v);
            // Width of the bin is low/16 for log-linear bins.
            if v >= 16 {
                assert!(
                    (v - low) as f64 <= low as f64 / 16.0 + 1.0,
                    "v={v} low={low}"
                );
            }
        }
    }

    #[test]
    fn quantiles_are_within_one_sixteenth() {
        let h = Histogram::new();
        // A spread of magnitudes: 1000 values from 100 to 100_000.
        for i in 0..1000u64 {
            h.record(100 + i * 100);
        }
        let p50 = h.quantile(0.5);
        let exact = 100 + 499 * 100; // 500th smallest
        assert!(
            (p50 as f64 - exact as f64).abs() / exact as f64 <= 1.0 / 16.0,
            "p50={p50} exact={exact}"
        );
        assert_eq!(h.quantile(1.0), 100 + 999 * 100);
        assert_eq!(h.max(), 100 + 999 * 100);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(
            s,
            Summary {
                count: 0,
                sum: 0,
                p50: 0,
                p90: 0,
                p99: 0,
                max: 0
            }
        );
    }

    #[test]
    fn sum_saturates() {
        let h = Histogram::new();
        h.record(u64::MAX - 1);
        h.record(u64::MAX - 1);
        assert_eq!(h.sum(), u64::MAX);
    }

    #[test]
    fn registry_is_idempotent_and_degrades() {
        let r = Histograms::new();
        let a = r.register("a");
        assert_eq!(r.register("a"), a);
        for i in 0..MAX_HISTOGRAMS - 1 {
            r.register(&format!("h{i}"));
        }
        assert_eq!(r.len(), MAX_HISTOGRAMS);
        let spill = r.register("one_too_many");
        assert_eq!(spill, HistId::DISCARD);
        r.record(spill, 42);
        assert!(r.get("one_too_many").is_none());
        assert!(
            r.get("a").unwrap().is_empty(),
            "discard must not alias slot 0"
        );
    }

    #[test]
    fn snapshot_skips_empty_distributions() {
        let r = Histograms::new();
        let a = r.register("recorded");
        r.register("silent");
        r.record(a, 5);
        r.record(a, 500);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].0, "recorded");
        assert_eq!(snap[0].1.count, 2);
        assert_eq!(snap[0].1.max, 500);
        r.reset();
        assert!(r.snapshot().is_empty());
        assert_eq!(r.len(), 2, "names survive a reset");
    }
}
