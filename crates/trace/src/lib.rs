//! Cross-layer observability for the TyTAN reproduction.
//!
//! The paper's evaluation (Tables 1, 4, 7) is an exercise in knowing where
//! guest cycles go — interrupt entry, EA-MPU checks, IPC traps, attestation
//! — and the PR 1 fast-path caches added host-side state (predecode cache,
//! EA-MPU decision cache) whose effectiveness was previously invisible.
//! This crate is the shared observation plane all layers report into:
//!
//! - [`TraceEvent`]: a cycle-stamped event tagged with the [`Layer`] that
//!   emitted it and a logical track id (task, vector, or concern).
//! - [`TraceSink`]: where events go. [`NullSink`] ignores everything and is
//!   the default — an unattached layer pays one `Option` branch, nothing
//!   more. [`RingRecorder`] keeps the newest events in a bounded
//!   drop-oldest ring and counts what it sheds.
//! - [`Counters`]: a monotonic, saturating counter registry shared across
//!   layers via relaxed atomics (lock-free on the increment path).
//! - [`chrome`]: Chrome `trace_event` JSON export (one pid per layer, one
//!   tid per task/track, spans from [`EventKind::Enter`]/[`EventKind::Exit`]
//!   pairs) loadable in `chrome://tracing` or Perfetto.
//! - [`json`]: a minimal JSON reader used to verify exports and validate
//!   `BENCH_tables.json` against its schema without external dependencies.
//! - [`events`]: a bounded structured event log (severity, device,
//!   session, correlation id, monotonic sequence) with a canonical,
//!   byte-round-trippable JSONL encoding — the narrative complement to
//!   the numeric registries.
//! - [`metrics`]: Prometheus text-format exposition of the counter and
//!   histogram registries, plus windowed delta snapshots (rates, not
//!   totals) for periodic emission.
//!
//! # Cycle neutrality
//!
//! Instrumentation observes the platform from the host side only: recording
//! an event or bumping a counter never calls `Machine::tick` and never
//! changes a decision. The differential identity suites
//! (`crates/emu/tests/fast_path_identity.rs`,
//! `crates/bench/tests/cycle_identity.rs`) run with a recorder attached and
//! assert guest cycle counts stay bit-identical.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use tytan_trace::{EventKind, Layer, RingRecorder, TraceSink, Tracer};
//!
//! let ring = Arc::new(RingRecorder::new(1024));
//! let tracer = Tracer::new(ring.clone());
//! let requests = tracer.counters().register("requests");
//!
//! tracer.emit(Layer::Core, 0, 100, EventKind::Enter("boot"));
//! tracer.emit(Layer::Core, 0, 250, EventKind::Exit("boot"));
//! tracer.counters().add(requests, 1);
//!
//! assert_eq!(ring.events().len(), 2);
//! assert_eq!(tracer.counters().get("requests"), Some(1));
//! let json = tytan_trace::chrome::chrome_trace_json(&ring.events());
//! assert!(tytan_trace::json::parse(&json).is_ok());
//! ```

use std::sync::Arc;

pub mod chrome;
pub mod counters;
pub mod events;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod ring;

pub use counters::{CounterId, Counters};
pub use hist::{HistId, Histograms};
pub use ring::RingRecorder;

/// The layer of the stack an event originated from. Maps to one Chrome
/// trace pid per layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layer {
    /// The simulated core: instructions, faults, IRQs, MMIO.
    Emu,
    /// The execution-aware MPU: rule decisions and cache behaviour.
    EaMpu,
    /// The kernel: scheduling, ticks, task lifecycle.
    Rtos,
    /// TyTAN trusted components: loader, IPC proxy, attestation.
    Core,
    /// The host-side fleet verifier service: codec, sessions, batches.
    Fleet,
}

impl Layer {
    /// Stable display name (also the Chrome trace process name).
    pub fn name(self) -> &'static str {
        match self {
            Layer::Emu => "emu",
            Layer::EaMpu => "eampu",
            Layer::Rtos => "rtos",
            Layer::Core => "core",
            Layer::Fleet => "fleet",
        }
    }

    /// Chrome trace pid for the layer (1-based, stable).
    pub fn pid(self) -> u32 {
        match self {
            Layer::Emu => 1,
            Layer::EaMpu => 2,
            Layer::Rtos => 3,
            Layer::Core => 4,
            Layer::Fleet => 5,
        }
    }
}

/// What happened. Names are `&'static str` so recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Begin of a named span (Chrome phase `B`). Must be balanced by an
    /// [`EventKind::Exit`] with the same name on the same `(layer, tid)`.
    Enter(&'static str),
    /// End of the matching span (Chrome phase `E`).
    Exit(&'static str),
    /// A point event (Chrome instant, phase `i`).
    Mark(&'static str),
    /// A point event carrying a value (exported as a Chrome counter, `C`).
    Value(&'static str, u64),
}

impl EventKind {
    /// The event's name irrespective of kind.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Enter(n) | EventKind::Exit(n) | EventKind::Mark(n) => n,
            EventKind::Value(n, _) => n,
        }
    }
}

/// A cycle-stamped trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Guest cycle counter at the event.
    pub cycle: u64,
    /// Emitting layer (Chrome pid).
    pub layer: Layer,
    /// Logical track within the layer — task index, IRQ vector, or a
    /// per-concern lane (Chrome tid). `0` is the layer's main track.
    pub tid: u32,
    /// The event.
    pub kind: EventKind,
}

/// Where events go. Implementations must tolerate being called from any
/// layer at any time; `record` takes `&self` so sinks can be shared.
pub trait TraceSink: Send + Sync {
    /// Whether recording is active. Layers may use this to skip building
    /// events entirely; `false` makes `record` a dead call.
    fn enabled(&self) -> bool {
        true
    }

    /// Events this sink has shed (bounded sinks drop-oldest under
    /// pressure). Defaults to zero for sinks that never shed; surfaced
    /// fleet-wide so silent trace loss is visible in run summaries.
    fn dropped(&self) -> u64 {
        0
    }

    /// Accepts one event.
    fn record(&self, event: TraceEvent);
}

/// The no-op sink: disabled, records nothing, compiles to nothing on the
/// hot path (an `enabled()` check folds to `false`).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: TraceEvent) {}
}

/// A cheaply-cloneable handle pairing a shared sink with a shared counter
/// registry. Layers hold a `Tracer` (or none at all) and report through it.
#[derive(Clone)]
pub struct Tracer {
    sink: Arc<dyn TraceSink>,
    counters: Arc<Counters>,
    hists: Arc<Histograms>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .field("counters", &self.counters.len())
            .field("histograms", &self.hists.len())
            .finish()
    }
}

impl Tracer {
    /// Builds a tracer around `sink` with fresh counter and histogram
    /// registries.
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        Tracer {
            sink,
            counters: Arc::new(Counters::new()),
            hists: Arc::new(Histograms::new()),
        }
    }

    /// Builds a tracer sharing an existing counter registry (histograms
    /// stay fresh).
    pub fn with_counters(sink: Arc<dyn TraceSink>, counters: Arc<Counters>) -> Self {
        Tracer {
            sink,
            counters,
            hists: Arc::new(Histograms::new()),
        }
    }

    /// A disabled tracer ([`NullSink`] + empty registry). Counters still
    /// count — they are cheap — but no events are recorded.
    pub fn null() -> Self {
        Tracer::new(Arc::new(NullSink))
    }

    /// Whether the sink is recording events.
    pub fn enabled(&self) -> bool {
        self.sink.enabled()
    }

    /// Events the sink has shed (see [`TraceSink::dropped`]).
    pub fn sink_dropped(&self) -> u64 {
        self.sink.dropped()
    }

    /// The shared counter registry.
    pub fn counters(&self) -> &Arc<Counters> {
        &self.counters
    }

    /// The shared latency histogram registry. Like counters, histograms
    /// record even when the sink is disabled — they are cheap, and the
    /// latency tables should not depend on event recording being on.
    pub fn histograms(&self) -> &Arc<Histograms> {
        &self.hists
    }

    /// Records one event if the sink is enabled.
    #[inline]
    pub fn emit(&self, layer: Layer, tid: u32, cycle: u64, kind: EventKind) {
        if self.sink.enabled() {
            self.sink.record(TraceEvent {
                cycle,
                layer,
                tid,
                kind,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_tracer_records_nothing_but_counts() {
        let t = Tracer::null();
        assert!(!t.enabled());
        let id = t.counters().register("x");
        t.counters().add(id, 3);
        t.emit(Layer::Emu, 0, 1, EventKind::Mark("m"));
        assert_eq!(t.counters().get("x"), Some(3));
    }

    #[test]
    fn null_tracer_still_records_histograms() {
        let t = Tracer::null();
        let id = t.histograms().register("lat");
        t.histograms().record(id, 12);
        t.histograms().record(id, 48);
        let s = t.histograms().get("lat").unwrap().summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 48);
    }

    #[test]
    fn emit_reaches_ring() {
        let ring = Arc::new(RingRecorder::new(4));
        let t = Tracer::new(ring.clone());
        assert!(t.enabled());
        t.emit(Layer::Rtos, 7, 42, EventKind::Value("tick", 9));
        let events = ring.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].cycle, 42);
        assert_eq!(events[0].tid, 7);
        assert_eq!(events[0].kind, EventKind::Value("tick", 9));
    }

    #[test]
    fn layer_pids_are_distinct() {
        let pids = [
            Layer::Emu,
            Layer::EaMpu,
            Layer::Rtos,
            Layer::Core,
            Layer::Fleet,
        ]
        .map(Layer::pid);
        for (i, a) in pids.iter().enumerate() {
            for b in &pids[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
