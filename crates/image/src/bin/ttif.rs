//! The TTIF command-line tool: build, inspect, and relocate task images.
//!
//! ```text
//! ttif build <source.s> -o <image.ttif> [--name n] [--stack bytes] [--secure]
//! ttif info  <image.ttif>                       print the image header
//! ttif measure <image.ttif>                     print the canonical
//!                                               measurement bytes length
//!                                               and 64-byte block count
//! ```

use sp32::asm::assemble;
use std::process::ExitCode;
use tytan_image::TaskImage;

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let command = args
        .next()
        .ok_or("missing command (build | info | measure)")?;
    let input = args.next().ok_or("missing input file")?;
    let mut output = None;
    let mut name = "task".to_string();
    let mut stack = 512u32;
    let mut secure = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-o" | "--output" => output = Some(args.next().ok_or("-o needs a path")?),
            "--name" => name = args.next().ok_or("--name needs a value")?,
            "--stack" => {
                stack = args
                    .next()
                    .ok_or("--stack needs a value")?
                    .parse()
                    .map_err(|_| "invalid stack size")?;
            }
            "--secure" => secure = true,
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }

    match command.as_str() {
        "build" => {
            let source =
                std::fs::read_to_string(&input).map_err(|e| format!("read {input}: {e}"))?;
            let program = assemble(&source, 0).map_err(|e| e.to_string())?;
            let image = TaskImage::from_program(name, &program, stack, secure)
                .map_err(|e| e.to_string())?;
            let path = output.ok_or("build requires -o <image.ttif>")?;
            std::fs::write(&path, image.to_bytes()).map_err(|e| format!("write {path}: {e}"))?;
            eprintln!(
                "wrote {path}: {} loadable bytes, {} relocations, {} total memory",
                image.loadable_len(),
                image.reloc_count(),
                image.total_memory_size(),
            );
        }
        "info" => {
            let bytes = std::fs::read(&input).map_err(|e| format!("read {input}: {e}"))?;
            let image = TaskImage::parse(&bytes).map_err(|e| e.to_string())?;
            println!("name:          {}", image.name());
            println!("secure:        {}", image.is_secure());
            println!("entry offset:  {:#x}", image.entry_offset());
            println!("text:          {} bytes", image.text().len());
            println!("data:          {} bytes", image.data().len());
            println!("bss:           {} bytes", image.bss_len());
            println!("stack:         {} bytes", image.stack_len());
            println!("total memory:  {} bytes", image.total_memory_size());
            println!(
                "relocations:   {} sites {:?}",
                image.reloc_count(),
                image.relocs()
            );
        }
        "measure" => {
            let bytes = std::fs::read(&input).map_err(|e| format!("read {input}: {e}"))?;
            let image = TaskImage::parse(&bytes).map_err(|e| e.to_string())?;
            let measurement = image.measurement_bytes();
            println!(
                "measurement input: {} bytes = {} hash block(s)",
                measurement.len(),
                image.measurement_blocks(),
            );
        }
        other => return Err(format!("unknown command `{other}`")),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("ttif: {message}");
            ExitCode::FAILURE
        }
    }
}
