//! Deterministic byte-level mutators for serialized TTIF images.
//!
//! These are the corruption primitives the fuzz plane applies to
//! [`TaskImage::to_bytes`](crate::TaskImage::to_bytes) output before
//! handing it back to [`TaskImage::parse`](crate::TaskImage::parse):
//! bit flips (storage rot, transmission errors), word stomps (hostile
//! header edits), and truncation (interrupted transfers). Every mutator
//! is a pure function of its arguments — the randomness lives in the
//! caller's seeded RNG, so a mutated case replays byte-identically from
//! its parameters.
//!
//! The contract under test is stated by
//! [`TaskImage::parse`](crate::TaskImage::parse): any byte
//! stream either parses into a valid image or returns a typed
//! [`ImageError`](crate::ImageError) — never a panic, never an image
//! violating the format invariants.

/// Flips one bit. `bit` is taken modulo the total bit length, so any
/// `u64` from a fuzzer RNG addresses a valid bit; returns the absolute
/// byte offset touched. Zero-length input is a no-op returning 0.
pub fn flip_bit(bytes: &mut [u8], bit: u64) -> usize {
    if bytes.is_empty() {
        return 0;
    }
    let bit = bit % (bytes.len() as u64 * 8);
    let byte = (bit / 8) as usize;
    bytes[byte] ^= 1 << (bit % 8);
    byte
}

/// Overwrites the 32-bit little-endian word containing `offset` with
/// `value` — the "hostile header edit" primitive. The offset is taken
/// modulo the length and clamped so the word fits; inputs shorter than
/// four bytes are left untouched.
pub fn stomp_word(bytes: &mut [u8], offset: u64, value: u32) {
    if bytes.len() < 4 {
        return;
    }
    let at = (offset as usize % bytes.len()).min(bytes.len() - 4);
    bytes[at..at + 4].copy_from_slice(&value.to_le_bytes());
}

/// A copy cut off after `len` bytes (modulo `len + 1` of the input
/// length, so any `u64` yields a valid cut, including zero and
/// full-length) — the "transfer died mid-image" primitive.
pub fn truncated(bytes: &[u8], len: u64) -> Vec<u8> {
    let keep = (len % (bytes.len() as u64 + 1)) as usize;
    bytes[..keep].to_vec()
}

/// Swaps two equal-length, non-overlapping ranges chosen from the
/// parameters — the "sectors written out of order" primitive. Range
/// geometry is derived modulo the input length; degenerate geometries
/// (overlap, zero length, inputs under two bytes) leave the input
/// untouched.
pub fn swap_ranges(bytes: &mut [u8], a: u64, b: u64, len: u64) {
    if bytes.len() < 2 {
        return;
    }
    let half = bytes.len() / 2;
    let len = (len as usize % half).max(1);
    let a = a as usize % (bytes.len() - len + 1);
    let b = b as usize % (bytes.len() - len + 1);
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    if lo + len > hi {
        return; // overlapping: leave untouched
    }
    let (first, second) = bytes.split_at_mut(hi);
    first[lo..lo + len].swap_with_slice(&mut second[..len]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_bit_is_an_involution_and_wraps() {
        let mut buf = vec![0u8; 8];
        let at = flip_bit(&mut buf, 13);
        assert_eq!(at, 1);
        assert_eq!(buf[1], 1 << 5);
        flip_bit(&mut buf, 13);
        assert!(buf.iter().all(|&b| b == 0));
        // Bit index far past the end wraps instead of panicking.
        flip_bit(&mut buf, u64::MAX);
        assert_eq!(buf.iter().filter(|&&b| b != 0).count(), 1);
        // Zero-length input is a no-op.
        assert_eq!(flip_bit(&mut [], 7), 0);
    }

    #[test]
    fn stomp_word_clamps_to_the_buffer() {
        let mut buf = vec![0u8; 6];
        stomp_word(&mut buf, 5, 0xdead_beef);
        // Offset 5 clamps to 2 so the word fits.
        assert_eq!(&buf[2..6], &0xdead_beef_u32.to_le_bytes());
        let mut tiny = vec![0u8; 3];
        stomp_word(&mut tiny, 0, 0xffff_ffff);
        assert!(tiny.iter().all(|&b| b == 0), "short input untouched");
    }

    #[test]
    fn truncated_covers_every_cut_including_degenerate() {
        let buf: Vec<u8> = (0..10).collect();
        assert_eq!(truncated(&buf, 4), vec![0, 1, 2, 3]);
        assert_eq!(truncated(&buf, 10), buf);
        assert_eq!(truncated(&buf, 11), Vec::<u8>::new());
        assert!(truncated(&[], u64::MAX).is_empty());
    }

    #[test]
    fn swap_ranges_swaps_disjoint_and_skips_overlap() {
        let mut buf: Vec<u8> = (0..8).collect();
        swap_ranges(&mut buf, 0, 6, 2);
        assert_eq!(buf, vec![6, 7, 2, 3, 4, 5, 0, 1]);
        let mut same: Vec<u8> = (0..8).collect();
        swap_ranges(&mut same, 2, 3, 3); // overlapping geometry
        assert_eq!(same, (0..8).collect::<Vec<u8>>());
        swap_ranges(&mut [0u8], 0, 0, 1); // too short: no panic
    }
}
