//! TTIF: the TyTAN Task Image Format.
//!
//! The paper extends FreeRTOS with an ELF loader because "ELF supports
//! relocatable binaries and encodes all information required for relocation
//! in ELF file headers" (§4). TTIF is the reproduction's equivalent: a
//! compact relocatable container carrying exactly the information the
//! TyTAN loader and RTM need —
//!
//! - the task's text and static data, linked at base address 0,
//! - sizes for the zero-initialised `.bss` and the task stack,
//! - the entry-point offset, the secure-task flag, and
//! - a table of **relocation sites**: offsets of 32-bit words holding
//!   absolute addresses that must be rebased when the image is loaded at
//!   its runtime address.
//!
//! Relocation is [`apply_relocations`]; its inverse, [`revert_relocations`],
//! is what the RTM task uses to compute *position-independent*
//! measurements (§4: "the RTM task temporarily reverts the changes made
//! during relocation before computing the hash digest").
//!
//! # Examples
//!
//! Build an image straight from assembled SP32 source:
//!
//! ```
//! use sp32::asm::assemble;
//! use tytan_image::TaskImage;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble("start:\n movi r0, start\n hlt\n", 0)?;
//! let image = TaskImage::from_program("demo", &program, 256, true)?;
//! assert_eq!(image.reloc_count(), 1);
//! let parsed = TaskImage::parse(&image.to_bytes())?;
//! assert_eq!(parsed, image);
//! # Ok(())
//! # }
//! ```

use bytes::{Buf, BufMut, BytesMut};
use std::fmt;

pub mod mutate;

/// Magic bytes identifying a TTIF image.
pub const MAGIC: [u8; 4] = *b"TTIF";
/// Current format version.
pub const VERSION: u32 = 1;

/// Errors from [`TaskImage::parse`] and [`TaskImage::from_program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// The magic bytes are wrong — not a TTIF image.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The byte stream ended before the declared contents.
    Truncated,
    /// The entry point offset lies outside the text section.
    EntryOutOfRange {
        /// The offending entry offset.
        entry: u32,
    },
    /// A relocation site is unaligned or outside the loadable bytes.
    BadRelocSite {
        /// The offending site offset.
        site: u32,
    },
    /// A section length is implausible (e.g. unaligned text).
    BadSectionLen,
    /// [`TaskImage::from_program`] was given a program not linked at 0.
    ProgramNotAtBaseZero {
        /// The program's actual origin.
        origin: u32,
    },
    /// The name is longer than 255 bytes.
    NameTooLong,
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::BadMagic => write!(f, "not a TTIF image (bad magic)"),
            ImageError::BadVersion(v) => write!(f, "unsupported TTIF version {v}"),
            ImageError::Truncated => write!(f, "truncated TTIF image"),
            ImageError::EntryOutOfRange { entry } => {
                write!(f, "entry offset {entry:#x} outside text section")
            }
            ImageError::BadRelocSite { site } => {
                write!(f, "relocation site {site:#x} unaligned or out of range")
            }
            ImageError::BadSectionLen => write!(f, "implausible section length"),
            ImageError::ProgramNotAtBaseZero { origin } => {
                write!(
                    f,
                    "program must be assembled at origin 0, found {origin:#x}"
                )
            }
            ImageError::NameTooLong => write!(f, "task name exceeds 255 bytes"),
        }
    }
}

impl std::error::Error for ImageError {}

/// A relocatable task image.
///
/// The runtime memory layout after loading at `base` is contiguous:
///
/// ```text
/// base .. base+text_len                 text (code + embedded constants)
///      .. +data_len                     static data
///      .. +bss_len                      zero-initialised data
///      .. +stack_len                    task stack (grows downwards)
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskImage {
    name: String,
    secure: bool,
    entry_offset: u32,
    text: Vec<u8>,
    data: Vec<u8>,
    bss_len: u32,
    stack_len: u32,
    relocs: Vec<u32>,
}

impl TaskImage {
    /// Assembles an image from its parts.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::EntryOutOfRange`] (the entry point must be a
    /// 4-byte-aligned offset strictly inside `text` — the loader installs
    /// `base + entry_offset` as an EA-MPU entry point without re-checking,
    /// so the old "entrypoints are static" assumption is enforced here),
    /// [`ImageError::BadRelocSite`] (sites must be 4-byte aligned inside
    /// `text`+`data`), [`ImageError::BadSectionLen`] (text must be
    /// word-aligned), or [`ImageError::NameTooLong`].
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        secure: bool,
        entry_offset: u32,
        text: Vec<u8>,
        data: Vec<u8>,
        bss_len: u32,
        stack_len: u32,
        relocs: Vec<u32>,
    ) -> Result<Self, ImageError> {
        let name = name.into();
        if name.len() > 255 {
            return Err(ImageError::NameTooLong);
        }
        if !text.len().is_multiple_of(4) {
            return Err(ImageError::BadSectionLen);
        }
        if !entry_offset.is_multiple_of(4) || entry_offset as usize >= text.len() {
            return Err(ImageError::EntryOutOfRange {
                entry: entry_offset,
            });
        }
        let loadable = (text.len() + data.len()) as u32;
        for &site in &relocs {
            // `checked_add`: a site in the top 4 bytes of the address
            // space must not wrap past the bounds check.
            if !site.is_multiple_of(4) || site.checked_add(4).is_none_or(|end| end > loadable) {
                return Err(ImageError::BadRelocSite { site });
            }
        }
        Ok(TaskImage {
            name,
            secure,
            entry_offset,
            text,
            data,
            bss_len,
            stack_len,
            relocs,
        })
    }

    /// Builds an image from a program assembled at origin 0.
    ///
    /// The whole program becomes the text section; the assembler's recorded
    /// relocation sites become the TTIF relocation table.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::ProgramNotAtBaseZero`] if the program was
    /// assembled at a nonzero origin, or the validation errors of
    /// [`TaskImage::new`].
    pub fn from_program(
        name: impl Into<String>,
        program: &sp32::asm::Program,
        stack_len: u32,
        secure: bool,
    ) -> Result<Self, ImageError> {
        if program.origin != 0 {
            return Err(ImageError::ProgramNotAtBaseZero {
                origin: program.origin,
            });
        }
        let mut text = program.bytes.clone();
        while !text.len().is_multiple_of(4) {
            text.push(0);
        }
        TaskImage::new(
            name,
            secure,
            0,
            text,
            Vec::new(),
            0,
            stack_len,
            program.reloc_sites.clone(),
        )
    }

    /// The task's human-readable name (not part of the measurement).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the image requests loading as a secure (EA-MPU isolated) task.
    pub fn is_secure(&self) -> bool {
        self.secure
    }

    /// Entry point offset from the load base.
    pub fn entry_offset(&self) -> u32 {
        self.entry_offset
    }

    /// The text section.
    pub fn text(&self) -> &[u8] {
        &self.text
    }

    /// The static-data section.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Length of the zero-initialised section.
    pub fn bss_len(&self) -> u32 {
        self.bss_len
    }

    /// Length of the task stack.
    pub fn stack_len(&self) -> u32 {
        self.stack_len
    }

    /// The relocation-site table (offsets into text+data).
    pub fn relocs(&self) -> &[u32] {
        &self.relocs
    }

    /// Number of relocation sites (the paper's `n`, Table 5).
    pub fn reloc_count(&self) -> u32 {
        self.relocs.len() as u32
    }

    /// Bytes that get copied into memory at load time (text + data).
    pub fn loadable_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.text.len() + self.data.len());
        out.extend_from_slice(&self.text);
        out.extend_from_slice(&self.data);
        out
    }

    /// Length of the loadable part in bytes.
    pub fn loadable_len(&self) -> u32 {
        (self.text.len() + self.data.len()) as u32
    }

    /// Total memory footprint once loaded: text + data + bss + stack.
    pub fn total_memory_size(&self) -> u32 {
        self.loadable_len() + self.bss_len + self.stack_len
    }

    /// Number of 64-byte hash blocks the measurement covers (the paper's
    /// `b`, Table 7).
    pub fn measurement_blocks(&self) -> u32 {
        self.measurement_bytes().len().div_ceil(64) as u32
    }

    /// The canonical byte string the RTM hashes: the structural header
    /// (entry, section sizes — the "initial stack layout" of §4) followed
    /// by text and data *as linked at base 0*. The name is deliberately
    /// excluded so renaming a task does not change its identity.
    pub fn measurement_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.text.len() + self.data.len());
        out.extend_from_slice(&(self.secure as u32).to_le_bytes());
        out.extend_from_slice(&self.entry_offset.to_le_bytes());
        out.extend_from_slice(&(self.text.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.data.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.bss_len.to_le_bytes());
        out.extend_from_slice(&self.stack_len.to_le_bytes());
        out.extend_from_slice(&self.text);
        out.extend_from_slice(&self.data);
        out
    }

    /// Serializes the image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(
            40 + self.name.len() + self.text.len() + self.data.len() + 4 * self.relocs.len(),
        );
        buf.put_slice(&MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u32_le(self.secure as u32);
        buf.put_u32_le(self.entry_offset);
        buf.put_u32_le(self.text.len() as u32);
        buf.put_u32_le(self.data.len() as u32);
        buf.put_u32_le(self.bss_len);
        buf.put_u32_le(self.stack_len);
        buf.put_u32_le(self.relocs.len() as u32);
        buf.put_u32_le(self.name.len() as u32);
        buf.put_slice(self.name.as_bytes());
        buf.put_slice(&self.text);
        buf.put_slice(&self.data);
        for &site in &self.relocs {
            buf.put_u32_le(site);
        }
        buf.to_vec()
    }

    /// Parses an image serialized by [`TaskImage::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::BadMagic`], [`ImageError::BadVersion`],
    /// [`ImageError::Truncated`], or the structural validation errors of
    /// [`TaskImage::new`].
    pub fn parse(bytes: &[u8]) -> Result<Self, ImageError> {
        let mut buf = bytes;
        if buf.remaining() < 40 {
            return Err(if buf.remaining() >= 4 && buf[..4] != MAGIC {
                ImageError::BadMagic
            } else {
                ImageError::Truncated
            });
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if magic != MAGIC {
            return Err(ImageError::BadMagic);
        }
        let version = buf.get_u32_le();
        if version != VERSION {
            return Err(ImageError::BadVersion(version));
        }
        let secure = buf.get_u32_le() != 0;
        let entry_offset = buf.get_u32_le();
        let text_len = buf.get_u32_le() as usize;
        let data_len = buf.get_u32_le() as usize;
        let bss_len = buf.get_u32_le();
        let stack_len = buf.get_u32_le();
        let reloc_count = buf.get_u32_le() as usize;
        let name_len = buf.get_u32_le() as usize;
        let need = name_len
            .checked_add(text_len)
            .and_then(|n| n.checked_add(data_len))
            .and_then(|n| n.checked_add(reloc_count.checked_mul(4)?))
            .ok_or(ImageError::Truncated)?;
        if buf.remaining() < need {
            return Err(ImageError::Truncated);
        }
        let name = String::from_utf8_lossy(&buf[..name_len]).into_owned();
        buf.advance(name_len);
        let text = buf[..text_len].to_vec();
        buf.advance(text_len);
        let data = buf[..data_len].to_vec();
        buf.advance(data_len);
        let mut relocs = Vec::with_capacity(reloc_count);
        for _ in 0..reloc_count {
            relocs.push(buf.get_u32_le());
        }
        TaskImage::new(
            name,
            secure,
            entry_offset,
            text,
            data,
            bss_len,
            stack_len,
            relocs,
        )
    }
}

/// Rebases every relocation-site word in `loadable` by adding `load_base`.
///
/// `loadable` is the in-memory text+data of a task image linked at 0;
/// afterwards all absolute addresses point into `[load_base, ...)`.
///
/// # Panics
///
/// Panics if a site is out of range — images validate sites at
/// construction, so this only fires on corrupted inputs.
pub fn apply_relocations(loadable: &mut [u8], relocs: &[u32], load_base: u32) {
    patch(loadable, relocs, |w| w.wrapping_add(load_base));
}

/// Reverts [`apply_relocations`]: subtracts `load_base` from every site.
///
/// This is the RTM's position-independent-measurement primitive: reverting
/// a loaded task's relocations reproduces the bytes as linked at base 0, so
/// the measurement is independent of where the task was loaded.
///
/// # Panics
///
/// Panics if a site is out of range.
pub fn revert_relocations(loadable: &mut [u8], relocs: &[u32], load_base: u32) {
    patch(loadable, relocs, |w| w.wrapping_sub(load_base));
}

fn patch(loadable: &mut [u8], relocs: &[u32], f: impl Fn(u32) -> u32) {
    for &site in relocs {
        let i = site as usize;
        let word = u32::from_le_bytes(
            loadable[i..i + 4]
                .try_into()
                .expect("validated relocation site"),
        );
        loadable[i..i + 4].copy_from_slice(&f(word).to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sp32::asm::assemble;

    fn sample_image() -> TaskImage {
        let program = assemble(
            "start:\n movi r0, start\n movi r1, tail\n jmp start\ntail:\n hlt\n",
            0,
        )
        .unwrap();
        TaskImage::from_program("sample", &program, 128, true).unwrap()
    }

    #[test]
    fn from_program_counts_relocs() {
        let image = sample_image();
        assert_eq!(image.reloc_count(), 3);
        assert!(image.is_secure());
        assert_eq!(image.entry_offset(), 0);
        assert_eq!(image.stack_len(), 128);
    }

    #[test]
    fn serialization_roundtrip() {
        let image = sample_image();
        let parsed = TaskImage::parse(&image.to_bytes()).unwrap();
        assert_eq!(parsed, image);
    }

    #[test]
    fn parse_rejects_bad_magic() {
        let mut bytes = sample_image().to_bytes();
        bytes[0] = b'X';
        assert_eq!(TaskImage::parse(&bytes), Err(ImageError::BadMagic));
    }

    #[test]
    fn parse_rejects_bad_version() {
        let mut bytes = sample_image().to_bytes();
        bytes[4] = 99;
        assert_eq!(TaskImage::parse(&bytes), Err(ImageError::BadVersion(99)));
    }

    #[test]
    fn parse_rejects_truncation_at_every_length() {
        let bytes = sample_image().to_bytes();
        for len in 0..bytes.len() {
            let result = TaskImage::parse(&bytes[..len]);
            assert!(result.is_err(), "prefix of {len} bytes parsed");
        }
    }

    #[test]
    fn parse_rejects_out_of_range_reloc() {
        let image = sample_image();
        let mut bytes = image.to_bytes();
        // Last 4 bytes are the final reloc site; point it past the end.
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&0xffff_fff0u32.to_le_bytes());
        assert!(matches!(
            TaskImage::parse(&bytes),
            Err(ImageError::BadRelocSite { .. })
        ));
    }

    #[test]
    fn new_rejects_bad_entry() {
        let err = TaskImage::new("t", false, 100, vec![0; 8], vec![], 0, 64, vec![]).unwrap_err();
        assert_eq!(err, ImageError::EntryOutOfRange { entry: 100 });
    }

    #[test]
    fn new_rejects_misaligned_or_boundary_entry() {
        // Misaligned entry points can no longer slip through: the loader
        // installs `base + entry` as an EA-MPU entry point unchecked.
        let err = TaskImage::new("t", false, 2, vec![0; 8], vec![], 0, 64, vec![]).unwrap_err();
        assert_eq!(err, ImageError::EntryOutOfRange { entry: 2 });
        // An entry at text_len (one past the end) is out of range.
        let err = TaskImage::new("t", false, 8, vec![0; 8], vec![], 0, 64, vec![]).unwrap_err();
        assert_eq!(err, ImageError::EntryOutOfRange { entry: 8 });
        // Empty text has no valid entry point at all.
        let err = TaskImage::new("t", false, 0, vec![], vec![], 0, 64, vec![]).unwrap_err();
        assert_eq!(err, ImageError::EntryOutOfRange { entry: 0 });
    }

    #[test]
    fn new_rejects_wrapping_reloc_site() {
        // site + 4 used to wrap to 0 and pass the bounds check.
        let err = TaskImage::new("t", false, 0, vec![0; 8], vec![], 0, 64, vec![0xffff_fffc])
            .unwrap_err();
        assert_eq!(err, ImageError::BadRelocSite { site: 0xffff_fffc });
    }

    #[test]
    fn parse_rejects_corrupt_headers_without_panicking() {
        // Fuzz-style table over the 40-byte header: oversized section
        // lengths and reloc counts, overflowing sums, bad entry points.
        // The linter feeds parse() untrusted files, so every row must be
        // a clean error, never a panic or huge allocation.
        let cases: &[(usize, u32, ImageError)] = &[
            (12, 2, ImageError::EntryOutOfRange { entry: 2 }), // misaligned entry
            (
                12,
                0xffff_fff0,
                ImageError::EntryOutOfRange { entry: 0xffff_fff0 },
            ),
            (16, 0xffff_ffff, ImageError::Truncated), // text_len huge
            (16, 0xffff_fffc, ImageError::Truncated), // text_len near u32 wrap
            (20, 0xffff_ffff, ImageError::Truncated), // data_len huge
            (32, 0xffff_ffff, ImageError::Truncated), // oversized reloc_count
            (32, 0x4000_0000, ImageError::Truncated), // reloc_count * 4 > u32
            (32, 1_000_000, ImageError::Truncated),   // more relocs than bytes
            (36, 0xffff_ffff, ImageError::Truncated), // name_len huge
        ];
        let valid = sample_image().to_bytes();
        for (offset, value, expected) in cases {
            let mut bytes = valid.clone();
            bytes[*offset..offset + 4].copy_from_slice(&value.to_le_bytes());
            assert_eq!(
                TaskImage::parse(&bytes),
                Err(expected.clone()),
                "header field at byte {offset} set to {value:#x}"
            );
        }
    }

    #[test]
    fn new_rejects_unaligned_reloc() {
        let err = TaskImage::new("t", false, 0, vec![0; 8], vec![], 0, 64, vec![2]).unwrap_err();
        assert_eq!(err, ImageError::BadRelocSite { site: 2 });
    }

    #[test]
    fn new_rejects_unaligned_text() {
        let err = TaskImage::new("t", false, 0, vec![0; 7], vec![], 0, 64, vec![]).unwrap_err();
        assert_eq!(err, ImageError::BadSectionLen);
    }

    #[test]
    fn from_program_rejects_nonzero_origin() {
        let program = assemble("hlt\n", 0x100).unwrap();
        assert_eq!(
            TaskImage::from_program("t", &program, 64, false).unwrap_err(),
            ImageError::ProgramNotAtBaseZero { origin: 0x100 }
        );
    }

    #[test]
    fn relocation_roundtrip_restores_linked_bytes() {
        let image = sample_image();
        let linked = image.loadable_bytes();
        let mut memory = linked.clone();
        apply_relocations(&mut memory, image.relocs(), 0x4000);
        assert_ne!(memory, linked, "relocation changed the reloc sites");
        revert_relocations(&mut memory, image.relocs(), 0x4000);
        assert_eq!(memory, linked);
    }

    #[test]
    fn relocation_only_touches_sites() {
        let image = sample_image();
        let linked = image.loadable_bytes();
        let mut memory = linked.clone();
        apply_relocations(&mut memory, image.relocs(), 0x4000);
        let sites: Vec<usize> = image.relocs().iter().map(|&s| s as usize).collect();
        for (i, (a, b)) in memory.iter().zip(linked.iter()).enumerate() {
            let in_site = sites.iter().any(|&s| i >= s && i < s + 4);
            if !in_site {
                assert_eq!(a, b, "byte {i} changed outside relocation sites");
            }
        }
    }

    #[test]
    fn relocated_addresses_point_into_load_region() {
        let image = sample_image();
        let base = 0x0001_2000;
        let mut memory = image.loadable_bytes();
        apply_relocations(&mut memory, image.relocs(), base);
        for &site in image.relocs() {
            let i = site as usize;
            let word = u32::from_le_bytes(memory[i..i + 4].try_into().unwrap());
            assert!(word >= base && word < base + image.loadable_len());
        }
    }

    #[test]
    fn measurement_is_position_independent_by_construction() {
        // Two copies relocated to different bases revert to identical
        // measurement input.
        let image = sample_image();
        let mut at_a = image.loadable_bytes();
        let mut at_b = image.loadable_bytes();
        apply_relocations(&mut at_a, image.relocs(), 0x4000);
        apply_relocations(&mut at_b, image.relocs(), 0x9000);
        revert_relocations(&mut at_a, image.relocs(), 0x4000);
        revert_relocations(&mut at_b, image.relocs(), 0x9000);
        assert_eq!(at_a, at_b);
    }

    #[test]
    fn measurement_bytes_exclude_name() {
        let program = assemble("start:\n hlt\n", 0).unwrap();
        let a = TaskImage::from_program("name-a", &program, 64, true).unwrap();
        let b = TaskImage::from_program("name-b", &program, 64, true).unwrap();
        assert_eq!(a.measurement_bytes(), b.measurement_bytes());
    }

    #[test]
    fn measurement_bytes_cover_structure() {
        let program = assemble("start:\n hlt\n", 0).unwrap();
        let a = TaskImage::from_program("t", &program, 64, true).unwrap();
        let b = TaskImage::from_program("t", &program, 128, true).unwrap();
        // Different stack layout => different measurement (§4).
        assert_ne!(a.measurement_bytes(), b.measurement_bytes());
        let c = TaskImage::from_program("t", &program, 64, false).unwrap();
        assert_ne!(a.measurement_bytes(), c.measurement_bytes());
    }

    #[test]
    fn sizes_add_up() {
        let image =
            TaskImage::new("t", false, 0, vec![0; 64], vec![1; 32], 16, 128, vec![0, 4]).unwrap();
        assert_eq!(image.loadable_len(), 96);
        assert_eq!(image.total_memory_size(), 240);
        assert_eq!(image.measurement_blocks(), 2); // 24 header + 96 bytes = 120 -> 2 blocks
    }

    fn arb_image() -> impl Strategy<Value = TaskImage> {
        (
            proptest::collection::vec(any::<u8>(), 1..16),
            proptest::collection::vec(any::<u8>(), 0..64),
            0u32..64,
            4u32..256,
        )
            .prop_map(|(mut name_bytes, data, bss, stack)| {
                name_bytes.truncate(8);
                let name: String = name_bytes.iter().map(|b| (b'a' + b % 26) as char).collect();
                let text = vec![0u8; 32];
                let relocs = vec![0, 8, 28];
                TaskImage::new(name, true, 0, text, data, bss, stack, relocs).unwrap()
            })
    }

    proptest! {
        #[test]
        fn prop_serialization_roundtrip(image in arb_image()) {
            let parsed = TaskImage::parse(&image.to_bytes()).unwrap();
            prop_assert_eq!(parsed, image);
        }

        #[test]
        fn prop_relocation_roundtrip(image in arb_image(), base in 0u32..0x1000_0000) {
            let base = base & !3;
            let linked = image.loadable_bytes();
            let mut memory = linked.clone();
            apply_relocations(&mut memory, image.relocs(), base);
            revert_relocations(&mut memory, image.relocs(), base);
            prop_assert_eq!(memory, linked);
        }

        #[test]
        fn prop_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = TaskImage::parse(&bytes);
        }

        #[test]
        fn prop_mutated_header_never_panics(offset in 0usize..40, value in any::<u32>()) {
            // Random 32-bit stomps over any header field of an otherwise
            // valid image parse to Ok or a clean error, never a panic.
            let mut bytes = sample_image().to_bytes();
            bytes[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
            let _ = TaskImage::parse(&bytes);
        }
    }
}
