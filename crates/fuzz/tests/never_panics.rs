//! Property: encode → execute never panics.
//!
//! Every instruction the generator can produce — and every whole
//! generated program with its platform state — must execute to a
//! normal step, a halt, or a *typed* [`sp_emu::Fault`]. A panic
//! anywhere in the interpreter stack fails the property. Seeded
//! through proptest so failures print the seed that found them.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use tytan_fuzz::diff::{build_machines, run_diff, step_diff};
use tytan_fuzz::gen::{gen_instr, gen_setup, CaseSetup, StreamCtx};
use tytan_fuzz::rng::FuzzRng;

proptest! {
    /// Any single generated instruction, stepped cold on every engine,
    /// returns `Ok` or a typed fault — identically.
    #[test]
    fn any_single_instruction_steps_without_panicking(seed in any::<u64>()) {
        let mut rng = FuzzRng::new(seed);
        let ctx = StreamCtx { origin: 0x200, span: 64 };
        let instr = gen_instr(&mut rng, &ctx);
        let mut words = Vec::new();
        sp32::encode(&instr, &mut words);
        let setup = CaseSetup {
            origin: 0x200,
            words,
            regs: {
                let mut r = [0u32; 8];
                for reg in r.iter_mut() {
                    *reg = rng.next_u32();
                }
                r[7] = 0x8000 + ((rng.next_u32() % 0x8000) & !3);
                r
            },
            eflags: 0,
            idt_base: 0x40,
            idt_entries: vec![],
            mpu_rules: vec![],
            mpu_enabled: rng.chance(1, 2),
            timer: None,
            prior_irqs: vec![],
            hw_context_save: false,
            budget: 64,
            chunk: 64,
        };
        let mut machines = build_machines(&setup);
        let rl = machines[0].step(); // a panic here fails the property
        for m in &mut machines[1..] {
            let r = m.step();
            prop_assert_eq!(r, rl, "single-instruction step diverged for {:?}", instr);
        }
    }

    /// Any whole generated case survives both differential drivers:
    /// no panic, no divergence.
    #[test]
    fn any_generated_case_executes_without_panicking(seed in any::<u64>()) {
        let setup = gen_setup(&mut FuzzRng::new(seed));
        if let Err(e) = run_diff(&setup) {
            return Err(TestCaseError::Fail(format!("run divergence: {e}")));
        }
        if let Err(e) = step_diff(&setup, 1_000) {
            return Err(TestCaseError::Fail(format!("step divergence: {e}")));
        }
    }
}
