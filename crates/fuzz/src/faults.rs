//! Platform fault injection.
//!
//! The paper's threat model includes a platform that misbehaves
//! underneath the TCB: memory corruption, devices firing at the wrong
//! rate, interrupt storms, images damaged in transport. These scenarios
//! assert the two properties the rest of the stack depends on:
//!
//! 1. **Fault injection is differential too.** A bit flip, IRQ burst,
//!    or timer reprogramming applied identically to the fast-path and
//!    legacy machines must leave them identical — the fast path's
//!    predecode and decision caches must observe external mutation
//!    exactly like the legacy core does.
//! 2. **Host paths degrade to typed errors.** A mutated or truncated
//!    TTIF image driven through parse → lint → load, or a garbage
//!    attestation report through `from_bytes`, may be *rejected* but
//!    must never panic, livelock, or leak resources (an aborted load
//!    job must release its allocation).

use crate::diff::{build_machines, compare_all, FUZZ_RAM, TIMER_BASE};
use crate::gen::{encode_stream, gen_setup, gen_stream, CaseSetup, StreamCtx};
use crate::rng::FuzzRng;
use eampu::Region;
use rtos::{Kernel, KernelConfig};
use sp_emu::devices::Timer;
use sp_emu::{Event, Machine, MachineConfig};
use tytan::allocator::Allocator;
use tytan::attest::AttestationReport;
use tytan::driver::TrustedActors;
use tytan::loader::{LoadJob, LoadProgress};
use tytan::rtm::Rtm;
use tytan::LoadError;
use tytan_crypto::{Sha1, TaskId};
use tytan_image::{mutate, TaskImage};
use tytan_lint::LintPolicy;

/// Drives a differential set (one machine per engine, legacy reference
/// first) while injecting per-boundary faults via `inject`, which must
/// apply the *same* mutation to every machine.
fn run_diff_with_injection(
    setup: &CaseSetup,
    mut inject: impl FnMut(&mut [Machine], u64),
) -> Result<(), String> {
    let mut machines = build_machines(setup);
    let start = machines[0].cycles();
    let mut boundary = 0u64;
    loop {
        let spent = machines[0].cycles() - start;
        if spent >= setup.budget {
            break;
        }
        let chunk = setup.chunk.min(setup.budget - spent);
        let el = machines[0].run(chunk);
        for m in machines.iter_mut().skip(1) {
            let e = m.run(chunk);
            if e != el {
                return Err(format!(
                    "event divergence at chunk {boundary} under injection: {:?} {e:?} vs legacy {el:?}",
                    m.engine()
                ));
            }
        }
        compare_all(&format!("chunk {boundary} (injected)"), &machines)?;
        if let Event::Fault(_) | Event::FirmwareTrap { .. } = el {
            break;
        }
        inject(&mut machines, boundary);
        boundary += 1;
    }
    let digest = machines[0].ram_digest();
    for m in &machines[1..] {
        if m.ram_digest() != digest {
            return Err(format!(
                "RAM digest divergence after fault injection ({:?} vs legacy)",
                m.engine()
            ));
        }
    }
    Ok(())
}

/// RAM bit flips between run chunks: the predecode and translation
/// caches must observe every host-side write, including flips landing
/// in the program's own text.
pub fn bitflip_diff(rng: &mut FuzzRng) -> Result<(), String> {
    let setup = gen_setup(rng);
    let mut flips = rng.fork();
    let origin = setup.origin;
    let text_len = (setup.words.len() * 4) as u32;
    run_diff_with_injection(&setup, move |machines, _| {
        for _ in 0..flips.range(1, 4) {
            // Half the flips target the program text itself — that is
            // where a stale cached instruction would show up.
            let addr = if flips.chance(1, 2) && text_len > 0 {
                origin + flips.next_u32() % text_len
            } else {
                flips.next_u32() % FUZZ_RAM
            };
            let mask = 1u8 << flips.below(8);
            // Every machine sees the identical mutation; a read/write
            // fault (none expected inside RAM) would also be identical.
            for m in machines.iter_mut() {
                if let Ok(b) = m.read_byte(addr) {
                    let _ = m.write_byte(addr, b ^ mask);
                }
            }
        }
    })
}

/// IRQ storms: bursts of random vectors (including repeats and
/// out-of-IDT vectors) raised at chunk boundaries must be delivered,
/// coalesced, and faulted identically by both run loops.
pub fn irq_storm_diff(rng: &mut FuzzRng) -> Result<(), String> {
    let setup = gen_setup(rng);
    let mut storm = rng.fork();
    run_diff_with_injection(&setup, move |machines, _| {
        for _ in 0..storm.range(1, 12) {
            let vector = (storm.next_u32() % 64) as u8;
            for m in machines.iter_mut() {
                m.raise_irq(vector);
            }
        }
    })
}

/// Timer reprogramming chaos: the device is rearmed mid-flight with
/// adversarial intervals (including 0, which the device must clamp or
/// disable, and near-`u64::MAX`), again identically on every machine.
pub fn timer_chaos_diff(rng: &mut FuzzRng) -> Result<(), String> {
    let mut setup = gen_setup(rng);
    setup.timer = None; // added manually below so we keep the handles
    let mut machines = build_machines(&setup);
    let vector = (32 + rng.next_u32() % 16) as u8;
    let handles: Vec<_> = machines
        .iter_mut()
        .map(|m| m.add_device(Box::new(Timer::new(TIMER_BASE, vector))))
        .collect();
    let mut chaos = rng.fork();
    let start = machines[0].cycles();
    let mut boundary = 0u64;
    loop {
        let spent = machines[0].cycles() - start;
        if spent >= setup.budget {
            break;
        }
        let chunk = setup.chunk.min(setup.budget - spent);
        let el = machines[0].run(chunk);
        for m in machines.iter_mut().skip(1) {
            let e = m.run(chunk);
            if e != el {
                return Err(format!(
                    "event divergence at chunk {boundary} under timer chaos: {:?} {e:?} vs legacy {el:?}",
                    m.engine()
                ));
            }
        }
        compare_all(&format!("chunk {boundary} (timer chaos)"), &machines)?;
        if let Event::Fault(_) | Event::FirmwareTrap { .. } = el {
            break;
        }
        let interval = match chaos.below(5) {
            0 => 0,
            1 => 1,
            2 => u64::MAX - chaos.below(4),
            _ => chaos.range(1, 2_048),
        };
        let enabled = chaos.chance(3, 4);
        for (m, &h) in machines.iter_mut().zip(&handles) {
            m.device_mut::<Timer>(h)
                .expect("timer handle")
                .configure(interval, enabled);
        }
        boundary += 1;
    }
    let digest = machines[0].ram_digest();
    for m in &machines[1..] {
        if m.ram_digest() != digest {
            return Err(format!(
                "RAM digest divergence after timer chaos ({:?} vs legacy)",
                m.engine()
            ));
        }
    }
    Ok(())
}

/// The loader-side platform a mutated image is driven through (also
/// used by the lint cross-check's rejected-load leg).
pub(crate) fn loader_platform() -> (Machine, Kernel, Rtm, Allocator, TrustedActors) {
    let machine = Machine::new(MachineConfig::default());
    let kernel = Kernel::new(KernelConfig::default());
    let rtm = Rtm::new();
    let allocator = Allocator::new(rtos::layout::HEAP_BASE, 0x4_0000);
    let actors = TrustedActors {
        trusted: Region::new(rtos::layout::TRUSTED_BASE, rtos::layout::TRUSTED_CODE_LEN),
        kernel: Region::new(rtos::layout::KERNEL_BASE, rtos::layout::KERNEL_CODE_LEN),
        kernel_entry: rtos::layout::KERNEL_TRAP,
    };
    (machine, kernel, rtm, allocator, actors)
}

/// A structurally valid random task image to serve as mutation bait.
fn gen_image(rng: &mut FuzzRng) -> TaskImage {
    let ctx = StreamCtx {
        origin: 0,
        span: 256,
    };
    let instrs = gen_stream(rng, &ctx, 24);
    let text = encode_stream(&instrs);
    let data: Vec<u8> = (0..rng.below(16) * 4)
        .map(|_| rng.next_u32() as u8)
        .collect();
    let bss = (rng.below(8) * 4) as u32;
    // Relocation sites at word-aligned text offsets.
    let relocs: Vec<u32> = (0..rng.below(4))
        .map(|_| (rng.next_u32() % (text.len() as u32)) & !3)
        .collect();
    TaskImage::new(
        "bait",
        rng.chance(3, 4),
        0,
        text,
        data,
        bss,
        64 + (rng.below(8) * 64) as u32,
        relocs,
    )
    .expect("conservatively constructed image is valid")
}

/// Serialized-image mutation: flip, stomp, truncate, or shuffle the
/// TTIF bytes, then drive parse → (sometimes lint) → load. Every
/// outcome must be a clean completion or a typed error with resources
/// released — never a panic, never a livelock, never a leaked
/// allocation.
pub fn image_mutation(rng: &mut FuzzRng) -> Result<(), String> {
    let image = gen_image(rng);
    let mut bytes = image.to_bytes();
    for _ in 0..rng.range(1, 4) {
        match rng.below(4) {
            0 => {
                mutate::flip_bit(&mut bytes, rng.next_u64());
            }
            1 => mutate::stomp_word(&mut bytes, rng.next_u64(), rng.next_u32()),
            2 => bytes = mutate::truncated(&bytes, rng.next_u64()),
            _ => {
                let a = rng.next_u64();
                let b = rng.next_u64();
                mutate::swap_ranges(&mut bytes, a, b, rng.range(1, 16));
            }
        }
    }
    let parsed = match TaskImage::parse(&bytes) {
        Ok(img) => img,
        Err(_) => return Ok(()), // typed rejection is the success case
    };
    let (mut m, mut k, mut rtm, mut a, actors) = loader_platform();
    let free_before = a.free_bytes();
    let mailbox = rng.next_u32() % 0x200;
    let mut job = LoadJob::<Sha1>::new(parsed, mailbox, (rng.next_u32() % 4) as u8);
    if rng.chance(1, 2) {
        job = job.with_verification(LintPolicy::default());
    }
    let cycles_before = m.cycles();
    for step in 0..10_000u32 {
        match job.step(&mut m, &mut k, &mut rtm, &mut a, actors, 2) {
            Ok(LoadProgress::Done { .. }) => return Ok(()),
            Ok(LoadProgress::InProgress(_)) => {}
            Err(e) => {
                if matches!(e, LoadError::LintRejected(_)) && m.cycles() != cycles_before {
                    return Err(format!(
                        "lint rejection charged {} guest cycles; must be free",
                        m.cycles() - cycles_before
                    ));
                }
                job.abort(&mut m, &mut a);
                if job.base() != 0 {
                    return Err(format!(
                        "aborted load at step {step} kept base {:#x}",
                        job.base()
                    ));
                }
                if a.free_bytes() != free_before {
                    return Err(format!(
                        "aborted load leaked allocation: {} of {} bytes free",
                        a.free_bytes(),
                        free_before
                    ));
                }
                return Ok(());
            }
        }
    }
    Err("mutated image load neither completed nor failed in 10k slices".to_string())
}

/// Attestation-report parsing on hostile transport bytes: pure garbage
/// and bit-flipped real reports must parse to `None` or to a report
/// that survives a serialization round trip — and never panic.
pub fn attest_parse(rng: &mut FuzzRng) -> Result<(), String> {
    let bytes: Vec<u8> = if rng.chance(1, 2) {
        (0..rng.below(200)).map(|_| rng.next_u32() as u8).collect()
    } else {
        let report = AttestationReport {
            id: TaskId::from_u64(rng.next_u64()),
            digest: (0..20).map(|_| rng.next_u32() as u8).collect(),
            nonce: (0..rng.below(32)).map(|_| rng.next_u32() as u8).collect(),
            mac: (0..20).map(|_| rng.next_u32() as u8).collect(),
        };
        let mut b = report.to_bytes();
        for _ in 0..rng.range(1, 8) {
            mutate::flip_bit(&mut b, rng.next_u64());
        }
        if rng.chance(1, 4) {
            b = mutate::truncated(&b, rng.next_u64());
        }
        b
    };
    if let Some(report) = AttestationReport::from_bytes(&bytes) {
        let round = AttestationReport::from_bytes(&report.to_bytes());
        if round.as_ref() != Some(&report) {
            return Err("attestation report failed serialization round trip".to_string());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitflips_stay_differential() {
        for seed in 0..60 {
            bitflip_diff(&mut FuzzRng::new(seed)).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn irq_storms_stay_differential() {
        for seed in 100..160 {
            irq_storm_diff(&mut FuzzRng::new(seed)).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn timer_chaos_stays_differential() {
        for seed in 200..260 {
            timer_chaos_diff(&mut FuzzRng::new(seed))
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn mutated_images_fail_typed() {
        for seed in 300..400 {
            image_mutation(&mut FuzzRng::new(seed)).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn garbage_attestation_reports_parse_safely() {
        for seed in 500..700 {
            attest_parse(&mut FuzzRng::new(seed)).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
