//! Forensic-bundle oracle: every typed rejection must replay to itself.
//!
//! The observability plane promises that a [`ForensicBundle`] dumped by
//! the fleet verifier is *self-contained*: fed back through
//! [`replay_bundle`], the recorded frame re-verifies against the
//! restored session state and reproduces the identical typed verdict —
//! offline, with no access to the original run. This oracle drives one
//! random rejection class (verbatim replay, MAC forgery, or a
//! wrong-software digest) through the real ingest → flush pipeline and
//! checks the whole chain:
//!
//! - exactly one bundle is produced for the rejection;
//! - its JSON encoding round-trips byte-identically;
//! - replaying it reproduces the recorded verdict code;
//! - a mutated copy of the bundle JSON fails *typed* — parse errors and
//!   verdict mismatches are fine, panics are findings (the campaign
//!   engine converts them).

use tytan::attest::{AttestationReport, DeviceId};
use tytan_crypto::TaskId;
use tytan_fleet::farm::device_attestation_key;
use tytan_fleet::proto::{decode, encode, Message, PROTOCOL_VERSION};
use tytan_fleet::recorder::{replay_bundle, ForensicBundle};
use tytan_fleet::verifier::FleetVerifier;
use tytan_trace::Tracer;

use crate::rng::FuzzRng;

/// Signs an honest report for `device` over `digest` and `nonce`.
fn signed_report(
    master: &[u8; 20],
    device: DeviceId,
    digest: &[u8],
    nonce: &[u8],
) -> AttestationReport {
    let mut report = AttestationReport {
        id: TaskId::from_digest(digest),
        digest: digest.to_vec(),
        nonce: nonce.to_vec(),
        mac: Vec::new(),
    };
    report.mac = device_attestation_key(master, device)
        .to_hmac_key()
        .sign(&report.mac_input());
    report
}

/// A random typed rejection must dump exactly one bundle that
/// round-trips and replays to the identical verdict; mutated bundles
/// must fail typed, never panic.
pub fn bundle_replay(rng: &mut FuzzRng) -> Result<(), String> {
    let mut master = [0u8; 20];
    for b in master.iter_mut() {
        *b = rng.next_u32() as u8;
    }
    let expected: Vec<u8> = (0..20).map(|_| rng.next_u32() as u8).collect();
    let mut verifier = FleetVerifier::new(master, expected.clone(), rng.next_u64(), Tracer::null());
    let device = DeviceId::from_u64(rng.below(16));
    verifier.provision(device);

    // The real admission path: Hello negotiates and yields a challenge.
    let hello = encode(
        &Message::Hello {
            device,
            max_version: PROTOCOL_VERSION,
        },
        PROTOCOL_VERSION,
    );
    let replies = verifier.ingest(device, &hello);
    let (corr, nonce) = replies
        .iter()
        .find_map(|frame| match decode(frame) {
            Ok((Message::Challenge { corr, nonce, .. }, _)) => Some((corr, nonce)),
            _ => None,
        })
        .ok_or("hello produced no challenge")?;

    // One random rejection class through the pipeline.
    let expected_verdict = match rng.below(3) {
        0 => {
            // Verbatim replay: accept once, then the identical frame.
            let report = signed_report(&master, device, &expected, &nonce);
            let frame = encode(
                &Message::Report {
                    device,
                    corr,
                    report,
                },
                PROTOCOL_VERSION,
            );
            verifier.ingest(device, &frame);
            let first = verifier.flush();
            if first.len() != 1 || first[0].result.is_err() {
                return Err(format!("honest report did not verify: {first:?}"));
            }
            verifier.ingest(device, &frame);
            "replayed_nonce"
        }
        1 => {
            // MAC forgery: one flipped MAC byte.
            let mut report = signed_report(&master, device, &expected, &nonce);
            let at = rng.below(report.mac.len() as u64) as usize;
            report.mac[at] ^= 1 << rng.below(8);
            verifier.ingest(
                device,
                &encode(
                    &Message::Report {
                        device,
                        corr,
                        report,
                    },
                    PROTOCOL_VERSION,
                ),
            );
            "bad_mac"
        }
        _ => {
            // Wrong software: a properly signed report over a digest
            // the fleet does not expect.
            let mut wrong = expected.clone();
            wrong[rng.below(20) as usize] ^= 0xFF;
            let report = signed_report(&master, device, &wrong, &nonce);
            verifier.ingest(
                device,
                &encode(
                    &Message::Report {
                        device,
                        corr,
                        report,
                    },
                    PROTOCOL_VERSION,
                ),
            );
            "digest_mismatch"
        }
    };
    let entries = verifier.flush();
    if entries.len() != 1 || entries[0].result.is_ok() {
        return Err(format!("expected one rejection, got {entries:?}"));
    }
    let bundles = verifier.take_bundles();
    if bundles.len() != 1 {
        return Err(format!("expected one bundle, got {}", bundles.len()));
    }
    let bundle = &bundles[0];
    if bundle.verdict != expected_verdict {
        return Err(format!(
            "bundle verdict {:?}, want {expected_verdict:?}",
            bundle.verdict
        ));
    }

    // The JSON encoding round-trips byte-identically.
    let json = bundle.to_json();
    let reparsed = ForensicBundle::from_json(&json).map_err(|e| format!("bundle reparse: {e}"))?;
    if reparsed.to_json() != json {
        return Err("bundle JSON round trip is not byte-identical".to_string());
    }

    // Offline replay reproduces the recorded verdict.
    let outcome = replay_bundle(&json).map_err(|e| format!("bundle replay: {e}"))?;
    if !outcome.matches {
        return Err(format!(
            "bundle replayed to code {} but recorded {}",
            outcome.replayed_code, outcome.recorded_code
        ));
    }

    // A mutated copy must fail typed — any Ok/Err is fine, panics are
    // the finding (the campaign engine converts them).
    let mut mutated: Vec<u8> = json.clone().into_bytes();
    match rng.below(3) {
        0 => {
            let at = rng.below(mutated.len() as u64) as usize;
            mutated[at] ^= 1 << rng.below(8);
        }
        1 => {
            mutated.truncate(rng.below(mutated.len() as u64 + 1) as usize);
        }
        _ => mutated = (0..rng.below(64)).map(|_| rng.next_u32() as u8).collect(),
    }
    let mutated = String::from_utf8_lossy(&mutated).into_owned();
    if mutated != json {
        // Whatever the verdict, it must be reached without panicking.
        let _ = replay_bundle(&mutated);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundles_always_replay_to_their_recorded_verdict() {
        for seed in 4200..4400 {
            bundle_replay(&mut FuzzRng::new(seed)).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
