//! Control-flow-attestation oracle: hostile CF logs must never verify.
//!
//! The CFA verifier accepts a clear-text edge log whose only bindings
//! are the hash-chain head and the edge count inside the MAC, so the
//! log itself is attacker-writable wire data. Each case builds a random
//! synthetic [`AdmissibleEdgeSet`] *together with* an honest walk over
//! it (the generator mirrors replay semantics exactly, shadow stack
//! included), seals the walk into a [`CfaReport`], and then attacks:
//!
//! - **Honest** — the generated walk must always verify.
//! - **Detour** — one edge bent off the admissible set and *re-sealed
//!   under the real key* (the compromised-prover case: static digest
//!   and MAC both valid) must still fail, typed as a CFG violation —
//!   this is the property the whole plane exists for.
//! - **Mutation / reorder / truncation** — log tampering under the
//!   original MAC must be rejected (replay, chain, or MAC, in that
//!   order of detection) and never reach `Ok`. Mutation covers run
//!   counts too: inflating or shrinking a run changes the raw edge
//!   count inside the MAC.
//! - **Codec round-trip** — both wire forms (v4 run triples and the
//!   legacy v3 expanded pairs) must decode back to the same sealed
//!   report, and that decode must verify.
//! - **Non-canonical encode** — a v4 byte stream carrying a split run
//!   (adjacent runs with the same edge) or a zero-count run must be
//!   rejected by the decoder, never silently re-canonicalised.
//!
//! Nothing here boots a platform: the oracle targets the verifier-side
//! replay/chain/MAC pipeline in isolation, so thousands of cases per
//! second are cheap.

use std::collections::{BTreeMap, BTreeSet};

use tytan::attest::{CfaReport, RemoteVerifier, VerifyError};
use tytan_crypto::{compress_log, CfChain, PlatformKey, SymmetricKey, TaskId};
use tytan_lint::{AdmissibleEdgeSet, SiteKind};

use crate::rng::FuzzRng;

/// A synthetic edge set plus one honest walk over it.
struct WalkCase {
    edges: AdmissibleEdgeSet,
    log: Vec<(u32, u32)>,
}

/// Generates an edge set and an admissible walk jointly: site kinds are
/// assigned lazily as the walk first reaches each pc, so every emitted
/// edge is admissible by construction and the shadow stack is balanced
/// the same way replay will rebalance it.
fn gen_walk(rng: &mut FuzzRng) -> WalkCase {
    let n = rng.range(3, 12) as u32; // sites at 0, 4, …, 4(n-1)
    let pcs: Vec<u32> = (0..n).map(|i| i * 4).collect();
    let instr_pcs: BTreeSet<u32> = pcs.iter().copied().collect();
    let mut sites: BTreeMap<u32, SiteKind> = BTreeMap::new();
    let mut shadow: Vec<u32> = Vec::new();
    let mut log = Vec::new();
    let mut cur = 0u32;
    let steps = rng.range(1, 48);
    for _ in 0..steps {
        if !instr_pcs.contains(&cur) {
            break; // walked off the site universe (e.g. past a call's ret)
        }
        let kind = sites.entry(cur).or_insert_with(|| {
            let target = pcs[rng.below(u64::from(n)) as usize];
            match rng.below(if shadow.is_empty() { 4 } else { 5 }) {
                0 => SiteKind::Jump { target },
                1 => SiteKind::CondJump { target },
                2 => SiteKind::Call {
                    target,
                    ret: cur + 4,
                },
                3 => {
                    if rng.chance(1, 2) {
                        SiteKind::Unproven
                    } else {
                        let mut targets: Vec<u32> =
                            pcs.iter().copied().filter(|_| rng.chance(1, 2)).collect();
                        if !targets.contains(&target) {
                            targets.push(target);
                            targets.sort_unstable();
                        }
                        SiteKind::Indirect { targets }
                    }
                }
                _ => SiteKind::Return,
            }
        });
        let to = match kind {
            SiteKind::Jump { target } | SiteKind::CondJump { target } => *target,
            SiteKind::Call { target, ret } => {
                shadow.push(*ret);
                *target
            }
            SiteKind::Return => match shadow.pop() {
                Some(ret) => ret,
                None => break, // revisited a return with nothing to pop
            },
            SiteKind::Indirect { targets } => targets[rng.below(targets.len() as u64) as usize],
            SiteKind::Unproven => pcs[rng.below(u64::from(n)) as usize],
        };
        log.push((cur, to));
        cur = to;
    }
    WalkCase {
        edges: AdmissibleEdgeSet {
            image_name: "fuzz-walk".into(),
            entry: 0,
            text_len: n * 4,
            instr_pcs,
            sites,
            external_sites: BTreeSet::new(),
        },
        log,
    }
}

/// Rebuilds a report's chain head from a (possibly tampered) *raw* edge
/// log — compressed to its canonical run decomposition, exactly as a
/// device monitor would record it — and re-seals it under `ka`: the
/// compromised-prover attacker who holds the device key but cannot
/// change what the static CFG admits.
fn reseal(ka: &SymmetricKey, report: &CfaReport, raw: Vec<(u32, u32)>) -> CfaReport {
    let log = compress_log(raw.iter().copied());
    let head = CfChain::fold_runs(log.iter().copied());
    let mut sealed = report.clone();
    sealed.log = log;
    sealed.chain_head = head;
    sealed.mac = ka.to_hmac_key().sign(&sealed.mac_input());
    sealed
}

/// Hostile control-flow logs: detoured, mutated, reordered, and
/// truncated edge logs must never verify; honest walks always must.
pub fn cfa_log(rng: &mut FuzzRng) -> Result<(), String> {
    let case = gen_walk(rng);
    let digest: Vec<u8> = (0..20).map(|_| rng.next_u32() as u8).collect();
    let nonce: Vec<u8> = (0..8).map(|_| rng.next_u32() as u8).collect();
    let mut kp = [0u8; 20];
    for b in kp.iter_mut() {
        *b = rng.next_u32() as u8;
    }
    let ka = PlatformKey::from_bytes(kp).derive(tytan::attest::ATTEST_PURPOSE);
    let verifier = RemoteVerifier::new(ka.clone());
    let template = CfaReport {
        id: TaskId::from_digest(&digest),
        digest: digest.clone(),
        nonce: nonce.clone(),
        log: Vec::new(),
        chain_head: [0u8; 20],
        mac: Vec::new(),
    };
    let honest = reseal(&ka, &template, case.log.clone());

    // The honest walk must verify — the generator and replay disagree
    // about admissibility otherwise, which is itself a finding.
    verifier
        .verify_cfa(&honest, &nonce, &digest, &case.edges)
        .map_err(|e| format!("honest walk rejected: {e:?} log={:?}", case.log))?;

    match rng.below(6) {
        0 => {
            // Single-edge detour in the *raw* stream, re-sealed under
            // the real key: the destination is knocked off 4-byte
            // alignment, so it can match no site target, no
            // shadow-stack return, and no instruction start. MAC and
            // digest stay valid — only the CFG replay can catch this,
            // and it must, typed, with the violation index reported as
            // a raw-stream position regardless of how the runs around
            // it compress.
            if case.log.is_empty() {
                return Ok(());
            }
            let i = rng.below(case.log.len() as u64) as usize;
            let mut raw = case.log.clone();
            raw[i].1 ^= 2;
            let detoured = reseal(&ka, &honest, raw);
            match verifier.verify_cfa(&detoured, &nonce, &digest, &case.edges) {
                Ok(()) => Err("re-sealed detour verified".to_string()),
                Err(
                    VerifyError::InadmissibleEdge { index, .. }
                    | VerifyError::UnprovenSiteViolation { index, .. },
                ) if index == i => Ok(()),
                Err(other) => Err(format!(
                    "detour at {i} rejected as {other:?}, want a CFG violation at {i}"
                )),
            }
        }
        1 => {
            // Bit-flipped run under the original MAC: flipping `from`
            // or `to` breaks replay or the chain; flipping `count`
            // changes the raw edge total inside the MAC. Any change
            // must be rejected — never Ok.
            if honest.log.is_empty() {
                return Ok(());
            }
            let i = rng.below(honest.log.len() as u64) as usize;
            let mut tampered = honest.clone();
            let bit = 1u32 << rng.below(32);
            match rng.below(3) {
                0 => tampered.log[i].0 ^= bit,
                1 => tampered.log[i].1 ^= bit,
                _ => tampered.log[i].2 ^= bit,
            }
            match verifier.verify_cfa(&tampered, &nonce, &digest, &case.edges) {
                Ok(()) => Err(format!("mutated run {i} verified")),
                Err(_) => Ok(()),
            }
        }
        2 => {
            // Reorder under the original MAC: runs swapped whole keep
            // the raw edge total, so the MAC may hold and the permuted
            // log may even replay cleanly — the order-sensitive chain
            // must then expose it.
            if honest.log.len() < 2 {
                return Ok(());
            }
            let i = rng.below(honest.log.len() as u64) as usize;
            let j = rng.below(honest.log.len() as u64) as usize;
            let mut tampered = honest.clone();
            tampered.log.swap(i, j);
            if tampered.log == honest.log {
                return Ok(()); // swapped identical runs: still honest
            }
            match verifier.verify_cfa(&tampered, &nonce, &digest, &case.edges) {
                Ok(()) => Err(format!("reordered log ({i}<->{j}) verified")),
                Err(_) => Ok(()),
            }
        }
        3 => {
            // Truncation under the original MAC: every run carries at
            // least one edge, so dropping runs shrinks the raw edge
            // count inside the MAC — this must fail as BadMac
            // specifically; an attacker cannot silently shorten the
            // evidence.
            if honest.log.is_empty() {
                return Ok(());
            }
            let drop = rng.range(1, honest.log.len() as u64) as usize;
            let mut tampered = honest.clone();
            tampered.log.truncate(honest.log.len() - drop);
            match verifier.verify_cfa(&tampered, &nonce, &digest, &case.edges) {
                Ok(()) => Err(format!("log truncated by {drop} runs verified")),
                Err(VerifyError::BadMac) => Ok(()),
                Err(other) => Err(format!(
                    "truncation rejected as {other:?}, want BadMac (count is MACed)"
                )),
            }
        }
        4 => {
            // Codec round-trip: both wire forms must decode back to
            // the identical sealed report, and the decode must verify.
            // The v3 path exercises decoder-side recompression; logs
            // produced by `compress_log` are canonical, so it must be
            // lossless.
            let v4 = honest.to_bytes();
            let dec = CfaReport::from_bytes(&v4)
                .ok_or_else(|| "canonical v4 encode failed to decode".to_string())?;
            if dec != honest {
                return Err(format!("v4 round-trip changed the report: {dec:?}"));
            }
            let v3 = honest.to_bytes_v3();
            let dec3 = CfaReport::from_bytes_v3(&v3)
                .ok_or_else(|| "expanded v3 encode failed to decode".to_string())?;
            if dec3 != honest {
                return Err(format!("v3 round-trip changed the report: {dec3:?}"));
            }
            verifier
                .verify_cfa(&dec3, &nonce, &digest, &case.edges)
                .map_err(|e| format!("v3-decoded honest report rejected: {e:?}"))
        }
        _ => {
            // Non-canonical v4 bytes: splitting a run into two adjacent
            // runs over the same edge (or zeroing a count) preserves or
            // shrinks the raw stream while changing the run
            // decomposition the chain folds over. The decoder must
            // reject such an encoding outright — re-canonicalising it
            // silently would let a split-run forgery reach the refolder
            // under a chain head computed over the forged decomposition.
            if honest.log.is_empty() {
                return Ok(());
            }
            let i = rng.below(honest.log.len() as u64) as usize;
            let mut forged = honest.clone();
            let (from, to, count) = forged.log[i];
            if count >= 2 {
                let left = 1 + rng.below(u64::from(count) - 1) as u32;
                forged.log[i] = (from, to, left);
                forged.log.insert(i + 1, (from, to, count - left));
            } else {
                forged.log[i].2 = 0;
            }
            match CfaReport::from_bytes(&forged.to_bytes()) {
                None => Ok(()),
                Some(_) => Err(format!(
                    "non-canonical v4 log at run {i} decoded instead of being rejected"
                )),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hostile_cf_logs_never_verify() {
        for seed in 4200..4400 {
            cfa_log(&mut FuzzRng::new(seed)).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
