//! Control-flow-attestation oracle: hostile CF logs must never verify.
//!
//! The CFA verifier accepts a clear-text edge log whose only bindings
//! are the hash-chain head and the edge count inside the MAC, so the
//! log itself is attacker-writable wire data. Each case builds a random
//! synthetic [`AdmissibleEdgeSet`] *together with* an honest walk over
//! it (the generator mirrors replay semantics exactly, shadow stack
//! included), seals the walk into a [`CfaReport`], and then attacks:
//!
//! - **Honest** — the generated walk must always verify.
//! - **Detour** — one edge bent off the admissible set and *re-sealed
//!   under the real key* (the compromised-prover case: static digest
//!   and MAC both valid) must still fail, typed as a CFG violation —
//!   this is the property the whole plane exists for.
//! - **Mutation / reorder / truncation** — log tampering under the
//!   original MAC must be rejected (replay, chain, or MAC, in that
//!   order of detection) and never reach `Ok`.
//!
//! Nothing here boots a platform: the oracle targets the verifier-side
//! replay/chain/MAC pipeline in isolation, so thousands of cases per
//! second are cheap.

use std::collections::{BTreeMap, BTreeSet};

use tytan::attest::{CfaReport, RemoteVerifier, VerifyError};
use tytan_crypto::{CfChain, PlatformKey, SymmetricKey, TaskId};
use tytan_lint::{AdmissibleEdgeSet, SiteKind};

use crate::rng::FuzzRng;

/// A synthetic edge set plus one honest walk over it.
struct WalkCase {
    edges: AdmissibleEdgeSet,
    log: Vec<(u32, u32)>,
}

/// Generates an edge set and an admissible walk jointly: site kinds are
/// assigned lazily as the walk first reaches each pc, so every emitted
/// edge is admissible by construction and the shadow stack is balanced
/// the same way replay will rebalance it.
fn gen_walk(rng: &mut FuzzRng) -> WalkCase {
    let n = rng.range(3, 12) as u32; // sites at 0, 4, …, 4(n-1)
    let pcs: Vec<u32> = (0..n).map(|i| i * 4).collect();
    let instr_pcs: BTreeSet<u32> = pcs.iter().copied().collect();
    let mut sites: BTreeMap<u32, SiteKind> = BTreeMap::new();
    let mut shadow: Vec<u32> = Vec::new();
    let mut log = Vec::new();
    let mut cur = 0u32;
    let steps = rng.range(1, 48);
    for _ in 0..steps {
        if !instr_pcs.contains(&cur) {
            break; // walked off the site universe (e.g. past a call's ret)
        }
        let kind = sites.entry(cur).or_insert_with(|| {
            let target = pcs[rng.below(u64::from(n)) as usize];
            match rng.below(if shadow.is_empty() { 4 } else { 5 }) {
                0 => SiteKind::Jump { target },
                1 => SiteKind::CondJump { target },
                2 => SiteKind::Call {
                    target,
                    ret: cur + 4,
                },
                3 => {
                    if rng.chance(1, 2) {
                        SiteKind::Unproven
                    } else {
                        let mut targets: Vec<u32> =
                            pcs.iter().copied().filter(|_| rng.chance(1, 2)).collect();
                        if !targets.contains(&target) {
                            targets.push(target);
                            targets.sort_unstable();
                        }
                        SiteKind::Indirect { targets }
                    }
                }
                _ => SiteKind::Return,
            }
        });
        let to = match kind {
            SiteKind::Jump { target } | SiteKind::CondJump { target } => *target,
            SiteKind::Call { target, ret } => {
                shadow.push(*ret);
                *target
            }
            SiteKind::Return => match shadow.pop() {
                Some(ret) => ret,
                None => break, // revisited a return with nothing to pop
            },
            SiteKind::Indirect { targets } => targets[rng.below(targets.len() as u64) as usize],
            SiteKind::Unproven => pcs[rng.below(u64::from(n)) as usize],
        };
        log.push((cur, to));
        cur = to;
    }
    WalkCase {
        edges: AdmissibleEdgeSet {
            image_name: "fuzz-walk".into(),
            entry: 0,
            text_len: n * 4,
            instr_pcs,
            sites,
        },
        log,
    }
}

/// Rebuilds a report's chain head from its (possibly tampered) log and
/// re-seals it under `ka` — the compromised-prover attacker who holds
/// the device key but cannot change what the static CFG admits.
fn reseal(ka: &SymmetricKey, report: &CfaReport, log: Vec<(u32, u32)>) -> CfaReport {
    let head = CfChain::fold_all(log.iter().copied());
    let mut sealed = report.clone();
    sealed.log = log;
    sealed.chain_head = head;
    sealed.mac = ka.to_hmac_key().sign(&sealed.mac_input());
    sealed
}

/// Hostile control-flow logs: detoured, mutated, reordered, and
/// truncated edge logs must never verify; honest walks always must.
pub fn cfa_log(rng: &mut FuzzRng) -> Result<(), String> {
    let case = gen_walk(rng);
    let digest: Vec<u8> = (0..20).map(|_| rng.next_u32() as u8).collect();
    let nonce: Vec<u8> = (0..8).map(|_| rng.next_u32() as u8).collect();
    let mut kp = [0u8; 20];
    for b in kp.iter_mut() {
        *b = rng.next_u32() as u8;
    }
    let ka = PlatformKey::from_bytes(kp).derive(tytan::attest::ATTEST_PURPOSE);
    let verifier = RemoteVerifier::new(ka.clone());
    let head = CfChain::fold_all(case.log.iter().copied());
    let honest = CfaReport {
        id: TaskId::from_digest(&digest),
        digest: digest.clone(),
        nonce: nonce.clone(),
        log: case.log.clone(),
        chain_head: head,
        mac: Vec::new(),
    };
    let honest = reseal(&ka, &honest, case.log.clone());

    // The honest walk must verify — the generator and replay disagree
    // about admissibility otherwise, which is itself a finding.
    verifier
        .verify_cfa(&honest, &nonce, &digest, &case.edges)
        .map_err(|e| format!("honest walk rejected: {e:?} log={:?}", case.log))?;

    match rng.below(4) {
        0 => {
            // Single-edge detour, re-sealed under the real key: the
            // destination is knocked off 4-byte alignment, so it can
            // match no site target, no shadow-stack return, and no
            // instruction start. MAC and digest stay valid — only the
            // CFG replay can catch this, and it must, typed.
            if case.log.is_empty() {
                return Ok(());
            }
            let i = rng.below(case.log.len() as u64) as usize;
            let mut log = case.log.clone();
            log[i].1 ^= 2;
            let detoured = reseal(&ka, &honest, log);
            match verifier.verify_cfa(&detoured, &nonce, &digest, &case.edges) {
                Ok(()) => Err("re-sealed detour verified".to_string()),
                Err(
                    VerifyError::InadmissibleEdge { index, .. }
                    | VerifyError::UnprovenSiteViolation { index, .. },
                ) if index == i => Ok(()),
                Err(other) => Err(format!(
                    "detour at {i} rejected as {other:?}, want a CFG violation at {i}"
                )),
            }
        }
        1 => {
            // Bit-flipped edge under the original MAC: any change must
            // be rejected by replay, chain refold, or MAC — never Ok.
            if case.log.is_empty() {
                return Ok(());
            }
            let i = rng.below(case.log.len() as u64) as usize;
            let mut tampered = honest.clone();
            let bit = 1u32 << rng.below(32);
            if rng.chance(1, 2) {
                tampered.log[i].0 ^= bit;
            } else {
                tampered.log[i].1 ^= bit;
            }
            match verifier.verify_cfa(&tampered, &nonce, &digest, &case.edges) {
                Ok(()) => Err(format!("mutated edge {i} verified")),
                Err(_) => Ok(()),
            }
        }
        2 => {
            // Reorder under the original MAC: same count, same edges —
            // the permuted log may even replay cleanly, but the
            // order-sensitive chain must then expose it.
            if case.log.len() < 2 {
                return Ok(());
            }
            let i = rng.below(case.log.len() as u64) as usize;
            let j = rng.below(case.log.len() as u64) as usize;
            let mut tampered = honest.clone();
            tampered.log.swap(i, j);
            if tampered.log == honest.log {
                return Ok(()); // swapped identical edges: still honest
            }
            match verifier.verify_cfa(&tampered, &nonce, &digest, &case.edges) {
                Ok(()) => Err(format!("reordered log ({i}<->{j}) verified")),
                Err(_) => Ok(()),
            }
        }
        _ => {
            // Truncation under the original MAC: the edge count is in
            // the MAC input, so this must fail as BadMac specifically —
            // an attacker cannot silently shorten the evidence.
            if case.log.is_empty() {
                return Ok(());
            }
            let drop = rng.range(1, case.log.len() as u64) as usize;
            let mut tampered = honest.clone();
            tampered.log.truncate(case.log.len() - drop);
            match verifier.verify_cfa(&tampered, &nonce, &digest, &case.edges) {
                Ok(()) => Err(format!("log truncated by {drop} verified")),
                Err(VerifyError::BadMac) => Ok(()),
                Err(other) => Err(format!(
                    "truncation rejected as {other:?}, want BadMac (count is MACed)"
                )),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hostile_cf_logs_never_verify() {
        for seed in 4200..4400 {
            cfa_log(&mut FuzzRng::new(seed)).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
