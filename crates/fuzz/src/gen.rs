//! Seed-driven generation of sp32 instruction streams and machine
//! setups.
//!
//! The streams are *encoding-valid* — every word decodes — but
//! semantically arbitrary: wild branch targets, stores through
//! uninitialised registers, stack abuse, software interrupts into
//! half-built IDTs. That is the point: the differential and
//! never-panic oracles must hold for every decodable program, not just
//! well-formed tasks. A fraction of operands is deliberately biased
//! toward the interesting edges (address-space top, region boundaries,
//! the stream's own text) where span/wrap bugs live.

use crate::rng::FuzzRng;
use eampu::{Perms, Region, Rule};
use sp32::{Cond, Instr, Reg};

/// Every register, for uniform draws.
const REGS: [Reg; 8] = [
    Reg::R0,
    Reg::R1,
    Reg::R2,
    Reg::R3,
    Reg::R4,
    Reg::R5,
    Reg::R6,
    Reg::SP,
];

const CONDS: [Cond; 6] = [Cond::Z, Cond::Nz, Cond::Lt, Cond::Ge, Cond::B, Cond::Ae];

/// Generation context: where the stream sits, so branch targets can be
/// biased to land inside (or just past) it.
#[derive(Debug, Clone, Copy)]
pub struct StreamCtx {
    /// Load address of the stream.
    pub origin: u32,
    /// Rough byte span of the stream (for in-range target draws).
    pub span: u32,
}

fn gen_reg(rng: &mut FuzzRng) -> Reg {
    *rng.choose(&REGS)
}

/// A branch/call target: usually word-aligned inside the stream's own
/// footprint (so execution actually explores the stream), sometimes
/// deliberately misaligned, out of range, or at the address-space top.
fn gen_target(rng: &mut FuzzRng, ctx: &StreamCtx) -> u32 {
    match rng.below(16) {
        0 => rng.next_u32(),                                     // anywhere at all
        1 => 0xffff_fff0u32.wrapping_add(rng.next_u32() % 0x20), // the edge
        2 => ctx
            .origin
            .wrapping_add(rng.next_u32() % (2 * ctx.span.max(4))), // near, unaligned
        _ => ctx.origin + ((rng.next_u32() % ctx.span.max(4)) & !3), // inside, aligned
    }
}

/// A pointer-ish immediate for `movi`: RAM addresses, the stream's own
/// text, MMIO bases, and occasionally the wild blue yonder.
fn gen_pointer(rng: &mut FuzzRng, ctx: &StreamCtx) -> u32 {
    match rng.below(8) {
        0 => rng.next_u32(),
        1 => 0xf000_0000 + (rng.next_u32() % 0x400), // device space
        2 => 0xffff_ffe0u32.wrapping_add(rng.next_u32() % 0x40), // the edge
        3 => ctx.origin + (rng.next_u32() % (2 * ctx.span.max(4))), // own text
        _ => rng.next_u32() % (1 << 17),             // plain RAM
    }
}

fn gen_disp(rng: &mut FuzzRng) -> i16 {
    match rng.below(8) {
        0 => i16::MIN,
        1 => i16::MAX,
        _ => (rng.next_u32() % 64) as i16 - 32,
    }
}

/// One random decodable instruction.
pub fn gen_instr(rng: &mut FuzzRng, ctx: &StreamCtx) -> Instr {
    match rng.below(26) {
        0 => Instr::Nop,
        1 => Instr::Hlt,
        2 => Instr::MovReg {
            rd: gen_reg(rng),
            rs: gen_reg(rng),
        },
        3 => Instr::MovImm {
            rd: gen_reg(rng),
            imm: gen_pointer(rng, ctx),
        },
        4 => Instr::Add {
            rd: gen_reg(rng),
            rs: gen_reg(rng),
        },
        5 => Instr::AddImm {
            rd: gen_reg(rng),
            imm: gen_disp(rng),
        },
        6 => Instr::Sub {
            rd: gen_reg(rng),
            rs: gen_reg(rng),
        },
        7 => Instr::Mul {
            rd: gen_reg(rng),
            rs: gen_reg(rng),
        },
        8 => Instr::And {
            rd: gen_reg(rng),
            rs: gen_reg(rng),
        },
        9 => Instr::Or {
            rd: gen_reg(rng),
            rs: gen_reg(rng),
        },
        10 => Instr::Xor {
            rd: gen_reg(rng),
            rs: gen_reg(rng),
        },
        11 => Instr::Not { rd: gen_reg(rng) },
        12 => Instr::Shl {
            rd: gen_reg(rng),
            rs: gen_reg(rng),
        },
        13 => Instr::Shr {
            rd: gen_reg(rng),
            rs: gen_reg(rng),
        },
        14 => Instr::Cmp {
            rd: gen_reg(rng),
            rs: gen_reg(rng),
        },
        15 => Instr::CmpImm {
            rd: gen_reg(rng),
            imm: gen_disp(rng),
        },
        16 => Instr::Ldw {
            rd: gen_reg(rng),
            rs: gen_reg(rng),
            disp: gen_disp(rng),
        },
        17 => Instr::Stw {
            rd: gen_reg(rng),
            rs: gen_reg(rng),
            disp: gen_disp(rng),
        },
        18 => Instr::Ldb {
            rd: gen_reg(rng),
            rs: gen_reg(rng),
            disp: gen_disp(rng),
        },
        19 => Instr::Stb {
            rd: gen_reg(rng),
            rs: gen_reg(rng),
            disp: gen_disp(rng),
        },
        20 => Instr::Jmp {
            target: gen_target(rng, ctx),
        },
        21 => Instr::Jcc {
            cond: *rng.choose(&CONDS),
            target: gen_target(rng, ctx),
        },
        22 => match rng.below(4) {
            0 => Instr::JmpReg { rs: gen_reg(rng) },
            1 => Instr::Call {
                target: gen_target(rng, ctx),
            },
            2 => Instr::Ret,
            _ => Instr::Iret,
        },
        23 => {
            if rng.chance(1, 2) {
                Instr::Push { rs: gen_reg(rng) }
            } else {
                Instr::Pop { rd: gen_reg(rng) }
            }
        }
        24 => Instr::Int {
            vector: (rng.next_u32() % 48) as u8,
        },
        _ => {
            if rng.chance(1, 2) {
                Instr::Sti
            } else {
                Instr::Cli
            }
        }
    }
}

/// A stream of 1..=`max_len` random instructions.
pub fn gen_stream(rng: &mut FuzzRng, ctx: &StreamCtx, max_len: usize) -> Vec<Instr> {
    let len = rng.range(1, max_len as u64) as usize;
    (0..len).map(|_| gen_instr(rng, ctx)).collect()
}

/// Encodes a stream to load-ready little-endian bytes.
pub fn encode_stream(instrs: &[Instr]) -> Vec<u8> {
    let mut words = Vec::with_capacity(instrs.len() * 2);
    for instr in instrs {
        sp32::encode(instr, &mut words);
    }
    words_to_bytes(&words)
}

/// Little-endian byte view of encoded words.
pub fn words_to_bytes(words: &[u32]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(words.len() * 4);
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    bytes
}

/// Everything needed to construct one differential case's machines —
/// plain data, a pure function of the seed, serializable into a corpus
/// file for replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseSetup {
    /// Load address of the program.
    pub origin: u32,
    /// Encoded program words.
    pub words: Vec<u32>,
    /// Initial register file (index 7 is SP).
    pub regs: [u32; 8],
    /// Initial flags.
    pub eflags: u32,
    /// IDT base (0 leaves the power-on base in place).
    pub idt_base: u32,
    /// `(vector, handler)` IDT entries to install (failures ignored —
    /// a hostile IDT is part of the input space).
    pub idt_entries: Vec<(u8, u32)>,
    /// EA-MPU rules as `(code_start, code_len, entry, data_start,
    /// data_len, readonly)`; configure failures ignored likewise.
    pub mpu_rules: Vec<(u32, u32, u32, u32, u32, bool)>,
    /// Whether EA-MPU enforcement is on.
    pub mpu_enabled: bool,
    /// A timer device: `(interval, vector)`.
    pub timer: Option<(u64, u8)>,
    /// IRQs raised before execution starts.
    pub prior_irqs: Vec<u8>,
    /// Whether the hardware context save is enabled.
    pub hw_context_save: bool,
    /// Total cycle budget for the case.
    pub budget: u64,
    /// Per-`run` chunk size (odd sizes land run boundaries mid-stream).
    pub chunk: u64,
}

/// A full random differential case: program plus platform state.
pub fn gen_setup(rng: &mut FuzzRng) -> CaseSetup {
    let origin = 0x100 + ((rng.next_u32() % 0x4000) & !3);
    let max_len = 40;
    let ctx = StreamCtx {
        origin,
        span: (max_len * 8) as u32,
    };
    let instrs = gen_stream(rng, &ctx, max_len);
    let mut words = Vec::new();
    for instr in &instrs {
        sp32::encode(instr, &mut words);
    }

    let mut regs = [0u32; 8];
    for r in regs.iter_mut() {
        *r = gen_pointer(rng, &ctx);
    }
    // SP: usually a sane stack, sometimes hostile.
    regs[7] = match rng.below(8) {
        0 => 0,
        1 => 3,
        2 => 0xffff_fffc,
        _ => 0x8000 + ((rng.next_u32() % 0x8000) & !3),
    };

    let idt_base = match rng.below(16) {
        0 => 0xffff_fff0,
        1 => rng.next_u32() % (1 << 16),
        _ => 0x40,
    };
    let idt_entries = (0..rng.below(6))
        .map(|_| {
            let vector = (rng.next_u32() % 48) as u8;
            let handler = gen_target(rng, &ctx);
            (vector, handler)
        })
        .collect();

    let mpu_rules = (0..rng.below(3))
        .map(|_| {
            let code_start = (rng.next_u32() % (1 << 17)) & !3;
            let code_len = (0x20 + rng.next_u32() % 0x400) & !3;
            let entry = code_start + ((rng.next_u32() % code_len) & !3);
            let data_start = (rng.next_u32() % (1 << 17)) & !3;
            let data_len = (0x20 + rng.next_u32() % 0x400) & !3;
            (
                code_start,
                code_len,
                entry,
                data_start,
                data_len,
                rng.chance(1, 4),
            )
        })
        .collect();

    CaseSetup {
        origin,
        words,
        regs,
        eflags: if rng.chance(1, 2) { sp32::EFLAGS_IF } else { 0 },
        idt_base,
        idt_entries,
        mpu_rules,
        mpu_enabled: rng.chance(1, 2),
        timer: if rng.chance(1, 2) {
            Some((rng.range(1, 512), (32 + rng.next_u32() % 16) as u8))
        } else {
            None
        },
        prior_irqs: (0..rng.below(3))
            .map(|_| (rng.next_u32() % 48) as u8)
            .collect(),
        hw_context_save: rng.chance(1, 4),
        budget: rng.range(1_000, 20_000),
        chunk: rng.range(64, 1_024),
    }
}

/// The rules a setup describes, as configured EA-MPU [`Rule`]s.
/// Degenerate geometries (wrapping regions) are skipped — [`Region`]
/// construction rejects them by contract.
pub fn setup_rules(setup: &CaseSetup) -> Vec<Rule> {
    setup
        .mpu_rules
        .iter()
        .filter(|&&(cs, cl, _, ds, dl, _)| {
            cl > 0 && dl > 0 && cs.checked_add(cl - 1).is_some() && ds.checked_add(dl - 1).is_some()
        })
        .map(|&(cs, cl, entry, ds, dl, readonly)| {
            Rule::new(
                Region::new(cs, cl),
                entry.min(cs + cl - 1),
                Region::new(ds, dl),
                if readonly { Perms::R } else { Perms::RW },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_streams_are_decodable_and_deterministic() {
        for seed in 0..50 {
            let mut rng = FuzzRng::new(seed);
            let setup = gen_setup(&mut rng);
            // Every generated word sequence decodes back.
            let mut i = 0;
            while i < setup.words.len() {
                let first = setup.words[i];
                let needs_ext = sp32::encoded_len_words(first) == 2;
                let ext = if needs_ext {
                    setup.words.get(i + 1).copied()
                } else {
                    None
                };
                if needs_ext && ext.is_none() {
                    break; // stream ends mid-instruction: fine, machine faults
                }
                sp32::decode(first, ext).expect("generated word must decode");
                i += if needs_ext { 2 } else { 1 };
            }
            // Same seed, same setup.
            let again = gen_setup(&mut FuzzRng::new(seed));
            assert_eq!(setup, again);
        }
    }

    #[test]
    fn setup_rules_skips_wrapping_geometry() {
        let mut setup = gen_setup(&mut FuzzRng::new(1));
        setup.mpu_rules = vec![
            (0xffff_fff0, 0x100, 0xffff_fff0, 0x1000, 0x100, false), // code wraps
            (0x1000, 0x100, 0x1000, 0x2000, 0x100, true),            // fine
        ];
        let rules = setup_rules(&setup);
        assert_eq!(rules.len(), 1);
    }
}
