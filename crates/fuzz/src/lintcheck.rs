//! Lint-vs-execution cross-check.
//!
//! `tytan-lint`'s verdict is a promise about execution, and this module
//! holds it to that promise with generated programs:
//!
//! - [`Verdict::Reject`] — a verified load must stop with
//!   [`LoadError::LintRejected`] *before* the Alloc phase: zero guest
//!   cycles charged, no base address assigned.
//! - [`Verdict::CleanProven`] — every access site was proven in
//!   bounds, so sandboxed execution under an enforcing EA-MPU must
//!   never raise an access or transfer fault, on either interpreter.
//! - [`Verdict::CleanUnproven`] — no promise; denials may happen.
//!
//! The generator emits multi-block programs from a *lint-legible*
//! subset (register arithmetic, direct jumps between labels, `hlt`) and
//! sometimes splices in a known-dirty idiom: a proven out-of-bounds
//! store (must reject) or a register-indirect jump (must demote the
//! verdict to unproven).

use crate::rng::FuzzRng;
use eampu::{Perms, Region, Rule};
use sp32::asm::assemble;
use sp_emu::{EngineKind, Event, Fault, Machine, MachineConfig};
use tytan::loader::LoadJob;
use tytan::LoadError;
use tytan_crypto::Sha1;
use tytan_image::{apply_relocations, TaskImage};
use tytan_lint::{lint_image, LintPolicy, Verdict};

/// What the generator deliberately spliced into a source, so the
/// cross-check can also assert the lint verdict is not *too lax*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Taint {
    /// Only lint-legible instructions: verdict must not be `Reject`.
    Clean,
    /// Contains a proven out-of-bounds store: verdict must be `Reject`.
    ProvenViolation,
    /// Contains a register-indirect jump: verdict must not be
    /// `CleanProven`.
    Unprovable,
}

const SAFE_OPS: [&str; 8] = [
    "mov r{a}, r{b}",
    "add r{a}, r{b}",
    "sub r{a}, r{b}",
    "xor r{a}, r{b}",
    "and r{a}, r{b}",
    "not r{a}",
    "cmp r{a}, r{b}",
    "nop",
];

fn safe_op(rng: &mut FuzzRng) -> String {
    let template = *rng.choose(&SAFE_OPS);
    // r6 stays out of the draw: the dirty idioms clobber it, and keeping
    // it disjoint keeps the clean subset provably clean.
    let a = rng.below(6).to_string();
    let b = rng.below(6).to_string();
    template.replace("{a}", &a).replace("{b}", &b)
}

/// A random multi-block program in the lint-legible subset, with an
/// optional spliced-in taint.
fn gen_source(rng: &mut FuzzRng) -> (String, Taint) {
    let taint = match rng.below(4) {
        0 => Taint::ProvenViolation,
        1 => Taint::Unprovable,
        _ => Taint::Clean,
    };
    let blocks = rng.range(1, 5);
    let taint_block = rng.below(blocks);
    let mut source = String::new();
    for block in 0..blocks {
        source.push_str(&format!("b{block}:\n"));
        for _ in 0..rng.range(1, 6) {
            source.push_str(&format!(" {}\n", safe_op(rng)));
        }
        if block == taint_block {
            match taint {
                Taint::Clean => {}
                Taint::ProvenViolation => {
                    // A store whose address is a known constant far
                    // outside the task: lint must prove the violation.
                    source.push_str(" movi r6, 0xf0000000\n stw [r6], r0\n");
                }
                Taint::Unprovable => {
                    // An indirect jump to a materialized label: safe at
                    // run time, but beyond the prover.
                    source.push_str(&format!(" movi r6, b{block}\n jmpr r6\n"));
                }
            }
        }
        // Terminator: the last block always halts so clean execution
        // terminates inside the text. Earlier blocks end in fallthrough
        // or a *conditional* jump — never an unconditional one, which
        // would make the next block (and a taint spliced into it)
        // unreachable and thus invisible to the prover.
        if block + 1 == blocks {
            source.push_str(" hlt\n");
        } else {
            match rng.below(3) {
                0 => source.push_str(&format!(" jz b{}\n", rng.range(0, blocks - 1))),
                1 => source.push_str(&format!(" jnz b{}\n", rng.range(0, blocks - 1))),
                _ => {} // fall through to the next block
            }
        }
    }
    (source, taint)
}

/// Executes a `CleanProven` image in an EA-MPU sandbox shaped exactly
/// like the loader would shape it, and reports any access/transfer
/// fault — which the verdict promised cannot happen.
fn run_sandboxed(image: &TaskImage, engine: EngineKind) -> Result<(), String> {
    let base = 0x4000u32;
    let mut m = Machine::new(MachineConfig {
        engine,
        ..MachineConfig::default()
    });
    let mut loadable = image.loadable_bytes();
    apply_relocations(&mut loadable, image.relocs(), base);
    m.load_image(base, &loadable).expect("image fits");
    let text_len = image.text().len() as u32;
    let total = image.total_memory_size();
    m.mpu_mut()
        .configure(Rule::new(
            Region::new(base, text_len),
            base + image.entry_offset(),
            Region::new(base + text_len, total - text_len),
            Perms::RW,
        ))
        .expect("sandbox rule");
    m.set_mpu_enabled(true);
    let mut regs = [0u32; 8];
    regs[7] = base + total; // top of the task's own stack
    m.set_regs(regs);
    m.set_eip(base + image.entry_offset());
    for _ in 0..16 {
        match m.run(1_024) {
            Event::Fault(f @ (Fault::MpuAccess { .. } | Fault::MpuTransfer { .. })) => {
                return Err(format!(
                    "CleanProven image raised an EA-MPU fault under {engine:?} engine: {f:?}"
                ));
            }
            Event::Fault(f) => {
                return Err(format!(
                    "CleanProven image faulted ({f:?}) under {engine:?} engine"
                ));
            }
            _ if m.is_halted() => return Ok(()),
            _ => {}
        }
    }
    Ok(()) // spinning forever inside its own text is lint-legal
}

/// One lint-vs-execution cross-check case.
pub fn lint_cross_check(rng: &mut FuzzRng) -> Result<(), String> {
    let (source, taint) = gen_source(rng);
    let program =
        assemble(&source, 0).map_err(|e| format!("generator made bad asm: {e:?}\n{source}"))?;
    let image = TaskImage::from_program("fuzzee", &program, 256, true)
        .map_err(|e| format!("generator made bad image: {e:?}"))?;
    let policy = LintPolicy::default();
    let report = lint_image(&image, &policy);
    let verdict = report.verdict();

    // Direction 1: the verdict must be at least as harsh as the taint.
    match taint {
        Taint::ProvenViolation if verdict != Verdict::Reject => {
            return Err(format!(
                "proven out-of-bounds store escaped the linter (verdict {verdict}):\n{source}"
            ));
        }
        Taint::Unprovable if verdict == Verdict::CleanProven => {
            return Err(format!("indirect jump was marked proven:\n{source}"));
        }
        Taint::Clean if verdict == Verdict::Reject => {
            return Err(format!(
                "lint-legible program was rejected:\n{report}\n{source}"
            ));
        }
        _ => {}
    }

    // Direction 2: the verdict's execution promise must hold.
    match verdict {
        Verdict::Reject => {
            let (mut m, mut k, mut rtm, mut a, actors) = crate::faults::loader_platform();
            let mut job = LoadJob::<Sha1>::new(image, 0, 1).with_verification(policy);
            let cycles_before = m.cycles();
            match job.step(&mut m, &mut k, &mut rtm, &mut a, actors, 2) {
                Err(LoadError::LintRejected(_)) => {}
                other => {
                    return Err(format!(
                        "rejected image was not stopped by verification: {other:?}"
                    ));
                }
            }
            if m.cycles() != cycles_before {
                return Err(format!(
                    "lint rejection charged {} guest cycles",
                    m.cycles() - cycles_before
                ));
            }
            if job.base() != 0 {
                return Err("lint rejection left a base address assigned".to_string());
            }
        }
        Verdict::CleanProven => {
            for engine in crate::diff::ENGINES {
                run_sandboxed(&image, engine)?;
            }
        }
        Verdict::CleanUnproven => {} // no promise to check
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_verdicts_match_execution_across_seeds() {
        for seed in 0..150 {
            lint_cross_check(&mut FuzzRng::new(seed))
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn generator_produces_all_three_taints() {
        let mut saw = [false; 3];
        for seed in 0..64 {
            let (_, taint) = gen_source(&mut FuzzRng::new(seed));
            saw[match taint {
                Taint::Clean => 0,
                Taint::ProvenViolation => 1,
                Taint::Unprovable => 2,
            }] = true;
        }
        assert_eq!(saw, [true; 3], "all taint modes reachable");
    }
}
