//! Deterministic differential fuzzing and fault-injection plane.
//!
//! TyTAN's trust argument leans on components agreeing with each other:
//! the fast-path interpreter must be cycle- and state-identical to the
//! legacy one, the static linter's verdict must match what execution
//! actually does, and the loader/attestation paths must degrade to
//! typed errors — never panics — under arbitrary corruption. Each of
//! those cross-component contracts is an *oracle* this crate drives
//! with seed-derived random inputs:
//!
//! - [`diff`] — the differential oracle: every generated program +
//!   platform state runs on a fast-path and a legacy machine in
//!   lockstep; any divergence in events, registers, cycles, EA-MPU
//!   decisions, or RAM is a failure.
//! - [`faults`] — platform fault injection: RAM bit flips between
//!   chunks, IRQ storms, timer reprogramming chaos, mutated/truncated
//!   task images through the loader, garbage attestation reports.
//! - [`lintcheck`] — lint-vs-execution cross-check: a `Reject` verdict
//!   must stop a verified load at zero guest cycles; a `CleanProven`
//!   verdict means sandboxed execution never raises an EA-MPU fault.
//! - [`fleet_frames`] — the fleet verifier's untrusted-input surface:
//!   replayed and mutated attestation frames through the framed codec
//!   and batched verifier must never verify and never panic.
//! - [`cfa_log`] — the control-flow-attestation oracle: detoured,
//!   mutated, reordered, and truncated edge logs must never verify
//!   against the static admissible-edge set, even when re-sealed under
//!   the real device key; honest walks always must.
//! - [`bundle_replay`] — the forensics oracle: every typed rejection's
//!   bundle must round-trip through JSON byte-identically and replay
//!   offline to the identical verdict; mutated bundles fail typed.
//! - [`campaign`] — the engine: runs `(seed, index)`-keyed cases
//!   through every scenario under `catch_unwind`, so a panic anywhere
//!   in the stack is itself a reportable finding, and minimizes
//!   failures for the corpus.
//! - [`corpus`] — a text format for pinned regression cases, replayed
//!   by `cargo test` and the CI `fuzz-smoke` job.
//!
//! Everything is a pure function of a `u64` seed ([`rng`]): a failure
//! report is reproducible from the scenario name and `(seed, index)`
//! alone, on any machine, with no corpus file required.

pub mod bundle_replay;
pub mod campaign;
pub mod cfa_log;
pub mod corpus;
pub mod diff;
pub mod faults;
pub mod fleet_frames;
pub mod gen;
pub mod lintcheck;
pub mod rng;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport, CaseFailure};
pub use corpus::CorpusCase;
pub use rng::FuzzRng;
