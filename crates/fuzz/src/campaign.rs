//! The campaign engine: scenarios × seed-derived cases, panic-safe.
//!
//! A campaign is `(seed, case count)`; each case of each scenario gets
//! its own decorrelated RNG stream via [`FuzzRng::for_case`], so any
//! failure is reproducible from the triple `(scenario, seed, index)`
//! printed with it. Every case runs under `catch_unwind`: a panic
//! anywhere in the stack under test is converted into a reported
//! failure rather than tearing the campaign down — panics are exactly
//! the bug class this plane exists to flush out.

use crate::diff::{run_diff, step_diff};
use crate::faults;
use crate::fleet_frames;
use crate::gen::{gen_setup, CaseSetup};
use crate::lintcheck;
use crate::rng::FuzzRng;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Steps cap for step-lockstep scenarios.
pub const STEP_CAP: u64 = 2_000;

/// One scenario: a named oracle fed by a case RNG.
pub struct Scenario {
    /// Stable name (used in corpus files and failure reports).
    pub name: &'static str,
    /// The oracle; `Err` is a finding.
    pub run: fn(&mut FuzzRng) -> Result<(), String>,
}

/// Every scenario in the plane, in campaign order.
pub const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "run-diff",
        run: |rng| run_diff(&gen_setup(rng)),
    },
    Scenario {
        name: "step-diff",
        run: |rng| step_diff(&gen_setup(rng), STEP_CAP),
    },
    Scenario {
        name: "bitflip",
        run: faults::bitflip_diff,
    },
    Scenario {
        name: "irq-storm",
        run: faults::irq_storm_diff,
    },
    Scenario {
        name: "timer-chaos",
        run: faults::timer_chaos_diff,
    },
    Scenario {
        name: "image-mutation",
        run: faults::image_mutation,
    },
    Scenario {
        name: "attest-parse",
        run: faults::attest_parse,
    },
    Scenario {
        name: "lint-exec",
        run: lintcheck::lint_cross_check,
    },
    Scenario {
        name: "fleet-frame",
        run: fleet_frames::fleet_frame,
    },
    Scenario {
        name: "cfa-log",
        run: crate::cfa_log::cfa_log,
    },
    Scenario {
        name: "bundle-replay",
        run: crate::bundle_replay::bundle_replay,
    },
];

/// Looks a scenario up by its stable name.
pub fn scenario(name: &str) -> Option<&'static Scenario> {
    SCENARIOS.iter().find(|s| s.name == name)
}

/// A reproducible failing case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseFailure {
    /// Which oracle failed.
    pub scenario: &'static str,
    /// Campaign seed.
    pub seed: u64,
    /// Case index within the campaign.
    pub index: u64,
    /// The oracle's message, or `panic: …` if the stack panicked.
    pub message: String,
}

impl std::fmt::Display for CaseFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{} seed={} index={}] {}",
            self.scenario, self.seed, self.index, self.message
        )
    }
}

/// FNV-1a over the scenario name: decorrelates scenario streams that
/// share a campaign seed.
fn scenario_salt(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs one `(scenario, seed, index)` case, converting panics into
/// `Err` so the campaign survives them.
pub fn run_case(s: &Scenario, seed: u64, index: u64) -> Result<(), String> {
    let mut rng = FuzzRng::for_case(seed ^ scenario_salt(s.name), index);
    match catch_unwind(AssertUnwindSafe(|| (s.run)(&mut rng))) {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(format!("panic: {msg}"))
        }
    }
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Root seed; every case derives from it.
    pub seed: u64,
    /// Cases per scenario.
    pub cases: u64,
    /// Restrict to one scenario by name (`None` runs all).
    pub only: Option<String>,
    /// Stop a scenario after this many failures (keeps a broken oracle
    /// from flooding the report).
    pub max_failures_per_scenario: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0,
            cases: 100,
            only: None,
            max_failures_per_scenario: 5,
        }
    }
}

/// Campaign outcome: per-scenario case counts and every failure.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// `(scenario, cases run)` in execution order.
    pub ran: Vec<(&'static str, u64)>,
    /// All failures, in discovery order.
    pub failures: Vec<CaseFailure>,
}

impl CampaignReport {
    /// Total cases executed.
    pub fn total_cases(&self) -> u64 {
        self.ran.iter().map(|&(_, n)| n).sum()
    }

    /// True when every case passed.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs the campaign described by `config`.
pub fn run_campaign(config: &CampaignConfig) -> CampaignReport {
    let mut report = CampaignReport::default();
    for s in SCENARIOS {
        if let Some(only) = &config.only {
            if s.name != only.as_str() {
                continue;
            }
        }
        let mut failures_here = 0usize;
        let mut ran = 0u64;
        for index in 0..config.cases {
            if failures_here >= config.max_failures_per_scenario {
                break;
            }
            ran += 1;
            if let Err(message) = run_case(s, config.seed, index) {
                failures_here += 1;
                report.failures.push(CaseFailure {
                    scenario: s.name,
                    seed: config.seed,
                    index,
                    message,
                });
            }
        }
        report.ran.push((s.name, ran));
    }
    report
}

/// Reconstructs the exact [`CaseSetup`] a pure-differential scenario
/// case was generated from, for minimization. Only `run-diff` and
/// `step-diff` cases are plain data; fault-injection schedules live in
/// the RNG stream and cannot be captured this way.
pub fn setup_for_case(scenario_name: &str, seed: u64, index: u64) -> Option<CaseSetup> {
    if scenario_name != "run-diff" && scenario_name != "step-diff" {
        return None;
    }
    let mut rng = FuzzRng::for_case(seed ^ scenario_salt(scenario_name), index);
    Some(gen_setup(&mut rng))
}

/// A differential oracle over an explicit setup (the minimizer's
/// failure predicate).
pub type DiffCheck = fn(&CaseSetup) -> Result<(), String>;

/// The differential check a scenario's minimized setup must keep
/// failing.
pub fn check_for_scenario(scenario_name: &str) -> Option<DiffCheck> {
    match scenario_name {
        "run-diff" => Some(run_diff as DiffCheck),
        "step-diff" => Some(|s: &CaseSetup| step_diff(s, STEP_CAP)),
        _ => None,
    }
}

/// Whether `setup` still fails `check` (panics count as failing).
fn still_fails(setup: &CaseSetup, check: DiffCheck) -> bool {
    catch_unwind(AssertUnwindSafe(|| check(setup).is_err())).unwrap_or(true)
}

/// Shrinks a failing differential [`CaseSetup`] while it keeps failing
/// `check`: strips platform state field by field, NOPs out
/// instructions (layout-preserving), truncates the tail, and halves the
/// budget — to a fixpoint. The result is what gets pinned in the
/// corpus.
pub fn minimize_setup(mut setup: CaseSetup, check: DiffCheck) -> CaseSetup {
    debug_assert!(still_fails(&setup, check), "minimizing a passing case");
    let nop_word = {
        let mut w = Vec::new();
        sp32::encode(&sp32::Instr::Nop, &mut w);
        w[0]
    };
    loop {
        let mut progressed = false;

        // Field-level strips, cheapest first.
        let mut try_field = |mutate: &dyn Fn(&mut CaseSetup)| {
            let mut candidate = setup.clone();
            mutate(&mut candidate);
            if candidate != setup && still_fails(&candidate, check) {
                setup = candidate;
                true
            } else {
                false
            }
        };
        progressed |= try_field(&|s| s.idt_entries.clear());
        progressed |= try_field(&|s| s.mpu_rules.clear());
        progressed |= try_field(&|s| s.prior_irqs.clear());
        progressed |= try_field(&|s| s.timer = None);
        progressed |= try_field(&|s| s.mpu_enabled = false);
        progressed |= try_field(&|s| s.hw_context_save = false);
        progressed |= try_field(&|s| s.eflags = 0);
        progressed |= try_field(&|s| {
            let sp = s.regs[7];
            s.regs = [0; 8];
            s.regs[7] = sp;
        });
        progressed |= try_field(&|s| s.budget /= 2);
        progressed |= try_field(&|s| s.chunk = 64);

        // Truncate trailing words.
        while setup.words.len() > 1 {
            let mut candidate = setup.clone();
            candidate.words.pop();
            if still_fails(&candidate, check) {
                setup = candidate;
                progressed = true;
            } else {
                break;
            }
        }

        // NOP out individual words (layout-preserving, so branch
        // targets and the fault site stay put).
        for i in 0..setup.words.len() {
            if setup.words[i] == nop_word {
                continue;
            }
            let mut candidate = setup.clone();
            candidate.words[i] = nop_word;
            if still_fails(&candidate, check) {
                setup = candidate;
                progressed = true;
            }
        }

        if !progressed {
            return setup;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_seed_mini_campaign_is_clean_and_deterministic() {
        let config = CampaignConfig {
            seed: 0x7717a9,
            cases: 12,
            ..CampaignConfig::default()
        };
        let a = run_campaign(&config);
        assert!(
            a.is_clean(),
            "mini campaign found failures:\n{}",
            a.failures
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert_eq!(a.ran.len(), SCENARIOS.len());
        assert_eq!(a.total_cases(), 12 * SCENARIOS.len() as u64);
        let b = run_campaign(&config);
        assert_eq!(a.failures, b.failures);
        assert_eq!(a.ran, b.ran);
    }

    #[test]
    fn panicking_oracle_is_reported_not_propagated() {
        let s = Scenario {
            name: "boom",
            run: |_| panic!("synthetic"),
        };
        let err = run_case(&s, 1, 2).unwrap_err();
        assert!(err.contains("panic: synthetic"), "{err}");
    }

    #[test]
    fn minimizer_reaches_a_tiny_failing_core() {
        // A synthetic check that "fails" whenever the program still
        // contains its HLT word — minimization must strip everything
        // else and keep failing.
        fn check(setup: &CaseSetup) -> Result<(), String> {
            let hlt = {
                let mut w = Vec::new();
                sp32::encode(&sp32::Instr::Hlt, &mut w);
                w[0]
            };
            if setup.words.contains(&hlt) {
                Err("still has the hlt".to_string())
            } else {
                Ok(())
            }
        }
        let mut rng = FuzzRng::new(9);
        let mut setup = gen_setup(&mut rng);
        let hlt = {
            let mut w = Vec::new();
            sp32::encode(&sp32::Instr::Hlt, &mut w);
            w[0]
        };
        setup.words.insert(0, hlt); // guarantee the predicate holds
        let min = minimize_setup(setup, check);
        assert!(check(&min).is_err(), "minimized case must still fail");
        assert!(min.idt_entries.is_empty());
        assert!(min.mpu_rules.is_empty());
        assert!(min.timer.is_none());
        assert_eq!(min.words, vec![hlt], "everything else stripped");
    }
}
