//! The minimized-regression corpus: a human-auditable text format.
//!
//! Every bug the campaign finds is pinned under `tests/corpus/` so it
//! reruns forever in plain `cargo test` and the CI `fuzz-smoke` job.
//! Two case kinds:
//!
//! - `kind = seeded` — replays scenario case `(seed, index)` through
//!   the exact generator that found it. Survives generator changes
//!   *poorly* (the stream shifts), so it is used for scenarios whose
//!   inputs cannot be captured as plain data (fault-injection
//!   schedules).
//! - `kind = setup` — a fully explicit, minimized [`CaseSetup`]
//!   replayed through [`run_diff`]/[`step_diff`]. Immune to generator
//!   drift; this is the preferred pin for differential findings.
//!
//! The format is `key = value` lines, `#` comments, one case per file.
//! All numbers are lowercase hex without a `0x` prefix.

use crate::campaign::{run_case, scenario, STEP_CAP};
use crate::diff::{run_diff, step_diff};
use crate::gen::CaseSetup;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Which differential driver replays an explicit setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffMode {
    /// Chunked run-loop lockstep.
    Run,
    /// Per-instruction lockstep.
    Step,
}

/// One pinned corpus case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusCase {
    /// Replay scenario case `(seed, index)`.
    Seeded {
        /// Scenario name from [`crate::campaign::SCENARIOS`].
        scenario: String,
        /// Campaign seed.
        seed: u64,
        /// Case index.
        index: u64,
    },
    /// Replay an explicit machine setup differentially.
    Setup {
        /// Run-loop or step lockstep.
        mode: DiffMode,
        /// The full case.
        setup: CaseSetup,
    },
}

fn push_list<T, F: Fn(&T) -> String>(out: &mut String, key: &str, items: &[T], f: F) {
    if items.is_empty() {
        return;
    }
    let joined: Vec<String> = items.iter().map(f).collect();
    let _ = writeln!(out, "{key} = {}", joined.join(","));
}

impl CorpusCase {
    /// Serializes the case to corpus text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        match self {
            CorpusCase::Seeded {
                scenario,
                seed,
                index,
            } => {
                out.push_str("kind = seeded\n");
                let _ = writeln!(out, "scenario = {scenario}");
                let _ = writeln!(out, "seed = {seed:x}");
                let _ = writeln!(out, "index = {index:x}");
            }
            CorpusCase::Setup { mode, setup } => {
                out.push_str("kind = setup\n");
                let _ = writeln!(
                    out,
                    "mode = {}",
                    match mode {
                        DiffMode::Run => "run",
                        DiffMode::Step => "step",
                    }
                );
                let _ = writeln!(out, "origin = {:x}", setup.origin);
                push_list(&mut out, "words", &setup.words, |w| format!("{w:08x}"));
                push_list(&mut out, "regs", &setup.regs, |r| format!("{r:x}"));
                let _ = writeln!(out, "eflags = {:x}", setup.eflags);
                let _ = writeln!(out, "idt_base = {:x}", setup.idt_base);
                push_list(&mut out, "idt_entries", &setup.idt_entries, |(v, h)| {
                    format!("{v:x}:{h:x}")
                });
                push_list(
                    &mut out,
                    "mpu_rules",
                    &setup.mpu_rules,
                    |(cs, cl, e, ds, dl, ro)| {
                        format!("{cs:x}:{cl:x}:{e:x}:{ds:x}:{dl:x}:{}", u8::from(*ro))
                    },
                );
                let _ = writeln!(out, "mpu_enabled = {}", u8::from(setup.mpu_enabled));
                if let Some((interval, vector)) = setup.timer {
                    let _ = writeln!(out, "timer = {interval:x}:{vector:x}");
                }
                push_list(&mut out, "prior_irqs", &setup.prior_irqs, |v| {
                    format!("{v:x}")
                });
                let _ = writeln!(out, "hw_context_save = {}", u8::from(setup.hw_context_save));
                let _ = writeln!(out, "budget = {:x}", setup.budget);
                let _ = writeln!(out, "chunk = {:x}", setup.chunk);
            }
        }
        out
    }

    /// Parses corpus text written by [`CorpusCase::to_text`] (or by
    /// hand).
    pub fn parse(text: &str) -> Result<CorpusCase, String> {
        fn hex_u64(s: &str) -> Result<u64, String> {
            u64::from_str_radix(s.trim(), 16).map_err(|e| format!("bad hex {s:?}: {e}"))
        }
        fn hex_u32(s: &str) -> Result<u32, String> {
            let v = hex_u64(s)?;
            u32::try_from(v).map_err(|_| format!("{s:?} exceeds u32"))
        }
        fn hex_u8(s: &str) -> Result<u8, String> {
            let v = hex_u64(s)?;
            u8::try_from(v).map_err(|_| format!("{s:?} exceeds u8"))
        }
        fn split_list(s: &str) -> Vec<&str> {
            s.split(',')
                .map(str::trim)
                .filter(|p| !p.is_empty())
                .collect()
        }
        fn bool_flag(s: &str) -> Result<bool, String> {
            match s.trim() {
                "0" => Ok(false),
                "1" => Ok(true),
                other => Err(format!("bad flag {other:?} (want 0 or 1)")),
            }
        }

        let mut fields = std::collections::BTreeMap::new();
        for (n, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected key = value", n + 1))?;
            fields.insert(key.trim().to_string(), value.trim().to_string());
        }
        let get = |key: &str| -> Result<&String, String> {
            fields
                .get(key)
                .ok_or_else(|| format!("missing key {key:?}"))
        };

        match get("kind")?.as_str() {
            "seeded" => {
                let name = get("scenario")?.clone();
                if scenario(&name).is_none() {
                    return Err(format!("unknown scenario {name:?}"));
                }
                Ok(CorpusCase::Seeded {
                    scenario: name,
                    seed: hex_u64(get("seed")?)?,
                    index: hex_u64(get("index")?)?,
                })
            }
            "setup" => {
                let mode = match get("mode")?.as_str() {
                    "run" => DiffMode::Run,
                    "step" => DiffMode::Step,
                    other => return Err(format!("bad mode {other:?}")),
                };
                let words = split_list(get("words")?)
                    .into_iter()
                    .map(hex_u32)
                    .collect::<Result<Vec<_>, _>>()?;
                if words.is_empty() {
                    return Err("empty words list".to_string());
                }
                let regs_vec = split_list(get("regs")?)
                    .into_iter()
                    .map(hex_u32)
                    .collect::<Result<Vec<_>, _>>()?;
                let regs: [u32; 8] = regs_vec
                    .try_into()
                    .map_err(|v: Vec<u32>| format!("regs needs 8 entries, got {}", v.len()))?;
                let idt_entries = match fields.get("idt_entries") {
                    None => Vec::new(),
                    Some(s) => split_list(s)
                        .into_iter()
                        .map(|pair| {
                            let (v, h) = pair
                                .split_once(':')
                                .ok_or_else(|| format!("bad idt entry {pair:?}"))?;
                            Ok::<_, String>((hex_u8(v)?, hex_u32(h)?))
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                };
                let mpu_rules = match fields.get("mpu_rules") {
                    None => Vec::new(),
                    Some(s) => split_list(s)
                        .into_iter()
                        .map(|rule| {
                            let parts: Vec<&str> = rule.split(':').collect();
                            if parts.len() != 6 {
                                return Err(format!("bad mpu rule {rule:?}"));
                            }
                            Ok((
                                hex_u32(parts[0])?,
                                hex_u32(parts[1])?,
                                hex_u32(parts[2])?,
                                hex_u32(parts[3])?,
                                hex_u32(parts[4])?,
                                bool_flag(parts[5])?,
                            ))
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                };
                let timer = match fields.get("timer") {
                    None => None,
                    Some(s) => {
                        let (i, v) = s
                            .split_once(':')
                            .ok_or_else(|| format!("bad timer {s:?}"))?;
                        Some((hex_u64(i)?, hex_u8(v)?))
                    }
                };
                let prior_irqs = match fields.get("prior_irqs") {
                    None => Vec::new(),
                    Some(s) => split_list(s)
                        .into_iter()
                        .map(hex_u8)
                        .collect::<Result<Vec<_>, _>>()?,
                };
                Ok(CorpusCase::Setup {
                    mode,
                    setup: CaseSetup {
                        origin: hex_u32(get("origin")?)?,
                        words,
                        regs,
                        eflags: hex_u32(get("eflags")?)?,
                        idt_base: hex_u32(get("idt_base")?)?,
                        idt_entries,
                        mpu_rules,
                        mpu_enabled: bool_flag(get("mpu_enabled")?)?,
                        timer,
                        prior_irqs,
                        hw_context_save: bool_flag(get("hw_context_save")?)?,
                        budget: hex_u64(get("budget")?)?,
                        chunk: hex_u64(get("chunk")?)?.max(1),
                    },
                })
            }
            other => Err(format!("bad kind {other:?}")),
        }
    }

    /// Replays the case; `Err` means the pinned bug has resurfaced (or
    /// the replay itself panicked).
    pub fn replay(&self) -> Result<(), String> {
        match self {
            CorpusCase::Seeded {
                scenario: name,
                seed,
                index,
            } => {
                let s = scenario(name).ok_or_else(|| format!("unknown scenario {name:?}"))?;
                run_case(s, *seed, *index)
            }
            CorpusCase::Setup { mode, setup } => {
                let result = catch_unwind(AssertUnwindSafe(|| match mode {
                    DiffMode::Run => run_diff(setup),
                    DiffMode::Step => step_diff(setup, STEP_CAP),
                }));
                match result {
                    Ok(r) => r,
                    Err(_) => Err("replay panicked".to_string()),
                }
            }
        }
    }
}

/// Loads every `*.case` file under `dir`, sorted by file name for a
/// stable replay order.
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, CorpusCase)>, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "case"))
        .collect();
    paths.sort();
    let mut cases = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let case =
            CorpusCase::parse(&text).map_err(|e| format!("parsing {}: {e}", path.display()))?;
        cases.push((path, case));
    }
    Ok(cases)
}

/// Replays every case in `dir`; returns the failures as
/// `(file name, message)` pairs.
pub fn replay_dir(dir: &Path) -> Result<Vec<(String, String)>, String> {
    let cases = load_dir(dir)?;
    let mut failures = Vec::new();
    for (path, case) in cases {
        if let Err(message) = case.replay() {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.display().to_string());
            failures.push((name, message));
        }
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_setup;
    use crate::rng::FuzzRng;

    #[test]
    fn setup_cases_round_trip_through_text() {
        for seed in 0..20 {
            let setup = gen_setup(&mut FuzzRng::new(seed));
            let case = CorpusCase::Setup {
                mode: if seed % 2 == 0 {
                    DiffMode::Run
                } else {
                    DiffMode::Step
                },
                setup,
            };
            let parsed = CorpusCase::parse(&case.to_text()).expect("round trip parses");
            assert_eq!(parsed, case);
        }
    }

    #[test]
    fn seeded_cases_round_trip_and_replay() {
        let case = CorpusCase::Seeded {
            scenario: "run-diff".to_string(),
            seed: 0xabc,
            index: 3,
        };
        let parsed = CorpusCase::parse(&case.to_text()).expect("parses");
        assert_eq!(parsed, case);
        parsed.replay().expect("healthy tree replays clean");
    }

    #[test]
    fn malformed_corpus_text_is_rejected_with_context() {
        for (text, needle) in [
            ("", "missing key \"kind\""),
            ("kind = nonsense\n", "bad kind"),
            (
                "kind = seeded\nscenario = no-such\nseed = 0\nindex = 0\n",
                "unknown scenario",
            ),
            ("kind = setup\nmode = sideways\n", "bad mode"),
            ("garbage line\n", "expected key = value"),
        ] {
            let err = CorpusCase::parse(text).unwrap_err();
            assert!(err.contains(needle), "{text:?} -> {err}");
        }
    }
}
