//! Fleet verifier oracle: hostile wire traffic must never verify.
//!
//! The fleet service accepts length-prefixed frames from thousands of
//! connections, so its decode → batch-verify → session pipeline is the
//! widest untrusted-input surface in the host plane. The oracle drives
//! one provisioned device per case through the real negotiated path
//! (`Hello` → `Welcome` + `Challenge`), builds an honestly MACed report
//! for the issued nonce, and then attacks:
//!
//! - **Replay** — the genuine frame must verify exactly once; every
//!   verbatim re-delivery must be rejected as `ReplayedNonce`
//!   specifically, never accepted, never any other class.
//! - **Mutation** — bit-flipped, truncated, or pure-garbage frames must
//!   decode to typed errors or poison the connection; no mutated frame
//!   may ever reach an `Ok` verdict, and nothing may panic (the
//!   campaign engine converts panics into findings).
//!
//! Frames are delivered in RNG-sized chunks so stream reassembly is
//! under test too, not just whole-frame decode.

use tytan::attest::{AttestationReport, DeviceId, VerifyError};
use tytan_crypto::TaskId;
use tytan_fleet::farm::device_attestation_key;
use tytan_fleet::proto::{decode, encode, Message, PROTOCOL_VERSION};
use tytan_fleet::verifier::FleetVerifier;
use tytan_image::mutate;
use tytan_trace::Tracer;

use crate::rng::FuzzRng;

/// Feeds `bytes` to the verifier in RNG-sized chunks, discarding
/// replies (the attack arms never need them).
fn ingest_chunked(verifier: &mut FleetVerifier, device: DeviceId, bytes: &[u8], rng: &mut FuzzRng) {
    let mut offset = 0;
    while offset < bytes.len() {
        let n = rng.range(1, 16).min((bytes.len() - offset) as u64) as usize;
        let _ = verifier.ingest(device, &bytes[offset..offset + n]);
        offset += n;
    }
}

/// Hostile fleet traffic: replayed and mutated attestation frames
/// through the full verifier pipeline must never verify and never
/// panic.
pub fn fleet_frame(rng: &mut FuzzRng) -> Result<(), String> {
    let mut master = [0u8; 20];
    for b in master.iter_mut() {
        *b = rng.next_u32() as u8;
    }
    let expected: Vec<u8> = (0..20).map(|_| rng.next_u32() as u8).collect();
    let mut verifier = FleetVerifier::new(master, expected.clone(), rng.next_u64(), Tracer::null());
    let device = DeviceId::from_u64(rng.below(16));
    verifier.provision(device);

    // The real admission path: Hello negotiates and yields a challenge.
    let hello = encode(
        &Message::Hello {
            device,
            max_version: PROTOCOL_VERSION,
        },
        PROTOCOL_VERSION,
    );
    let replies = verifier.ingest(device, &hello);
    let (corr, nonce) = replies
        .iter()
        .find_map(|frame| match decode(frame) {
            Ok((Message::Challenge { corr, nonce, .. }, _)) => Some((corr, nonce)),
            _ => None,
        })
        .ok_or("hello produced no challenge")?;

    // An honest report for that challenge, MACed under the device's
    // derived K_a — the only frame that is allowed to verify.
    let mut report = AttestationReport {
        id: TaskId::from_digest(&expected),
        digest: expected,
        nonce,
        mac: Vec::new(),
    };
    report.mac = device_attestation_key(&master, device)
        .to_hmac_key()
        .sign(&report.mac_input());
    let genuine = encode(
        &Message::Report {
            device,
            corr,
            report: report.clone(),
        },
        PROTOCOL_VERSION,
    );

    if rng.chance(1, 2) {
        // Replay arm: the genuine frame verifies exactly once; every
        // verbatim copy after it is a typed replay, nothing else.
        ingest_chunked(&mut verifier, device, &genuine, rng);
        let first = verifier.flush();
        if first.len() != 1 || first[0].result.is_err() {
            return Err(format!("honest report did not verify: {first:?}"));
        }
        for _ in 0..rng.range(1, 3) {
            ingest_chunked(&mut verifier, device, &genuine, rng);
            for entry in verifier.flush() {
                match entry.result {
                    Ok(()) => return Err("replayed report verified".to_string()),
                    Err(VerifyError::ReplayedNonce) => {}
                    Err(other) => {
                        return Err(format!("replay rejected as {other:?}, want ReplayedNonce"));
                    }
                }
            }
        }
        if verifier.accepted_total() != 1 {
            return Err(format!(
                "accepted count {} after replays, want 1",
                verifier.accepted_total()
            ));
        }
    } else {
        // Mutation arm: flipped, truncated, or garbage frames must
        // never produce an accepted verdict.
        let mut bytes = genuine.clone();
        match rng.below(3) {
            0 => {
                for _ in 0..rng.range(1, 8) {
                    mutate::flip_bit(&mut bytes, rng.next_u64());
                }
            }
            1 => bytes = mutate::truncated(&bytes, rng.next_u64()),
            _ => bytes = (0..rng.below(96)).map(|_| rng.next_u32() as u8).collect(),
        }
        // The oracle's invariant is about *authenticated* content: an
        // even number of flips can cancel, and a flip confined to the
        // correlation id (transport metadata, deliberately outside the
        // MAC) still carries the genuine report — both correctly
        // verify. Only a frame whose decoded report differs (or that no
        // longer decodes to this device's report at all) must never
        // reach an `Ok` verdict.
        let benign = match decode(&bytes) {
            Ok((
                Message::Report {
                    device: d,
                    report: r,
                    ..
                },
                consumed,
            )) => consumed == bytes.len() && d == device && r == report,
            _ => false,
        };
        ingest_chunked(&mut verifier, device, &bytes, rng);
        for entry in verifier.flush() {
            if entry.result.is_ok() && !benign {
                return Err("mutated frame verified".to_string());
            }
        }
        if !benign && verifier.accepted_total() != 0 {
            return Err(format!(
                "mutated traffic raised the accepted count to {}",
                verifier.accepted_total()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hostile_fleet_traffic_never_verifies() {
        for seed in 800..1000 {
            fleet_frame(&mut FuzzRng::new(seed)).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
