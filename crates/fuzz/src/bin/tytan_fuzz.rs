//! Campaign driver CLI.
//!
//! ```text
//! tytan-fuzz [--seed N] [--cases N] [--scenario NAME]
//!            [--corpus DIR] [--minimize]
//! ```
//!
//! Replays the corpus (if given), then runs `--cases` cases of every
//! scenario (or just `--scenario`) from `--seed`. Any failure prints a
//! reproducible `(scenario, seed, index)` triple; with `--minimize`,
//! pure-differential failures are shrunk and emitted as ready-to-pin
//! `.case` text. Exit status 1 on any failure — this is the CI
//! `fuzz-smoke` entry point.

use std::path::PathBuf;
use std::process::ExitCode;
use tytan_fuzz::campaign::{
    check_for_scenario, minimize_setup, run_campaign, setup_for_case, CampaignConfig, SCENARIOS,
};
use tytan_fuzz::corpus::{replay_dir, CorpusCase, DiffMode};

struct Args {
    seed: u64,
    cases: u64,
    scenario: Option<String>,
    corpus: Option<PathBuf>,
    minimize: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: tytan-fuzz [--seed N] [--cases N] [--scenario NAME] [--corpus DIR] [--minimize]\n\
         scenarios: {}",
        SCENARIOS
            .iter()
            .map(|s| s.name)
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 0,
        cases: 100,
        scenario: None,
        corpus: None,
        minimize: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--seed" => {
                let v = value("--seed");
                args.seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("bad --seed {v:?}");
                    usage()
                });
            }
            "--cases" => {
                let v = value("--cases");
                args.cases = v.parse().unwrap_or_else(|_| {
                    eprintln!("bad --cases {v:?}");
                    usage()
                });
            }
            "--scenario" => {
                let v = value("--scenario");
                if !SCENARIOS.iter().any(|s| s.name == v) {
                    eprintln!("unknown scenario {v:?}");
                    usage();
                }
                args.scenario = Some(v);
            }
            "--corpus" => args.corpus = Some(PathBuf::from(value("--corpus"))),
            "--minimize" => args.minimize = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut failed = false;

    if let Some(dir) = &args.corpus {
        match replay_dir(dir) {
            Ok(failures) if failures.is_empty() => {
                println!("corpus {}: clean", dir.display());
            }
            Ok(failures) => {
                failed = true;
                println!("corpus {}: {} regression(s)", dir.display(), failures.len());
                for (name, message) in failures {
                    println!("  {name}: {message}");
                }
            }
            Err(e) => {
                eprintln!("corpus replay failed: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if args.cases > 0 {
        let config = CampaignConfig {
            seed: args.seed,
            cases: args.cases,
            only: args.scenario.clone(),
            ..CampaignConfig::default()
        };
        let report = run_campaign(&config);
        for (name, ran) in &report.ran {
            println!("{name}: {ran} case(s)");
        }
        println!(
            "campaign seed {} total {} case(s), {} failure(s)",
            args.seed,
            report.total_cases(),
            report.failures.len()
        );
        for failure in &report.failures {
            failed = true;
            println!("FAIL {failure}");
            if args.minimize {
                if let (Some(setup), Some(check)) = (
                    setup_for_case(failure.scenario, failure.seed, failure.index),
                    check_for_scenario(failure.scenario),
                ) {
                    let minimized = minimize_setup(setup, check);
                    let mode = if failure.scenario == "run-diff" {
                        DiffMode::Run
                    } else {
                        DiffMode::Step
                    };
                    println!("--- minimized .case (pin under tests/corpus/) ---");
                    print!(
                        "{}",
                        CorpusCase::Setup {
                            mode,
                            setup: minimized
                        }
                        .to_text()
                    );
                    println!("--- end ---");
                }
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
