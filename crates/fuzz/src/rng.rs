//! The campaign's only randomness source: a SplitMix64 stream.
//!
//! Every generated case is a pure function of a `u64` seed, so any
//! failure reproduces from the `(seed, case index)` pair printed with
//! it — no global RNG, no time, no thread interleaving. SplitMix64 is
//! the standard tiny seed-expansion PRNG (public-domain construction by
//! Steele/Lea/Vigna); statistical quality is far beyond what input
//! generation needs, and it survives low-entropy seeds like 0 and 1.

/// A deterministic 64-bit PRNG stream.
#[derive(Debug, Clone)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// A stream seeded with `seed`. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        FuzzRng { state: seed }
    }

    /// A stream for case `index` of a campaign rooted at `seed`:
    /// decorrelates neighbouring case indices so case 7 and case 8
    /// share nothing but the campaign seed.
    pub fn for_case(seed: u64, index: u64) -> Self {
        let mut rng = FuzzRng::new(seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        rng.next_u64(); // burn one round to mix the xor in
        rng
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0)");
        // Modulo bias is irrelevant at fuzzing-n sizes vs 2^64.
        self.next_u64() % n
    }

    /// Uniform in `[lo, hi]` (inclusive). `lo <= hi` required.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A uniformly chosen element of `items` (non-empty).
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// A derived independent stream (for sub-generators that must not
    /// perturb the parent's draw sequence).
    pub fn fork(&mut self) -> FuzzRng {
        FuzzRng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = (0..8).map(|_| FuzzRng::new(42).next_u64()).collect();
        assert!(a.iter().all(|&x| x == a[0]), "same seed, same first draw");
        let mut x = FuzzRng::new(42);
        let mut y = FuzzRng::new(42);
        let mut z = FuzzRng::new(43);
        let xs: Vec<u64> = (0..32).map(|_| x.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| y.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| z.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn neighbouring_cases_decorrelate() {
        let a: Vec<u64> = {
            let mut r = FuzzRng::for_case(7, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = FuzzRng::for_case(7, 1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn bounded_draws_stay_in_bounds() {
        let mut r = FuzzRng::new(0); // worst-case low-entropy seed
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            let v = r.range(3, 9);
            assert!((3..=9).contains(&v));
        }
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(r.choose(&items)));
        }
    }
}
