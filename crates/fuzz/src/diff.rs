//! The differential oracle: fast path vs legacy interpreter in
//! lockstep.
//!
//! Both machines are built bit-identically from a [`CaseSetup`] —
//! same program, registers, IDT, EA-MPU rules, devices, pending IRQs —
//! and differ in exactly one bit: [`MachineConfig::fast_path`]. The
//! fast path's contract is total invisibility (predecode cache, EA-MPU
//! decision cache, event-driven run loop — all guest-transparent), so
//! *any* observable difference is a bug:
//!
//! - run-loop events ([`Event`]) must match at every chunk boundary,
//! - [`Machine::snapshot`] (registers, EIP, flags, clock, stats,
//!   pending IRQs) must match at every boundary,
//! - the EA-MPU decision logs (query + decision, including rule slots)
//!   must be byte-identical,
//! - the final RAM digests must match.
//!
//! Two drive modes: [`run_diff`] exercises the real run loops
//! (IRQ delivery, device polling, batching — where loop-boundary bugs
//! live) in odd-sized chunks; [`step_diff`] single-steps both machines
//! and compares after every instruction, which localises a divergence
//! to the exact instruction that caused it.

use crate::gen::{setup_rules, words_to_bytes, CaseSetup};
use sp_emu::devices::Timer;
use sp_emu::{Event, Machine, MachineConfig};

/// RAM size for fuzz machines: big enough for any generated address
/// drawn from `[0, 2^17)`, small enough that per-case construction and
/// RAM digests stay cheap across a 10,000-case campaign.
pub const FUZZ_RAM: u32 = 1 << 17;

/// MMIO base the optional case timer is mapped at.
pub const TIMER_BASE: u32 = 0xf000_0000;

/// Builds one of the two machines of a differential pair.
pub fn build_machine(setup: &CaseSetup, fast: bool) -> Machine {
    let mut m = Machine::new(MachineConfig {
        ram_size: FUZZ_RAM,
        fast_path: fast,
        hw_context_save: setup.hw_context_save,
        ..MachineConfig::default()
    });
    let bytes = words_to_bytes(&setup.words);
    m.load_image(setup.origin, &bytes)
        .expect("generated program fits in fuzz RAM");
    m.set_regs(setup.regs);
    m.set_eflags(setup.eflags);
    if setup.idt_base != 0 {
        m.set_idt_base(setup.idt_base);
    }
    for &(vector, handler) in &setup.idt_entries {
        // A hostile IDT (off-bus slots) is part of the input space.
        let _ = m.set_idt_entry(vector, handler);
    }
    for rule in setup_rules(setup) {
        // Conflicting rules are rejected identically on both machines.
        let _ = m.mpu_mut().configure(rule);
    }
    m.set_mpu_enabled(setup.mpu_enabled);
    if let Some((interval, vector)) = setup.timer {
        let h = m.add_device(Box::new(Timer::new(TIMER_BASE, vector)));
        m.device_mut::<Timer>(h)
            .expect("timer just added")
            .configure(interval, true);
    }
    for &v in &setup.prior_irqs {
        m.raise_irq(v);
    }
    m.set_eip(setup.origin);
    m.mpu_mut().set_decision_log_enabled(true);
    m
}

/// Compares the observable state of the pair; `at` names the boundary
/// for the failure message.
pub fn compare_state(at: &str, fast: &Machine, legacy: &Machine) -> Result<(), String> {
    let sf = fast.snapshot();
    let sl = legacy.snapshot();
    if sf != sl {
        return Err(format!(
            "state divergence at {at}:\n  fast:   {sf:?}\n  legacy: {sl:?}"
        ));
    }
    let df = fast.mpu().take_decision_log();
    let dl = legacy.mpu().take_decision_log();
    if df != dl {
        let i = df.iter().zip(&dl).take_while(|(a, b)| a == b).count();
        return Err(format!(
            "EA-MPU decision divergence at {at}: {} vs {} records, first mismatch at {i}: \
             fast {:?} vs legacy {:?}",
            df.len(),
            dl.len(),
            df.get(i),
            dl.get(i),
        ));
    }
    Ok(())
}

fn compare_ram(fast: &Machine, legacy: &Machine) -> Result<(), String> {
    if fast.ram_digest() != legacy.ram_digest() {
        return Err("RAM digest divergence at end of case".to_string());
    }
    Ok(())
}

/// Drives the pair through their *run loops* in identical chunks,
/// comparing events, state, and EA-MPU decisions at every boundary and
/// RAM at the end.
pub fn run_diff(setup: &CaseSetup) -> Result<(), String> {
    let mut fast = build_machine(setup, true);
    let mut legacy = build_machine(setup, false);
    let start = fast.cycles();
    let mut boundary = 0u64;
    loop {
        let spent = fast.cycles() - start;
        if spent >= setup.budget {
            break;
        }
        let chunk = setup.chunk.min(setup.budget - spent);
        let ef = fast.run(chunk);
        let el = legacy.run(chunk);
        if ef != el {
            return Err(format!(
                "event divergence at chunk {boundary}: fast {ef:?} vs legacy {el:?}"
            ));
        }
        compare_state(&format!("chunk {boundary}"), &fast, &legacy)?;
        boundary += 1;
        if let Event::Fault(_) | Event::FirmwareTrap { .. } = ef {
            // Faults charge nothing (the clock cannot advance past them)
            // and no firmware is registered to service traps.
            break;
        }
    }
    compare_ram(&fast, &legacy)
}

/// Single-steps the pair, comparing after every instruction. Stops at
/// the first fault or halt (no run loop means no IRQ delivery to wake
/// a halted core).
pub fn step_diff(setup: &CaseSetup, max_steps: u64) -> Result<(), String> {
    let mut fast = build_machine(setup, true);
    let mut legacy = build_machine(setup, false);
    for step in 0..max_steps {
        let rf = fast.step();
        let rl = legacy.step();
        if rf != rl {
            return Err(format!(
                "step result divergence at instruction {step}: fast {rf:?} vs legacy {rl:?}"
            ));
        }
        compare_state(&format!("instruction {step}"), &fast, &legacy)?;
        if rf.is_err() || fast.is_halted() {
            break;
        }
    }
    compare_ram(&fast, &legacy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_setup;
    use crate::rng::FuzzRng;

    #[test]
    fn random_setups_run_identically_on_both_loops() {
        for seed in 0..200 {
            let setup = gen_setup(&mut FuzzRng::new(seed));
            run_diff(&setup).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn random_setups_step_identically_on_both_loops() {
        for seed in 1_000..1_200 {
            let setup = gen_setup(&mut FuzzRng::new(seed));
            step_diff(&setup, 2_000).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn self_modifying_code_stays_coherent_across_the_pair() {
        // A program that overwrites its own next instruction: the
        // predecode cache on the fast side must see the write. `movi r0,
        // <addr of target>; movi r1, <hlt word>; stw [r0], r1; target:
        // jmp target` becomes `... hlt`.
        let origin = 0x1000u32;
        let mut words = Vec::new();
        sp32::encode(
            &sp32::Instr::MovImm {
                rd: sp32::Reg::R0,
                imm: origin + 6 * 4,
            },
            &mut words,
        );
        sp32::encode(
            &sp32::Instr::MovImm {
                rd: sp32::Reg::R1,
                imm: {
                    let mut w = Vec::new();
                    sp32::encode(&sp32::Instr::Hlt, &mut w);
                    w[0]
                },
            },
            &mut words,
        );
        sp32::encode(
            &sp32::Instr::Stw {
                rd: sp32::Reg::R0,
                rs: sp32::Reg::R1,
                disp: 0,
            },
            &mut words,
        );
        sp32::encode(&sp32::Instr::Nop, &mut words);
        sp32::encode(
            &sp32::Instr::Jmp {
                target: origin + 6 * 4,
            },
            &mut words,
        );
        assert_eq!(words.len(), 8, "layout: the jmp sits at word 6");
        let setup = CaseSetup {
            origin,
            words,
            regs: [0; 8],
            eflags: 0,
            idt_base: 0,
            idt_entries: vec![],
            mpu_rules: vec![],
            mpu_enabled: false,
            timer: None,
            prior_irqs: vec![],
            hw_context_save: false,
            budget: 1_000,
            chunk: 97,
        };
        run_diff(&setup).expect("self-modifying case");
        step_diff(&setup, 100).expect("self-modifying case, stepped");
        // And the rewritten instruction must actually have executed.
        let mut m = build_machine(&setup, true);
        m.run(1_000);
        assert!(m.is_halted(), "stored HLT executed");
    }
}
