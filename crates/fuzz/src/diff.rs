//! The differential oracle: every execution engine vs the legacy
//! interpreter in lockstep.
//!
//! One machine per [`EngineKind`] is built bit-identically from a
//! [`CaseSetup`] — same program, registers, IDT, EA-MPU rules, devices,
//! pending IRQs — differing in exactly one bit: the engine. Each
//! engine's contract is total invisibility (predecode cache, EA-MPU
//! decision cache, event-driven run loop, block translation cache — all
//! guest-transparent), so *any* observable difference from the legacy
//! reference is a bug:
//!
//! - run-loop events ([`Event`]) must match at every chunk boundary,
//! - [`Machine::snapshot`] (registers, EIP, flags, clock, stats,
//!   pending IRQs) must match at every boundary,
//! - the EA-MPU decision logs (query + decision, including rule slots)
//!   must be byte-identical,
//! - the final RAM digests must match.
//!
//! Two drive modes: [`run_diff`] exercises the real run loops
//! (IRQ delivery, device polling, batching, block compilation and
//! invalidation — where loop-boundary bugs live) in odd-sized chunks;
//! [`step_diff`] single-steps all machines and compares after every
//! instruction, which localises a divergence to the exact instruction
//! that caused it.

use crate::gen::{setup_rules, words_to_bytes, CaseSetup};
use sp_emu::devices::Timer;
use sp_emu::{EngineKind, Event, Machine, MachineConfig};

/// RAM size for fuzz machines: big enough for any generated address
/// drawn from `[0, 2^17)`, small enough that per-case construction and
/// RAM digests stay cheap across a 10,000-case campaign.
pub const FUZZ_RAM: u32 = 1 << 17;

/// MMIO base the optional case timer is mapped at.
pub const TIMER_BASE: u32 = 0xf000_0000;

/// The lockstep participants, reference first: every comparison is
/// against `ENGINES[0]` (legacy).
pub const ENGINES: [EngineKind; 3] = [EngineKind::Legacy, EngineKind::Fast, EngineKind::Translated];

/// Builds one machine of a differential set.
pub fn build_machine(setup: &CaseSetup, engine: EngineKind) -> Machine {
    let mut m = Machine::new(MachineConfig {
        ram_size: FUZZ_RAM,
        engine,
        hw_context_save: setup.hw_context_save,
        ..MachineConfig::default()
    });
    let bytes = words_to_bytes(&setup.words);
    m.load_image(setup.origin, &bytes)
        .expect("generated program fits in fuzz RAM");
    m.set_regs(setup.regs);
    m.set_eflags(setup.eflags);
    if setup.idt_base != 0 {
        m.set_idt_base(setup.idt_base);
    }
    for &(vector, handler) in &setup.idt_entries {
        // A hostile IDT (off-bus slots) is part of the input space.
        let _ = m.set_idt_entry(vector, handler);
    }
    for rule in setup_rules(setup) {
        // Conflicting rules are rejected identically on all machines.
        let _ = m.mpu_mut().configure(rule);
    }
    m.set_mpu_enabled(setup.mpu_enabled);
    if let Some((interval, vector)) = setup.timer {
        let h = m.add_device(Box::new(Timer::new(TIMER_BASE, vector)));
        m.device_mut::<Timer>(h)
            .expect("timer just added")
            .configure(interval, true);
    }
    for &v in &setup.prior_irqs {
        m.raise_irq(v);
    }
    m.set_eip(setup.origin);
    m.mpu_mut().set_decision_log_enabled(true);
    m
}

/// Builds the full lockstep set, one machine per engine in [`ENGINES`]
/// order (legacy reference first).
pub fn build_machines(setup: &CaseSetup) -> Vec<Machine> {
    ENGINES.map(|engine| build_machine(setup, engine)).into()
}

/// Compares the observable state of one machine against the legacy
/// reference; `at` names the boundary for the failure message.
pub fn compare_state(at: &str, m: &Machine, legacy: &Machine) -> Result<(), String> {
    let engine = m.engine();
    let sm = m.snapshot();
    let sl = legacy.snapshot();
    if sm != sl {
        return Err(format!(
            "state divergence at {at}:\n  {engine:?}: {sm:?}\n  legacy: {sl:?}"
        ));
    }
    let dm = m.mpu().take_decision_log();
    let dl = legacy.mpu().take_decision_log();
    if dm != dl {
        let i = dm.iter().zip(&dl).take_while(|(a, b)| a == b).count();
        return Err(format!(
            "EA-MPU decision divergence at {at}: {} vs {} records, first mismatch at {i}: \
             {engine:?} {:?} vs legacy {:?}",
            dm.len(),
            dl.len(),
            dm.get(i),
            dl.get(i),
        ));
    }
    Ok(())
}

/// Compares every non-reference machine's state against the reference
/// (`machines[0]`), consuming all decision logs. The reference log is
/// taken once up front (taking drains), so every participant is held
/// against the same record sequence.
pub fn compare_all(at: &str, machines: &[Machine]) -> Result<(), String> {
    let (legacy, rest) = machines.split_first().expect("at least the reference");
    let sl = legacy.snapshot();
    let dl = legacy.mpu().take_decision_log();
    for m in rest {
        let engine = m.engine();
        let sm = m.snapshot();
        if sm != sl {
            return Err(format!(
                "state divergence at {at}:\n  {engine:?}: {sm:?}\n  legacy: {sl:?}"
            ));
        }
        let dm = m.mpu().take_decision_log();
        if dm != dl {
            let i = dm.iter().zip(&dl).take_while(|(a, b)| a == b).count();
            return Err(format!(
                "EA-MPU decision divergence at {at}: {} vs {} records, first mismatch at {i}: \
                 {engine:?} {:?} vs legacy {:?}",
                dm.len(),
                dl.len(),
                dm.get(i),
                dl.get(i),
            ));
        }
    }
    Ok(())
}

fn compare_ram(machines: &[Machine]) -> Result<(), String> {
    let digest = machines[0].ram_digest();
    for m in &machines[1..] {
        if m.ram_digest() != digest {
            return Err(format!(
                "RAM digest divergence at end of case ({:?} vs legacy)",
                m.engine()
            ));
        }
    }
    Ok(())
}

/// Drives the set through their *run loops* in identical chunks,
/// comparing events, state, and EA-MPU decisions at every boundary and
/// RAM at the end.
pub fn run_diff(setup: &CaseSetup) -> Result<(), String> {
    let mut machines = build_machines(setup);
    let start = machines[0].cycles();
    let mut boundary = 0u64;
    loop {
        let spent = machines[0].cycles() - start;
        if spent >= setup.budget {
            break;
        }
        let chunk = setup.chunk.min(setup.budget - spent);
        let el = machines[0].run(chunk);
        for m in machines.iter_mut().skip(1) {
            let e = m.run(chunk);
            if e != el {
                return Err(format!(
                    "event divergence at chunk {boundary}: {:?} {e:?} vs legacy {el:?}",
                    m.engine()
                ));
            }
        }
        compare_all(&format!("chunk {boundary}"), &machines)?;
        boundary += 1;
        if let Event::Fault(_) | Event::FirmwareTrap { .. } = el {
            // Faults charge nothing (the clock cannot advance past them)
            // and no firmware is registered to service traps.
            break;
        }
    }
    compare_ram(&machines)
}

/// Single-steps the set, comparing after every instruction. Stops at
/// the first fault or halt (no run loop means no IRQ delivery to wake
/// a halted core).
pub fn step_diff(setup: &CaseSetup, max_steps: u64) -> Result<(), String> {
    let mut machines = build_machines(setup);
    for step in 0..max_steps {
        let rl = machines[0].step();
        for m in machines.iter_mut().skip(1) {
            let r = m.step();
            if r != rl {
                return Err(format!(
                    "step result divergence at instruction {step}: {:?} {r:?} vs legacy {rl:?}",
                    m.engine()
                ));
            }
        }
        compare_all(&format!("instruction {step}"), &machines)?;
        if rl.is_err() || machines[0].is_halted() {
            break;
        }
    }
    compare_ram(&machines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_setup;
    use crate::rng::FuzzRng;

    #[test]
    fn random_setups_run_identically_on_all_engines() {
        for seed in 0..200 {
            let setup = gen_setup(&mut FuzzRng::new(seed));
            run_diff(&setup).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn random_setups_step_identically_on_all_engines() {
        for seed in 1_000..1_200 {
            let setup = gen_setup(&mut FuzzRng::new(seed));
            step_diff(&setup, 2_000).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn self_modifying_code_stays_coherent_across_the_set() {
        // A program that overwrites its own next instruction: the
        // predecode cache and the translation cache must see the write.
        // `movi r0, <addr of target>; movi r1, <hlt word>; stw [r0], r1;
        // target: jmp target` becomes `... hlt`.
        let origin = 0x1000u32;
        let mut words = Vec::new();
        sp32::encode(
            &sp32::Instr::MovImm {
                rd: sp32::Reg::R0,
                imm: origin + 6 * 4,
            },
            &mut words,
        );
        sp32::encode(
            &sp32::Instr::MovImm {
                rd: sp32::Reg::R1,
                imm: {
                    let mut w = Vec::new();
                    sp32::encode(&sp32::Instr::Hlt, &mut w);
                    w[0]
                },
            },
            &mut words,
        );
        sp32::encode(
            &sp32::Instr::Stw {
                rd: sp32::Reg::R0,
                rs: sp32::Reg::R1,
                disp: 0,
            },
            &mut words,
        );
        sp32::encode(&sp32::Instr::Nop, &mut words);
        sp32::encode(
            &sp32::Instr::Jmp {
                target: origin + 6 * 4,
            },
            &mut words,
        );
        assert_eq!(words.len(), 8, "layout: the jmp sits at word 6");
        let setup = CaseSetup {
            origin,
            words,
            regs: [0; 8],
            eflags: 0,
            idt_base: 0,
            idt_entries: vec![],
            mpu_rules: vec![],
            mpu_enabled: false,
            timer: None,
            prior_irqs: vec![],
            hw_context_save: false,
            budget: 1_000,
            chunk: 97,
        };
        run_diff(&setup).expect("self-modifying case");
        step_diff(&setup, 100).expect("self-modifying case, stepped");
        // And the rewritten instruction must actually have executed, on
        // every engine.
        for engine in ENGINES {
            let mut m = build_machine(&setup, engine);
            m.run(1_000);
            assert!(m.is_halted(), "{engine:?}: stored HLT not executed");
        }
    }
}
