//! HMAC (RFC 2104) over any [`Digest`].
//!
//! TyTAN uses HMAC twice: remote attestation authenticates task
//! measurements with MACs under the attestation key `K_a` (§3), and the
//! secure-storage task derives per-task keys `K_t = HMAC(id_t | K_p)` (§3).

use crate::{ct_eq, Digest, Sha1};

/// Computes `HMAC(key, message)` with hash `D`.
///
/// # Examples
///
/// ```
/// use tytan_crypto::{hmac, Sha1};
///
/// let tag = hmac::<Sha1>(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(tag[..4], [0xde, 0x7c, 0x9b, 0x85]);
/// ```
pub fn hmac<D: Digest>(key: &[u8], message: &[u8]) -> Vec<u8> {
    let mut key_block = vec![0u8; D::BLOCK_LEN];
    if key.len() > D::BLOCK_LEN {
        let hashed = D::digest(key);
        key_block[..hashed.len()].copy_from_slice(&hashed);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut inner = D::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = D::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Computes `HMAC-SHA1(key, message)` — the paper's MAC.
pub fn hmac_sha1(key: &[u8], message: &[u8]) -> Vec<u8> {
    hmac::<Sha1>(key, message)
}

/// A MAC key with misuse-resistant verification.
///
/// Wrapping key bytes in `HmacKey` keeps verification constant-time and the
/// key out of `Debug` output.
///
/// # Examples
///
/// ```
/// use tytan_crypto::HmacKey;
///
/// let key = HmacKey::new(b"attestation key".to_vec());
/// let tag = key.sign(b"report");
/// assert!(key.verify(b"report", &tag));
/// assert!(!key.verify(b"forged", &tag));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct HmacKey(Vec<u8>);

impl HmacKey {
    /// Wraps raw key bytes.
    pub fn new(bytes: Vec<u8>) -> Self {
        HmacKey(bytes)
    }

    /// Signs `message` with HMAC-SHA1.
    pub fn sign(&self, message: &[u8]) -> Vec<u8> {
        hmac_sha1(&self.0, message)
    }

    /// Verifies `tag` over `message` in constant time.
    pub fn verify(&self, message: &[u8], tag: &[u8]) -> bool {
        ct_eq(&self.sign(message), tag)
    }

    /// Exposes the raw key bytes (for key-derivation input).
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

impl std::fmt::Debug for HmacKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "HmacKey({} bytes, redacted)", self.0.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sha256;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 2202 test vectors for HMAC-SHA1.
    #[test]
    fn rfc2202_case_1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac_sha1(&key, b"Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
    }

    #[test]
    fn rfc2202_case_2() {
        assert_eq!(
            hex(&hmac_sha1(b"Jefe", b"what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
    }

    #[test]
    fn rfc2202_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(&hmac_sha1(&key, &data)),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3"
        );
    }

    #[test]
    fn rfc2202_long_key() {
        let key = [0xaau8; 80];
        assert_eq!(
            hex(&hmac_sha1(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112"
        );
    }

    // RFC 4231 test vector 1 for HMAC-SHA256.
    #[test]
    fn rfc4231_case_1_sha256() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac::<Sha256>(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn hmac_key_sign_verify() {
        let key = HmacKey::new(vec![7u8; 16]);
        let tag = key.sign(b"hello");
        assert!(key.verify(b"hello", &tag));
        assert!(!key.verify(b"hellp", &tag));
        let mut bad_tag = tag.clone();
        bad_tag[0] ^= 1;
        assert!(!key.verify(b"hello", &bad_tag));
        assert!(!key.verify(b"hello", &tag[..19]));
    }

    #[test]
    fn debug_redacts_key() {
        let key = HmacKey::new(vec![0x42; 16]);
        let debug = format!("{key:?}");
        assert!(debug.contains("redacted"));
        assert!(!debug.contains("42"));
    }
}
