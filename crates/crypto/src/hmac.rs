//! HMAC (RFC 2104) over any [`Digest`].
//!
//! TyTAN uses HMAC twice: remote attestation authenticates task
//! measurements with MACs under the attestation key `K_a` (§3), and the
//! secure-storage task derives per-task keys `K_t = HMAC(id_t | K_p)` (§3).

use crate::{ct_eq, Digest, Sha1};

/// Computes `HMAC(key, message)` with hash `D`.
///
/// # Examples
///
/// ```
/// use tytan_crypto::{hmac, Sha1};
///
/// let tag = hmac::<Sha1>(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(tag[..4], [0xde, 0x7c, 0x9b, 0x85]);
/// ```
pub fn hmac<D: Digest>(key: &[u8], message: &[u8]) -> Vec<u8> {
    HmacSchedule::<D>::new(key).sign(message)
}

/// A precomputed HMAC key schedule: the hash states after absorbing the
/// ipad/opad key blocks.
///
/// Computing `HMAC(key, m)` from scratch costs four compression-function
/// calls for a short `m` (ipad block, message block, opad block, inner
/// digest block). The two key-block compressions depend only on the key,
/// so a verifier that checks many tags under the same key — the fleet
/// attestation service verifies thousands of device reports per batch —
/// precomputes them once and halves the per-message hashing work.
/// [`batch_verify`] is the corresponding bulk entry point.
///
/// # Examples
///
/// ```
/// use tytan_crypto::{hmac_sha1, HmacSchedule, Sha1};
///
/// let schedule: HmacSchedule<Sha1> = HmacSchedule::new(b"key");
/// assert_eq!(schedule.sign(b"msg"), hmac_sha1(b"key", b"msg"));
/// assert!(schedule.verify(b"msg", &schedule.sign(b"msg")));
/// ```
#[derive(Clone)]
pub struct HmacSchedule<D: Digest> {
    inner: D,
    outer: D,
}

impl<D: Digest> HmacSchedule<D> {
    /// Precomputes the schedule for `key`.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = vec![0u8; D::BLOCK_LEN];
        if key.len() > D::BLOCK_LEN {
            let hashed = D::digest(key);
            key_block[..hashed.len()].copy_from_slice(&hashed);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut inner = D::new();
        let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
        inner.update(&ipad);
        let mut outer = D::new();
        let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
        outer.update(&opad);
        HmacSchedule { inner, outer }
    }

    /// Signs `message`, reusing the precomputed key states.
    pub fn sign(&self, message: &[u8]) -> Vec<u8> {
        let mut inner = self.inner.clone();
        inner.update(message);
        let inner_digest = inner.finalize();
        let mut outer = self.outer.clone();
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// Verifies `tag` over `message` in constant time (see
    /// [`crate::ct_eq`] for the comparison contract).
    pub fn verify(&self, message: &[u8], tag: &[u8]) -> bool {
        ct_eq(&self.sign(message), tag)
    }
}

impl<D: Digest> std::fmt::Debug for HmacSchedule<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The pad states are key-equivalent material: never print them.
        write!(f, "HmacSchedule(redacted)")
    }
}

/// Outcome of a [`batch_verify`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Per-item verdicts, in input order.
    pub ok: Vec<bool>,
}

impl BatchOutcome {
    /// Number of items that verified.
    pub fn accepted(&self) -> usize {
        self.ok.iter().filter(|&&b| b).count()
    }

    /// True when every item verified.
    pub fn all_ok(&self) -> bool {
        self.ok.iter().all(|&b| b)
    }
}

/// Verifies a batch of `(schedule, message, tag)` items, returning one
/// verdict per item in input order.
///
/// Each item's comparison is constant-time and independent — a bad tag
/// never short-circuits the rest of the batch, so the total running time
/// leaks only the batch size. The schedules may all share one key (one
/// device re-verified across rounds) or differ per item (a fleet drain
/// cycle covering many devices); either way the two key-block
/// compressions per HMAC are already paid.
pub fn batch_verify<'a, D, I>(items: I) -> BatchOutcome
where
    D: Digest + 'a,
    I: IntoIterator<Item = (&'a HmacSchedule<D>, &'a [u8], &'a [u8])>,
{
    BatchOutcome {
        ok: items
            .into_iter()
            .map(|(schedule, message, tag)| schedule.verify(message, tag))
            .collect(),
    }
}

/// Computes `HMAC-SHA1(key, message)` — the paper's MAC.
pub fn hmac_sha1(key: &[u8], message: &[u8]) -> Vec<u8> {
    hmac::<Sha1>(key, message)
}

/// A MAC key with misuse-resistant verification.
///
/// Wrapping key bytes in `HmacKey` keeps verification constant-time and the
/// key out of `Debug` output.
///
/// # Examples
///
/// ```
/// use tytan_crypto::HmacKey;
///
/// let key = HmacKey::new(b"attestation key".to_vec());
/// let tag = key.sign(b"report");
/// assert!(key.verify(b"report", &tag));
/// assert!(!key.verify(b"forged", &tag));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct HmacKey(Vec<u8>);

impl HmacKey {
    /// Wraps raw key bytes.
    pub fn new(bytes: Vec<u8>) -> Self {
        HmacKey(bytes)
    }

    /// Signs `message` with HMAC-SHA1.
    pub fn sign(&self, message: &[u8]) -> Vec<u8> {
        hmac_sha1(&self.0, message)
    }

    /// Verifies `tag` over `message` in constant time.
    ///
    /// The comparison is a byte-wise accumulate with no early exit (see
    /// [`crate::ct_eq`]): an equal-length tag differing in any position —
    /// first byte or last — takes the same code path, so timing reveals
    /// nothing about *where* a forgery diverges.
    pub fn verify(&self, message: &[u8], tag: &[u8]) -> bool {
        ct_eq(&self.sign(message), tag)
    }

    /// Precomputes the HMAC-SHA1 key schedule for bulk signing or
    /// verification under this key (see [`HmacSchedule`]).
    pub fn schedule(&self) -> HmacSchedule<Sha1> {
        HmacSchedule::new(&self.0)
    }

    /// Exposes the raw key bytes (for key-derivation input).
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

impl std::fmt::Debug for HmacKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "HmacKey({} bytes, redacted)", self.0.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sha256;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 2202 test vectors for HMAC-SHA1.
    #[test]
    fn rfc2202_case_1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac_sha1(&key, b"Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
    }

    #[test]
    fn rfc2202_case_2() {
        assert_eq!(
            hex(&hmac_sha1(b"Jefe", b"what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
    }

    #[test]
    fn rfc2202_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(&hmac_sha1(&key, &data)),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3"
        );
    }

    #[test]
    fn rfc2202_long_key() {
        let key = [0xaau8; 80];
        assert_eq!(
            hex(&hmac_sha1(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112"
        );
    }

    // RFC 4231 test vector 1 for HMAC-SHA256.
    #[test]
    fn rfc4231_case_1_sha256() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac::<Sha256>(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn hmac_key_sign_verify() {
        let key = HmacKey::new(vec![7u8; 16]);
        let tag = key.sign(b"hello");
        assert!(key.verify(b"hello", &tag));
        assert!(!key.verify(b"hellp", &tag));
        let mut bad_tag = tag.clone();
        bad_tag[0] ^= 1;
        assert!(!key.verify(b"hello", &bad_tag));
        assert!(!key.verify(b"hello", &tag[..19]));
    }

    #[test]
    fn debug_redacts_key() {
        let key = HmacKey::new(vec![0x42; 16]);
        let debug = format!("{key:?}");
        assert!(debug.contains("redacted"));
        assert!(!debug.contains("42"));
        let schedule = key.schedule();
        assert!(format!("{schedule:?}").contains("redacted"));
    }

    #[test]
    fn schedule_matches_from_scratch_hmac() {
        // Every key-size regime: shorter than, equal to, and longer than
        // the block length (the long-key path hashes the key first).
        for key_len in [0usize, 5, 20, 64, 80, 200] {
            let key: Vec<u8> = (0..key_len).map(|i| i as u8).collect();
            let schedule: HmacSchedule<Sha1> = HmacSchedule::new(&key);
            for msg_len in [0usize, 1, 55, 64, 300] {
                let msg: Vec<u8> = (0..msg_len).map(|i| (i * 7) as u8).collect();
                assert_eq!(
                    schedule.sign(&msg),
                    hmac_sha1(&key, &msg),
                    "key_len {key_len} msg_len {msg_len}"
                );
            }
        }
        let schedule: HmacSchedule<Sha256> = HmacSchedule::new(b"k");
        assert_eq!(schedule.sign(b"m"), hmac::<Sha256>(b"k", b"m"));
    }

    #[test]
    fn schedule_verify_equal_length_mismatch_rejected() {
        // The fleet verifier's tag comparison: equal-length forgeries are
        // rejected wherever the flipped byte sits (no-early-exit compare).
        let schedule: HmacSchedule<Sha1> = HmacSchedule::new(b"fleet key");
        let tag = schedule.sign(b"report");
        for position in 0..tag.len() {
            let mut forged = tag.clone();
            forged[position] ^= 0x80;
            assert!(
                !schedule.verify(b"report", &forged),
                "flipped byte {position} accepted"
            );
        }
        assert!(schedule.verify(b"report", &tag));
        assert!(!schedule.verify(b"report", &tag[..tag.len() - 1]));
    }

    #[test]
    fn batch_verify_reports_per_item_verdicts_in_order() {
        let a: HmacSchedule<Sha1> = HmacSchedule::new(b"device-a");
        let b: HmacSchedule<Sha1> = HmacSchedule::new(b"device-b");
        let tag_a = a.sign(b"report-a");
        let tag_b = b.sign(b"report-b");
        let mut forged = tag_b.clone();
        forged[0] ^= 1;
        let items: Vec<(&HmacSchedule<Sha1>, &[u8], &[u8])> = vec![
            (&a, b"report-a", &tag_a),
            (&b, b"report-b", &forged), // forged tag
            (&b, b"report-b", &tag_b),
            (&a, b"report-b", &tag_b), // wrong key for that tag
        ];
        let outcome = batch_verify(items);
        assert_eq!(outcome.ok, vec![true, false, true, false]);
        assert_eq!(outcome.accepted(), 2);
        assert!(!outcome.all_ok());
        assert!(batch_verify::<Sha1, _>(Vec::new()).all_ok());
    }
}
