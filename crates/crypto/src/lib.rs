//! From-scratch embedded cryptography for the TyTAN reproduction.
//!
//! The TyTAN paper (DAC 2015) builds its trust anchor on a small set of
//! symmetric primitives: a cryptographic hash for task measurement (SHA-1,
//! §4 — pluggable per footnote 8), HMAC for remote attestation (§3) and for
//! deriving per-task sealing keys `K_t = HMAC(id_t | K_p)` (secure storage,
//! §3), all rooted in a hardware platform key `K_p`.
//!
//! This crate implements those primitives with no external dependencies:
//!
//! - [`Sha1`] and [`Sha256`] — resumable block hashes behind the [`Digest`]
//!   trait. Resumability matters: TyTAN's RTM task must be *interruptible*
//!   during measurement to preserve real-time guarantees, which requires
//!   carrying hash state across preemptions.
//! - [`hmac`] / [`HmacKey`] — HMAC over any [`Digest`].
//! - [`derive_key`] — key derivation from the platform key ([`PlatformKey`]),
//!   used for the attestation key `K_a` and per-task keys `K_t`.
//! - [`SealingCipher`] — an HMAC-CTR stream cipher with an encrypt-then-MAC
//!   tag, used by the secure-storage task.
//! - [`ct_eq`] — constant-time comparison for MAC verification.
//! - [`CfChain`] — the Tiny-CFA-style control-flow hash chain the CFA
//!   plane folds taken edges into; only its head is MACed.
//! - [`TaskId`] — the 64-bit truncated measurement digest the paper uses as
//!   task identity (§6, footnote 9).
//!
//! SHA-1 is retained because the paper uses it; the RTM is generic over
//! [`Digest`] so SHA-256 drops in (see `tytan::rtm`).
//!
//! # Examples
//!
//! ```
//! use tytan_crypto::{Digest, Sha1, TaskId};
//!
//! let mut hasher = Sha1::new();
//! hasher.update(b"task binary code");
//! let digest = hasher.finalize();
//! let id = TaskId::from_digest(&digest);
//! assert_eq!(digest.len(), 20);
//! assert_eq!(id.as_u64(), u64::from_be_bytes(digest[..8].try_into().unwrap()));
//! ```

pub mod chain;
mod cipher;
mod ct;
mod hmac;
mod kdf;
mod sha1;
mod sha256;
mod taskid;

pub use chain::{compress_log, expand_runs, CfChain, RunRefolder};
pub use cipher::{SealedBlob, SealingCipher, UnsealError};
pub use ct::ct_eq;
pub use hmac::{batch_verify, hmac, hmac_sha1, BatchOutcome, HmacKey, HmacSchedule};
pub use kdf::{derive_key, PlatformKey, SymmetricKey, KEY_LEN};
pub use sha1::Sha1;
pub use sha256::Sha256;
pub use taskid::TaskId;

/// A resumable cryptographic hash.
///
/// The block-oriented `update` interface is what makes TyTAN's RTM task
/// interruptible: measurement state (an implementor of this trait) is kept
/// across preemptions, and each scheduling slice hashes a bounded number of
/// blocks.
pub trait Digest: Clone {
    /// Digest output length in bytes.
    const OUTPUT_LEN: usize;
    /// Internal block length in bytes (64 for SHA-1/SHA-256).
    const BLOCK_LEN: usize;

    /// Creates a fresh hash state.
    fn new() -> Self;

    /// Absorbs `data` into the state.
    fn update(&mut self, data: &[u8]);

    /// Consumes the state and produces the digest.
    fn finalize(self) -> Vec<u8>;

    /// Convenience: hash `data` in one call.
    fn digest(data: &[u8]) -> Vec<u8> {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_trait_one_shot_matches_incremental() {
        let data = b"the quick brown fox";
        let mut h = Sha1::new();
        for chunk in data.chunks(3) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), Sha1::digest(data));
    }
}
