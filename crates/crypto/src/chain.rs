//! Tiny-CFA-style control-flow hash chain.
//!
//! The prover folds every taken control-flow edge `(from, to)` of a
//! monitored task into a running SHA-1 chain:
//!
//! ```text
//! H_0     = 0^20
//! H_{i+1} = SHA-1(H_i ‖ from_i.to_le_bytes() ‖ to_i.to_le_bytes())
//! ```
//!
//! Only the 20-byte chain head is authenticated (MACed into the CFA
//! report); the edge log itself travels in the clear. The verifier
//! refolds the received log and compares heads, so any tampering with
//! the log — reorder, truncation, substitution — changes the head and
//! cannot survive. (The verifier consults edge-by-edge admissibility
//! first, so tampering that also bends an edge off the static CFG is
//! reported as the more specific violation; the head comparison is the
//! backstop that catches substitutions which stay on admissible
//! edges.)
//!
//! The chain is deliberately engine-agnostic: it consumes architectural
//! `(from, to)` pc pairs, never cycle counts or block boundaries, so
//! all three execution engines produce byte-identical heads for the
//! same guest run.

use crate::{Digest, Sha1};

/// Length of a chain head in bytes (one SHA-1 digest).
pub const CHAIN_LEN: usize = 20;

/// The all-zero genesis head `H_0`.
pub const CHAIN_GENESIS: [u8; CHAIN_LEN] = [0; CHAIN_LEN];

/// An incremental control-flow hash chain.
///
/// # Examples
///
/// ```
/// use tytan_crypto::chain::{CfChain, CHAIN_GENESIS};
///
/// let mut chain = CfChain::new();
/// assert_eq!(chain.head(), CHAIN_GENESIS);
/// chain.fold(0x10, 0x40);
/// chain.fold(0x44, 0x10);
/// assert_eq!(chain.head(), CfChain::fold_all([(0x10, 0x40), (0x44, 0x10)]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfChain {
    head: [u8; CHAIN_LEN],
    edges: u64,
}

impl Default for CfChain {
    fn default() -> Self {
        Self::new()
    }
}

impl CfChain {
    /// A fresh chain at the genesis head.
    pub fn new() -> Self {
        CfChain {
            head: CHAIN_GENESIS,
            edges: 0,
        }
    }

    /// Folds one taken edge `(from, to)` into the chain.
    pub fn fold(&mut self, from: u32, to: u32) {
        let mut h = Sha1::new();
        h.update(&self.head);
        h.update(&from.to_le_bytes());
        h.update(&to.to_le_bytes());
        let digest = h.finalize();
        self.head.copy_from_slice(&digest);
        self.edges += 1;
    }

    /// The current chain head.
    pub fn head(&self) -> [u8; CHAIN_LEN] {
        self.head
    }

    /// Number of edges folded so far.
    pub fn edges(&self) -> u64 {
        self.edges
    }

    /// Convenience: folds a whole edge log and returns the final head.
    pub fn fold_all(edges: impl IntoIterator<Item = (u32, u32)>) -> [u8; CHAIN_LEN] {
        let mut chain = CfChain::new();
        for (from, to) in edges {
            chain.fold(from, to);
        }
        chain.head()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genesis_is_all_zero() {
        assert_eq!(CfChain::new().head(), [0u8; CHAIN_LEN]);
        assert_eq!(CfChain::new().edges(), 0);
    }

    #[test]
    fn incremental_matches_fold_all() {
        let log = [(4u32, 16u32), (20, 4), (8, 32), (36, 4)];
        let mut chain = CfChain::new();
        for &(f, t) in &log {
            chain.fold(f, t);
        }
        assert_eq!(chain.head(), CfChain::fold_all(log));
        assert_eq!(chain.edges(), 4);
    }

    #[test]
    fn order_matters() {
        let ab = CfChain::fold_all([(1, 2), (3, 4)]);
        let ba = CfChain::fold_all([(3, 4), (1, 2)]);
        assert_ne!(ab, ba);
    }

    #[test]
    fn direction_matters() {
        // (from, to) and (to, from) must chain differently: a reversed
        // edge is exactly the shape of a return-to-attacker detour.
        assert_ne!(
            CfChain::fold_all([(0x10, 0x20)]),
            CfChain::fold_all([(0x20, 0x10)])
        );
    }

    #[test]
    fn prefix_never_equals_extension() {
        // Truncating the log must change the head (length extension by
        // edge append always moves the head off any prefix head).
        let full = CfChain::fold_all([(1, 2), (3, 4), (5, 6)]);
        let short = CfChain::fold_all([(1, 2), (3, 4)]);
        assert_ne!(full, short);
    }

    #[test]
    fn edge_is_not_byte_concat_ambiguous() {
        // Fixed-width little-endian framing: (0x0102, 0x0304) must not
        // collide with any re-split of the same byte stream.
        assert_ne!(
            CfChain::fold_all([(0x0102, 0x0304)]),
            CfChain::fold_all([(0x01020304, 0)])
        );
    }
}
