//! Tiny-CFA-style control-flow hash chain, folded over edge *runs*.
//!
//! The prover folds the taken control-flow edges of a monitored task
//! into a running SHA-1 chain. Real edge logs are loop-dominated — the
//! same backward edge repeats thousands of times per scheduling slice —
//! so the chain is defined over the **canonical run-length
//! decomposition** of the edge stream: maximal runs of a repeated edge
//! fold in one compression each, not one per iteration:
//!
//! ```text
//! H_0     = 0^20
//! H_{i+1} = SHA-1(H_i ‖ from_i.to_le_bytes() ‖ to_i.to_le_bytes() ‖ count_i.to_le_bytes())
//! ```
//!
//! where `(from_i, to_i, count_i)` is the i-th maximal run (adjacent
//! runs never share an edge, every count is ≥ 1). The run encoding is
//! domain-separated from the legacy per-edge encoding by message length
//! (32 bytes of chain input vs the old 28), so no run head collides
//! with any head of the count-free chain.
//!
//! Only the 20-byte chain head is authenticated (MACed into the CFA
//! report); the edge log itself travels in the clear — raw at protocol
//! v3 or run-length-compressed at v4. Both encodings of the same edge
//! stream verify against the same head, because the verifier refolds
//! the *canonical decomposition*: [`CfChain::fold_all`] compresses a
//! raw log on the fly, and [`CfChain::fold_runs`] consumes runs
//! directly. Any tampering with the log — reorder, truncation,
//! substitution, or splitting/merging run counts — changes the head
//! and cannot survive. (The verifier consults edge-by-edge
//! admissibility first, so tampering that also bends an edge off the
//! static CFG is reported as the more specific violation; the head
//! comparison is the backstop that catches substitutions which stay on
//! admissible edges.)
//!
//! Verifier-side refolding is the hot path at fleet scale, so
//! [`RunRefolder`] provides a batch API: every run folds a fixed
//! 32-byte message, whose SHA-1 padding is one constant 64-byte block
//! suffix. The refolder precomputes that padded block once and reuses
//! it across every report of a flush batch, driving the compression
//! function directly instead of the streaming [`Digest`] state machine.
//!
//! The chain is deliberately engine-agnostic: it consumes architectural
//! `(from, to)` pc pairs, never cycle counts or block boundaries, so
//! all three execution engines produce byte-identical heads for the
//! same guest run.

use crate::sha1;
use crate::{Digest, Sha1};

/// Length of a chain head in bytes (one SHA-1 digest).
pub const CHAIN_LEN: usize = 20;

/// The all-zero genesis head `H_0`.
pub const CHAIN_GENESIS: [u8; CHAIN_LEN] = [0; CHAIN_LEN];

/// Bytes of chain input per folded run: head ‖ from ‖ to ‖ count.
const RUN_MSG_LEN: usize = CHAIN_LEN + 12;

/// An incremental control-flow hash chain.
///
/// # Examples
///
/// ```
/// use tytan_crypto::chain::{CfChain, CHAIN_GENESIS};
///
/// let mut chain = CfChain::new();
/// assert_eq!(chain.head(), CHAIN_GENESIS);
/// chain.fold_run(0x10, 0x40, 3);
/// chain.fold_run(0x44, 0x10, 1);
/// // The raw stream folds to the same head via its canonical runs.
/// assert_eq!(
///     chain.head(),
///     CfChain::fold_all([(0x10, 0x40), (0x10, 0x40), (0x10, 0x40), (0x44, 0x10)])
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfChain {
    head: [u8; CHAIN_LEN],
    edges: u64,
}

impl Default for CfChain {
    fn default() -> Self {
        Self::new()
    }
}

impl CfChain {
    /// A fresh chain at the genesis head.
    pub fn new() -> Self {
        CfChain {
            head: CHAIN_GENESIS,
            edges: 0,
        }
    }

    /// Folds one maximal run — edge `(from, to)` taken `count`
    /// consecutive times — into the chain in a single compression.
    /// `count == 0` is a no-op.
    ///
    /// Canonicality is the caller's contract: adjacent calls must not
    /// repeat the same edge (coalesce them into one count instead), or
    /// the head diverges from the canonical decomposition that
    /// [`CfChain::fold_all`] and every verifier computes.
    pub fn fold_run(&mut self, from: u32, to: u32, count: u32) {
        if count == 0 {
            return;
        }
        let mut h = Sha1::new();
        h.update(&self.head);
        h.update(&from.to_le_bytes());
        h.update(&to.to_le_bytes());
        h.update(&count.to_le_bytes());
        let digest = h.finalize();
        self.head.copy_from_slice(&digest);
        self.edges += u64::from(count);
    }

    /// Folds one taken edge: a run of length 1. Subject to the same
    /// canonicality contract as [`CfChain::fold_run`] — a repeated edge
    /// must fold as one counted run, not as repeated calls.
    pub fn fold(&mut self, from: u32, to: u32) {
        self.fold_run(from, to, 1);
    }

    /// The current chain head.
    pub fn head(&self) -> [u8; CHAIN_LEN] {
        self.head
    }

    /// Number of raw edges folded so far (sum of run counts).
    pub fn edges(&self) -> u64 {
        self.edges
    }

    /// Folds a raw edge log via its canonical run decomposition and
    /// returns the final head. O(#runs) compressions, not O(#edges).
    pub fn fold_all(edges: impl IntoIterator<Item = (u32, u32)>) -> [u8; CHAIN_LEN] {
        let mut chain = CfChain::new();
        let mut pending: Option<(u32, u32, u32)> = None;
        for (from, to) in edges {
            match &mut pending {
                Some((f, t, n)) if *f == from && *t == to && *n < u32::MAX => *n += 1,
                _ => {
                    if let Some((f, t, n)) = pending {
                        chain.fold_run(f, t, n);
                    }
                    pending = Some((from, to, 1));
                }
            }
        }
        if let Some((f, t, n)) = pending {
            chain.fold_run(f, t, n);
        }
        chain.head()
    }

    /// Folds an already run-length-encoded log and returns the final
    /// head. The runs must be the canonical decomposition (maximal,
    /// counts ≥ 1); zero-count runs are skipped as no-ops.
    pub fn fold_runs(runs: impl IntoIterator<Item = (u32, u32, u32)>) -> [u8; CHAIN_LEN] {
        let mut chain = CfChain::new();
        for (from, to, count) in runs {
            chain.fold_run(from, to, count);
        }
        chain.head()
    }
}

/// Canonically run-length-encodes a raw edge log: maximal runs of a
/// repeated edge collapse to one `(from, to, count)` triple. This is
/// the decomposition the chain is defined over, so
/// `CfChain::fold_runs(compress_log(log)) == CfChain::fold_all(log)`.
pub fn compress_log(edges: impl IntoIterator<Item = (u32, u32)>) -> Vec<(u32, u32, u32)> {
    let mut runs: Vec<(u32, u32, u32)> = Vec::new();
    for (from, to) in edges {
        match runs.last_mut() {
            Some((f, t, n)) if *f == from && *t == to && *n < u32::MAX => *n += 1,
            _ => runs.push((from, to, 1)),
        }
    }
    runs
}

/// Expands a run-length-encoded log back into its raw edge stream.
/// Lazy — hostile counts cost the consumer only as far as it iterates.
pub fn expand_runs(runs: &[(u32, u32, u32)]) -> impl Iterator<Item = (u32, u32)> + '_ {
    runs.iter()
        .flat_map(|&(from, to, count)| std::iter::repeat_n((from, to), count as usize))
}

/// Batch chain refolder: precomputed-padding single-block folds.
///
/// A run folds a fixed [`RUN_MSG_LEN`]-byte message, short enough that
/// its padded SHA-1 form is exactly one 64-byte block: message bytes,
/// the `0x80` terminator, zeros, and the constant 256-bit length field.
/// The refolder formats that block once and rewrites only the first 32
/// bytes per fold, invoking the compression function directly. Shared
/// across a verifier flush batch, refolding a report is then one
/// compression per *run* with no per-fold state-machine overhead.
///
/// Equivalence with the streaming fold is pinned by property test:
/// `refold(runs) == CfChain::fold_runs(runs)` for arbitrary logs.
#[derive(Debug, Clone)]
pub struct RunRefolder {
    block: [u8; 64],
}

impl Default for RunRefolder {
    fn default() -> Self {
        Self::new()
    }
}

impl RunRefolder {
    /// Builds the reusable padded block template.
    pub fn new() -> Self {
        let mut block = [0u8; 64];
        block[RUN_MSG_LEN] = 0x80;
        let bit_len = (RUN_MSG_LEN as u64) * 8;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        RunRefolder { block }
    }

    /// Folds one run onto `head` in place (one compression).
    fn fold_into(&mut self, head: &mut [u8; CHAIN_LEN], from: u32, to: u32, count: u32) {
        self.block[..CHAIN_LEN].copy_from_slice(head);
        self.block[CHAIN_LEN..CHAIN_LEN + 4].copy_from_slice(&from.to_le_bytes());
        self.block[CHAIN_LEN + 4..CHAIN_LEN + 8].copy_from_slice(&to.to_le_bytes());
        self.block[CHAIN_LEN + 8..CHAIN_LEN + 12].copy_from_slice(&count.to_le_bytes());
        let mut h = sha1::H0;
        sha1::compress_block(&mut h, &self.block);
        for (chunk, word) in head.chunks_exact_mut(4).zip(h) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
    }

    /// Refolds a run-length-encoded log from genesis and returns the
    /// head. Zero-count runs are skipped, mirroring
    /// [`CfChain::fold_run`].
    pub fn refold(&mut self, runs: impl IntoIterator<Item = (u32, u32, u32)>) -> [u8; CHAIN_LEN] {
        let mut head = CHAIN_GENESIS;
        for (from, to, count) in runs {
            if count == 0 {
                continue;
            }
            self.fold_into(&mut head, from, to, count);
        }
        head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genesis_is_all_zero() {
        assert_eq!(CfChain::new().head(), [0u8; CHAIN_LEN]);
        assert_eq!(CfChain::new().edges(), 0);
    }

    #[test]
    fn incremental_matches_fold_all() {
        let log = [(4u32, 16u32), (20, 4), (8, 32), (36, 4)];
        let mut chain = CfChain::new();
        for &(f, t) in &log {
            chain.fold(f, t);
        }
        assert_eq!(chain.head(), CfChain::fold_all(log));
        assert_eq!(chain.edges(), 4);
    }

    #[test]
    fn repeated_edge_folds_as_one_counted_run() {
        // The canonical chain hashes a thousand-iteration loop edge
        // once; the count still moves the head and the edge total.
        let mut chain = CfChain::new();
        chain.fold_run(0x10, 0x4, 1000);
        assert_eq!(chain.edges(), 1000);
        assert_eq!(
            chain.head(),
            CfChain::fold_all(std::iter::repeat_n((0x10, 0x4), 1000))
        );
        // And a different count is a different head.
        let mut other = CfChain::new();
        other.fold_run(0x10, 0x4, 999);
        assert_ne!(chain.head(), other.head());
    }

    #[test]
    fn split_runs_do_not_collide_with_merged_runs() {
        // (e,2)(e,3) and (e,5) expand to the same raw stream but only
        // the canonical (maximal) decomposition defines the chain; a
        // non-canonical split must not reproduce the head.
        let merged = CfChain::fold_runs([(8, 4, 5)]);
        let split = CfChain::fold_runs([(8, 4, 2), (8, 4, 3)]);
        assert_ne!(merged, split);
        assert_eq!(merged, CfChain::fold_all(std::iter::repeat_n((8, 4), 5)));
    }

    #[test]
    fn zero_count_run_is_a_no_op() {
        let mut chain = CfChain::new();
        chain.fold_run(1, 2, 0);
        assert_eq!(chain.head(), CHAIN_GENESIS);
        assert_eq!(chain.edges(), 0);
    }

    #[test]
    fn order_matters() {
        let ab = CfChain::fold_all([(1, 2), (3, 4)]);
        let ba = CfChain::fold_all([(3, 4), (1, 2)]);
        assert_ne!(ab, ba);
    }

    #[test]
    fn direction_matters() {
        // (from, to) and (to, from) must chain differently: a reversed
        // edge is exactly the shape of a return-to-attacker detour.
        assert_ne!(
            CfChain::fold_all([(0x10, 0x20)]),
            CfChain::fold_all([(0x20, 0x10)])
        );
    }

    #[test]
    fn prefix_never_equals_extension() {
        // Truncating the log must change the head (length extension by
        // edge append always moves the head off any prefix head).
        let full = CfChain::fold_all([(1, 2), (3, 4), (5, 6)]);
        let short = CfChain::fold_all([(1, 2), (3, 4)]);
        assert_ne!(full, short);
    }

    #[test]
    fn edge_is_not_byte_concat_ambiguous() {
        // Fixed-width little-endian framing: (0x0102, 0x0304) must not
        // collide with any re-split of the same byte stream.
        assert_ne!(
            CfChain::fold_all([(0x0102, 0x0304)]),
            CfChain::fold_all([(0x01020304, 0)])
        );
    }

    #[test]
    fn compress_log_is_canonical_and_expands_back() {
        let raw = [(1u32, 2u32), (1, 2), (1, 2), (3, 4), (1, 2), (1, 2)];
        let runs = compress_log(raw);
        assert_eq!(runs, vec![(1, 2, 3), (3, 4, 1), (1, 2, 2)]);
        // Maximality: adjacent runs never share an edge.
        for pair in runs.windows(2) {
            assert_ne!((pair[0].0, pair[0].1), (pair[1].0, pair[1].1));
        }
        let expanded: Vec<(u32, u32)> = expand_runs(&runs).collect();
        assert_eq!(expanded, raw);
        assert_eq!(CfChain::fold_runs(runs), CfChain::fold_all(raw));
    }

    #[test]
    fn refolder_matches_streaming_fold() {
        let runs = [(0u32, 8u32, 1u32), (8, 8, 4097), (8, 0, 1), (0, 8, 2)];
        let mut refolder = RunRefolder::new();
        assert_eq!(refolder.refold(runs), CfChain::fold_runs(runs));
        // Reuse across a batch never leaks state between reports.
        assert_eq!(refolder.refold(runs), CfChain::fold_runs(runs));
        assert_eq!(refolder.refold([]), CHAIN_GENESIS);
    }

    #[test]
    fn run_encoding_is_domain_separated_from_legacy_edge_encoding() {
        // The legacy chain hashed 28-byte messages (head ‖ from ‖ to);
        // the run chain hashes 32. A single-edge fold under the new
        // encoding must not collide with the old definition.
        let mut legacy = Sha1::new();
        legacy.update(&CHAIN_GENESIS);
        legacy.update(&7u32.to_le_bytes());
        legacy.update(&9u32.to_le_bytes());
        let legacy_head = legacy.finalize();
        assert_ne!(CfChain::fold_all([(7, 9)]).to_vec(), legacy_head);
    }
}
