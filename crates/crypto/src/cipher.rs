//! Authenticated sealing cipher for the secure-storage task.
//!
//! The paper's secure storage encrypts all data a task deposits under the
//! task key `K_t` (§3). The concrete cipher is unspecified; we use an
//! HMAC-SHA1-based CTR keystream with an encrypt-then-MAC tag, built only
//! from the primitives this crate already provides (no block cipher needed
//! on the tiny platform).

use crate::ct::ct_eq;
use crate::hmac::hmac_sha1;
use crate::kdf::SymmetricKey;
use std::fmt;

/// Length of the authentication tag in bytes.
const TAG_LEN: usize = 20;
/// Length of the nonce in bytes.
const NONCE_LEN: usize = 8;

/// A sealed (encrypted + authenticated) blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBlob {
    /// Per-seal nonce (unique per key).
    pub nonce: [u8; NONCE_LEN],
    /// The ciphertext.
    pub ciphertext: Vec<u8>,
    /// Encrypt-then-MAC tag over nonce and ciphertext.
    pub tag: [u8; TAG_LEN],
}

impl SealedBlob {
    /// Serializes the blob to bytes (`nonce || tag || ciphertext`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(NONCE_LEN + TAG_LEN + self.ciphertext.len());
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&self.tag);
        out.extend_from_slice(&self.ciphertext);
        out
    }

    /// Parses a blob serialized by [`SealedBlob::to_bytes`].
    ///
    /// Returns `None` if `bytes` is too short to contain nonce and tag.
    pub fn from_bytes(bytes: &[u8]) -> Option<SealedBlob> {
        if bytes.len() < NONCE_LEN + TAG_LEN {
            return None;
        }
        let mut nonce = [0u8; NONCE_LEN];
        nonce.copy_from_slice(&bytes[..NONCE_LEN]);
        let mut tag = [0u8; TAG_LEN];
        tag.copy_from_slice(&bytes[NONCE_LEN..NONCE_LEN + TAG_LEN]);
        Some(SealedBlob {
            nonce,
            ciphertext: bytes[NONCE_LEN + TAG_LEN..].to_vec(),
            tag,
        })
    }
}

/// Why unsealing failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsealError {
    /// The authentication tag did not verify: wrong key (wrong task
    /// identity) or tampered ciphertext.
    TagMismatch,
}

impl fmt::Display for UnsealError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnsealError::TagMismatch => write!(f, "authentication tag mismatch"),
        }
    }
}

impl std::error::Error for UnsealError {}

/// HMAC-CTR sealing cipher bound to one task key.
///
/// # Examples
///
/// ```
/// use tytan_crypto::{PlatformKey, SealingCipher};
///
/// # fn main() -> Result<(), tytan_crypto::UnsealError> {
/// let kp = PlatformKey::from_bytes([9u8; 20]);
/// let kt = kp.derive_task_key(&[0xaa; 8]);
/// let cipher = SealingCipher::new(kt);
///
/// let sealed = cipher.seal(b"calibration table", 1);
/// assert_eq!(cipher.unseal(&sealed)?, b"calibration table");
///
/// // A different task key (different id_t) cannot unseal.
/// let other = SealingCipher::new(kp.derive_task_key(&[0xbb; 8]));
/// assert!(other.unseal(&sealed).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SealingCipher {
    key: SymmetricKey,
}

impl SealingCipher {
    /// Creates a cipher bound to `key` (typically a task key `K_t`).
    pub fn new(key: SymmetricKey) -> Self {
        SealingCipher { key }
    }

    fn keystream_block(&self, nonce: &[u8; NONCE_LEN], counter: u64) -> Vec<u8> {
        let mut input = [0u8; NONCE_LEN + 8];
        input[..NONCE_LEN].copy_from_slice(nonce);
        input[NONCE_LEN..].copy_from_slice(&counter.to_be_bytes());
        hmac_sha1(self.key.as_bytes(), &input)
    }

    fn apply_keystream(&self, nonce: &[u8; NONCE_LEN], data: &mut [u8]) {
        for (block_idx, chunk) in data.chunks_mut(TAG_LEN).enumerate() {
            let ks = self.keystream_block(nonce, block_idx as u64);
            for (byte, k) in chunk.iter_mut().zip(ks.iter()) {
                *byte ^= k;
            }
        }
    }

    fn tag(&self, nonce: &[u8; NONCE_LEN], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let mut material = Vec::with_capacity(1 + NONCE_LEN + ciphertext.len());
        material.push(b'T'); // domain separation from keystream input
        material.extend_from_slice(nonce);
        material.extend_from_slice(ciphertext);
        let out = hmac_sha1(self.key.as_bytes(), &material);
        let mut tag = [0u8; TAG_LEN];
        tag.copy_from_slice(&out);
        tag
    }

    /// Seals `plaintext` with a caller-supplied `seal_counter` as nonce.
    ///
    /// The secure-storage task maintains a monotonically increasing seal
    /// counter per task so nonces never repeat under one key.
    pub fn seal(&self, plaintext: &[u8], seal_counter: u64) -> SealedBlob {
        let mut nonce = [0u8; NONCE_LEN];
        nonce.copy_from_slice(&seal_counter.to_be_bytes());
        let mut ciphertext = plaintext.to_vec();
        self.apply_keystream(&nonce, &mut ciphertext);
        let tag = self.tag(&nonce, &ciphertext);
        SealedBlob {
            nonce,
            ciphertext,
            tag,
        }
    }

    /// Unseals a blob, verifying the tag before decrypting.
    ///
    /// # Errors
    ///
    /// Returns [`UnsealError::TagMismatch`] if the tag does not verify —
    /// wrong key or modified blob; nothing is decrypted in that case.
    pub fn unseal(&self, blob: &SealedBlob) -> Result<Vec<u8>, UnsealError> {
        let expected = self.tag(&blob.nonce, &blob.ciphertext);
        if !ct_eq(&expected, &blob.tag) {
            return Err(UnsealError::TagMismatch);
        }
        let mut plaintext = blob.ciphertext.clone();
        self.apply_keystream(&blob.nonce, &mut plaintext);
        Ok(plaintext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kdf::PlatformKey;
    use proptest::prelude::*;

    fn cipher(task_id: u8) -> SealingCipher {
        let kp = PlatformKey::from_bytes([5u8; 20]);
        SealingCipher::new(kp.derive_task_key(&[task_id; 8]))
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let c = cipher(1);
        let sealed = c.seal(b"secret state", 42);
        assert_eq!(c.unseal(&sealed).unwrap(), b"secret state");
    }

    #[test]
    fn empty_plaintext_roundtrip() {
        let c = cipher(1);
        let sealed = c.seal(b"", 0);
        assert_eq!(c.unseal(&sealed).unwrap(), b"");
    }

    #[test]
    fn wrong_key_rejected() {
        let sealed = cipher(1).seal(b"secret", 1);
        assert_eq!(cipher(2).unseal(&sealed), Err(UnsealError::TagMismatch));
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let c = cipher(1);
        let mut sealed = c.seal(b"secret", 1);
        sealed.ciphertext[0] ^= 1;
        assert_eq!(c.unseal(&sealed), Err(UnsealError::TagMismatch));
    }

    #[test]
    fn tampered_nonce_rejected() {
        let c = cipher(1);
        let mut sealed = c.seal(b"secret", 1);
        sealed.nonce[7] ^= 1;
        assert_eq!(c.unseal(&sealed), Err(UnsealError::TagMismatch));
    }

    #[test]
    fn different_counters_give_different_ciphertexts() {
        let c = cipher(1);
        let a = c.seal(b"same plaintext", 1);
        let b = c.seal(b"same plaintext", 2);
        assert_ne!(a.ciphertext, b.ciphertext);
    }

    #[test]
    fn serialization_roundtrip() {
        let c = cipher(1);
        let sealed = c.seal(b"persisted", 7);
        let bytes = sealed.to_bytes();
        let parsed = SealedBlob::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, sealed);
        assert_eq!(c.unseal(&parsed).unwrap(), b"persisted");
    }

    #[test]
    fn short_serialization_rejected() {
        assert_eq!(SealedBlob::from_bytes(&[0u8; 10]), None);
        // Exactly nonce+tag is valid: empty ciphertext.
        assert!(SealedBlob::from_bytes(&[0u8; 28]).is_some());
    }

    proptest! {
        #[test]
        fn prop_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256),
                          counter in any::<u64>()) {
            let c = cipher(3);
            let sealed = c.seal(&data, counter);
            prop_assert_eq!(c.unseal(&sealed).unwrap(), data);
        }

        #[test]
        fn prop_any_single_bitflip_detected(
            data in proptest::collection::vec(any::<u8>(), 1..64),
            counter in any::<u64>(),
            flip_byte in any::<usize>(),
            flip_bit in 0u8..8,
        ) {
            let c = cipher(3);
            let sealed = c.seal(&data, counter);
            let mut bytes = sealed.to_bytes();
            let idx = flip_byte % bytes.len();
            bytes[idx] ^= 1 << flip_bit;
            let tampered = SealedBlob::from_bytes(&bytes).unwrap();
            prop_assert_eq!(c.unseal(&tampered), Err(UnsealError::TagMismatch));
        }
    }
}
