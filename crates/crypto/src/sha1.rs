//! SHA-1 (FIPS 180-4), implemented from scratch.
//!
//! The paper's RTM uses SHA-1 for task measurement (§4, footnote 8). The
//! implementation is block-resumable so the RTM task can be preempted
//! between blocks — the property Table 7 depends on.

use crate::Digest;

pub(crate) const H0: [u32; 5] = [
    0x6745_2301,
    0xefcd_ab89,
    0x98ba_dcfe,
    0x1032_5476,
    0xc3d2_e1f0,
];

/// One SHA-1 compression-function invocation over a prepared 64-byte
/// block, mutating `h` in place. Crate-internal: the control-flow chain
/// refolder (`chain::RunRefolder`) folds fixed 32-byte messages whose
/// padding never changes, so it formats one reusable block and calls the
/// compression function directly instead of round-tripping the streaming
/// [`Digest`] state machine per fold.
pub(crate) fn compress_block(h: &mut [u32; 5], block: &[u8; 64]) {
    let mut w = [0u32; 80];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes(chunk.try_into().expect("chunk of 4"));
    }
    for i in 16..80 {
        w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
    }

    let [mut a, mut b, mut c, mut d, mut e] = *h;
    for (i, &wi) in w.iter().enumerate() {
        let (f, k) = match i {
            0..=19 => ((b & c) | (!b & d), 0x5a82_7999),
            20..=39 => (b ^ c ^ d, 0x6ed9_eba1),
            40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1b_bcdc),
            _ => (b ^ c ^ d, 0xca62_c1d6),
        };
        let temp = a
            .rotate_left(5)
            .wrapping_add(f)
            .wrapping_add(e)
            .wrapping_add(k)
            .wrapping_add(wi);
        e = d;
        d = c;
        c = b.rotate_left(30);
        b = a;
        a = temp;
    }

    h[0] = h[0].wrapping_add(a);
    h[1] = h[1].wrapping_add(b);
    h[2] = h[2].wrapping_add(c);
    h[3] = h[3].wrapping_add(d);
    h[4] = h[4].wrapping_add(e);
}

/// SHA-1 hash state.
///
/// # Examples
///
/// ```
/// use tytan_crypto::{Digest, Sha1};
///
/// let digest = Sha1::digest(b"abc");
/// assert_eq!(
///     digest,
///     [
///         0xa9, 0x99, 0x3e, 0x36, 0x47, 0x06, 0x81, 0x6a, 0xba, 0x3e, 0x25, 0x71, 0x78, 0x50,
///         0xc2, 0x6c, 0x9c, 0xd0, 0xd8, 0x9d,
///     ]
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha1 {
    h: [u32; 5],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Sha1 {
    /// Creates a fresh SHA-1 state.
    pub fn new() -> Self {
        Sha1 {
            h: H0,
            buffer: [0; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Number of compression-function invocations so far (full blocks).
    ///
    /// Exposed so the RTM can charge cycle costs per block processed.
    pub fn blocks_processed(&self) -> u64 {
        (self.total_len - self.buffer_len as u64) / 64
    }

    fn compress(&mut self, block: &[u8; 64]) {
        compress_block(&mut self.h, block);
    }
}

impl Default for Sha1 {
    fn default() -> Self {
        Sha1::new()
    }
}

impl Digest for Sha1 {
    const OUTPUT_LEN: usize = 20;
    const BLOCK_LEN: usize = 64;

    fn new() -> Self {
        Sha1::new()
    }

    fn update(&mut self, mut data: &[u8]) {
        self.total_len += data.len() as u64;
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
            if data.is_empty() {
                // Everything fit in the partial buffer; the tail handling
                // below must not clobber buffer_len.
                return;
            }
        }
        let mut chunks = data.chunks_exact(64);
        for chunk in &mut chunks {
            self.compress(chunk.try_into().expect("chunk of 64"));
        }
        let rest = chunks.remainder();
        self.buffer[..rest.len()].copy_from_slice(rest);
        self.buffer_len = rest.len();
    }

    fn finalize(mut self) -> Vec<u8> {
        let bit_len = self.total_len * 8;
        self.update(&[0x80]);
        while self.buffer_len != 56 {
            self.update(&[0x00]);
        }
        // Appending the length fills the block exactly; bypass total_len
        // bookkeeping by compressing directly.
        self.buffer[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buffer;
        self.compress(&block);
        self.h.iter().flat_map(|w| w.to_be_bytes()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // FIPS 180-4 / RFC 3174 test vectors.
    #[test]
    fn empty_string() {
        assert_eq!(
            hex(&Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex(&Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex(&Sha1::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&Sha1::digest(&data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn exactly_one_block() {
        let data = vec![0x61u8; 64];
        let mut h = Sha1::new();
        h.update(&data);
        assert_eq!(h.blocks_processed(), 1);
        assert_eq!(h.finalize(), Sha1::digest(&data));
    }

    #[test]
    fn incremental_equals_one_shot_at_odd_boundaries() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0usize, 1, 63, 64, 65, 127, 500, 999, 1000] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha1::digest(&data), "split at {split}");
        }
    }

    #[test]
    fn blocks_processed_counts_full_blocks() {
        let mut h = Sha1::new();
        h.update(&[0u8; 63]);
        assert_eq!(h.blocks_processed(), 0);
        h.update(&[0u8; 1]);
        assert_eq!(h.blocks_processed(), 1);
        h.update(&[0u8; 128]);
        assert_eq!(h.blocks_processed(), 3);
    }

    #[test]
    fn clone_preserves_state() {
        let mut h = Sha1::new();
        h.update(b"partial ");
        let mut h2 = h.clone();
        h.update(b"message");
        h2.update(b"message");
        assert_eq!(h.finalize(), h2.finalize());
    }
}
