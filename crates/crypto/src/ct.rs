//! Constant-time comparison.

/// Compares two byte slices in constant time: a byte-wise accumulate
/// with **no early exit**.
///
/// The length difference is folded into the same accumulator as the byte
/// differences, and the shared prefix is always walked to its end — there
/// is no data-dependent branch anywhere in the loop, so for equal-length
/// inputs the running time is independent of the position of the first
/// differing byte. That closes the byte-by-byte MAC-forgery oracle: a
/// verifier cannot be timed to reveal how many leading tag bytes an
/// attacker has already guessed right. (The *lengths* of MAC tags are
/// public, so the min-length prefix walk leaks nothing new on mismatched
/// lengths.)
///
/// # Examples
///
/// ```
/// use tytan_crypto::ct_eq;
///
/// assert!(ct_eq(b"tag", b"tag"));
/// assert!(!ct_eq(b"tag", b"tab"));
/// assert!(!ct_eq(b"tag", b"tagg"));
/// ```
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    // Fold the length difference into the accumulator instead of
    // branching on it.
    let mut diff = (a.len() ^ b.len()) as u64;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= u64::from(x ^ y);
    }
    // Collapse without branching on the value.
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(&[], &[]));
        assert!(ct_eq(&[1, 2, 3], &[1, 2, 3]));
    }

    #[test]
    fn unequal_slices() {
        assert!(!ct_eq(&[1, 2, 3], &[1, 2, 4]));
        assert!(!ct_eq(&[0, 2, 3], &[1, 2, 3]));
        assert!(!ct_eq(&[1, 2], &[1, 2, 3]));
    }

    #[test]
    fn equal_length_mismatch_rejected_at_every_position() {
        // Pins the no-early-exit contract's observable half: an
        // equal-length mismatch is rejected wherever the differing byte
        // sits — first, last, or anywhere between — including when every
        // *other* byte matches (the accumulate must not be overwritten by
        // later equal bytes).
        let reference = [0xABu8; 20];
        for position in 0..reference.len() {
            let mut forged = reference;
            forged[position] ^= 0x01;
            assert!(!ct_eq(&reference, &forged), "position {position}");
            assert!(!ct_eq(&forged, &reference), "position {position} (swapped)");
        }
    }

    #[test]
    fn length_mismatch_with_equal_prefix_rejected() {
        // The length difference is folded into the accumulator: a tag
        // that is a strict prefix of the expected one must not verify.
        let tag = [7u8; 20];
        assert!(!ct_eq(&tag, &tag[..19]));
        assert!(!ct_eq(&tag[..19], &tag));
        assert!(!ct_eq(&tag, &[]));
        assert!(!ct_eq(&[], &tag));
    }

    proptest! {
        #[test]
        fn prop_matches_slice_eq(a in proptest::collection::vec(any::<u8>(), 0..64),
                                 b in proptest::collection::vec(any::<u8>(), 0..64)) {
            prop_assert_eq!(ct_eq(&a, &b), a == b);
        }

        #[test]
        fn prop_reflexive(a in proptest::collection::vec(any::<u8>(), 0..64)) {
            prop_assert!(ct_eq(&a, &a));
        }
    }
}
