//! Constant-time comparison.

/// Compares two byte slices in constant time (for equal lengths).
///
/// Returns `false` immediately for mismatched lengths — the length of a MAC
/// tag is public. For equal lengths the running time is independent of the
/// position of the first differing byte, which prevents the byte-by-byte
/// MAC-forgery oracle.
///
/// # Examples
///
/// ```
/// use tytan_crypto::ct_eq;
///
/// assert!(ct_eq(b"tag", b"tag"));
/// assert!(!ct_eq(b"tag", b"tab"));
/// assert!(!ct_eq(b"tag", b"tagg"));
/// ```
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    // Collapse without branching on the value.
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(&[], &[]));
        assert!(ct_eq(&[1, 2, 3], &[1, 2, 3]));
    }

    #[test]
    fn unequal_slices() {
        assert!(!ct_eq(&[1, 2, 3], &[1, 2, 4]));
        assert!(!ct_eq(&[0, 2, 3], &[1, 2, 3]));
        assert!(!ct_eq(&[1, 2], &[1, 2, 3]));
    }

    proptest! {
        #[test]
        fn prop_matches_slice_eq(a in proptest::collection::vec(any::<u8>(), 0..64),
                                 b in proptest::collection::vec(any::<u8>(), 0..64)) {
            prop_assert_eq!(ct_eq(&a, &b), a == b);
        }

        #[test]
        fn prop_reflexive(a in proptest::collection::vec(any::<u8>(), 0..64)) {
            prop_assert!(ct_eq(&a, &a));
        }
    }
}
