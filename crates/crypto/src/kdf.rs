//! Key derivation from the hardware platform key.
//!
//! TyTAN's platform comes with a platform key `K_p` whose access is
//! controlled by the EA-MPU; only trusted software components may read it,
//! and all other keys are derived from it (§3): the remote-attestation key
//! `K_a`, and per-task sealing keys `K_t = HMAC(id_t | K_p)`.

use crate::hmac::{hmac_sha1, HmacKey};
use std::fmt;

/// Length in bytes of derived symmetric keys (HMAC-SHA1 output).
pub const KEY_LEN: usize = 20;

/// A derived symmetric key.
///
/// The inner bytes are deliberately private and excluded from `Debug`
/// output; convert to an [`HmacKey`] for MAC operations.
#[derive(Clone, PartialEq, Eq)]
pub struct SymmetricKey([u8; KEY_LEN]);

impl SymmetricKey {
    /// Wraps raw key bytes.
    pub fn from_bytes(bytes: [u8; KEY_LEN]) -> Self {
        SymmetricKey(bytes)
    }

    /// The raw key bytes.
    pub fn as_bytes(&self) -> &[u8; KEY_LEN] {
        &self.0
    }

    /// Converts into an [`HmacKey`] for signing.
    pub fn to_hmac_key(&self) -> HmacKey {
        HmacKey::new(self.0.to_vec())
    }
}

impl fmt::Debug for SymmetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SymmetricKey(redacted)")
    }
}

/// The hardware platform key `K_p`.
///
/// On the real platform this lives in a fuse/ROM region readable only by
/// trusted components through the EA-MPU; here it is a value the platform
/// builder installs at boot. Every other key is derived from it with
/// [`derive_key`] / [`PlatformKey::derive`].
///
/// # Examples
///
/// ```
/// use tytan_crypto::PlatformKey;
///
/// let kp = PlatformKey::from_bytes([7u8; 20]);
/// let ka = kp.derive(b"remote-attestation");
/// let ka_again = kp.derive(b"remote-attestation");
/// assert_eq!(ka, ka_again);
/// assert_ne!(ka, kp.derive(b"secure-storage"));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct PlatformKey([u8; KEY_LEN]);

impl PlatformKey {
    /// Installs a platform key from raw bytes.
    pub fn from_bytes(bytes: [u8; KEY_LEN]) -> Self {
        PlatformKey(bytes)
    }

    /// The raw key bytes (trusted components only; guarded by the EA-MPU in
    /// the platform model).
    pub fn as_bytes(&self) -> &[u8; KEY_LEN] {
        &self.0
    }

    /// Derives a purpose-bound key: `HMAC(K_p, purpose)`.
    pub fn derive(&self, purpose: &[u8]) -> SymmetricKey {
        derive_key(self, purpose)
    }

    /// Derives the per-task sealing key `K_t = HMAC(id_t | K_p)` exactly as
    /// §3 of the paper writes it: the task identity concatenated with the
    /// platform key, hashed under HMAC keyed by `K_p`.
    pub fn derive_task_key(&self, task_id: &[u8]) -> SymmetricKey {
        let mut material = Vec::with_capacity(task_id.len() + KEY_LEN);
        material.extend_from_slice(task_id);
        material.extend_from_slice(&self.0);
        let out = hmac_sha1(&self.0, &material);
        let mut key = [0u8; KEY_LEN];
        key.copy_from_slice(&out);
        SymmetricKey(key)
    }
}

impl fmt::Debug for PlatformKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PlatformKey(redacted)")
    }
}

/// Derives a purpose-bound key from the platform key: `HMAC(K_p, purpose)`.
pub fn derive_key(platform_key: &PlatformKey, purpose: &[u8]) -> SymmetricKey {
    let out = hmac_sha1(platform_key.as_bytes(), purpose);
    let mut key = [0u8; KEY_LEN];
    key.copy_from_slice(&out);
    SymmetricKey(key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic_and_purpose_separated() {
        let kp = PlatformKey::from_bytes([1u8; 20]);
        assert_eq!(kp.derive(b"a"), kp.derive(b"a"));
        assert_ne!(kp.derive(b"a"), kp.derive(b"b"));
    }

    #[test]
    fn different_platform_keys_derive_different_keys() {
        let kp1 = PlatformKey::from_bytes([1u8; 20]);
        let kp2 = PlatformKey::from_bytes([2u8; 20]);
        assert_ne!(kp1.derive(b"a"), kp2.derive(b"a"));
    }

    #[test]
    fn task_key_binds_identity_and_platform() {
        let kp1 = PlatformKey::from_bytes([1u8; 20]);
        let kp2 = PlatformKey::from_bytes([2u8; 20]);
        let id_a = [0xaau8; 8];
        let id_b = [0xbbu8; 8];
        // Same task, same platform: stable.
        assert_eq!(kp1.derive_task_key(&id_a), kp1.derive_task_key(&id_a));
        // Different task identity: different key.
        assert_ne!(kp1.derive_task_key(&id_a), kp1.derive_task_key(&id_b));
        // Same task, different platform: different key.
        assert_ne!(kp1.derive_task_key(&id_a), kp2.derive_task_key(&id_a));
    }

    #[test]
    fn debug_never_leaks_key_bytes() {
        let kp = PlatformKey::from_bytes([0x42u8; 20]);
        let key = kp.derive(b"x");
        assert!(!format!("{kp:?}").contains("42"));
        assert!(format!("{key:?}").contains("redacted"));
    }

    #[test]
    fn symmetric_key_to_hmac_key_roundtrip() {
        let kp = PlatformKey::from_bytes([3u8; 20]);
        let key = kp.derive(b"attest");
        let hmac_key = key.to_hmac_key();
        assert_eq!(hmac_key.as_bytes(), key.as_bytes());
    }
}
