//! Task identities derived from measurement digests.

use std::fmt;

/// A task identity `id_t`: the truncated measurement digest of the task.
///
/// The paper uses the hash digest of a task's binary as its identity (§3)
/// and, for performance, truncates it to the first 64 bits when passing it
/// through CPU registers for IPC (§6, footnote 9). `TaskId` is that 64-bit
/// value; the full digest stays available from the RTM's measurement list.
///
/// # Examples
///
/// ```
/// use tytan_crypto::{Digest, Sha1, TaskId};
///
/// let digest = Sha1::digest(b"task binary");
/// let id = TaskId::from_digest(&digest);
/// assert_eq!(TaskId::from_digest(&digest), id);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(u64);

impl TaskId {
    /// Builds an identity from the first 8 bytes of a measurement digest.
    ///
    /// # Panics
    ///
    /// Panics if `digest` is shorter than 8 bytes.
    pub fn from_digest(digest: &[u8]) -> Self {
        assert!(digest.len() >= 8, "digest too short for a 64-bit task id");
        TaskId(u64::from_be_bytes(digest[..8].try_into().expect("8 bytes")))
    }

    /// Wraps a raw 64-bit identity (e.g. read back from CPU registers).
    pub const fn from_u64(raw: u64) -> Self {
        TaskId(raw)
    }

    /// The raw 64-bit value, as passed in CPU registers during IPC.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// The identity split into the two 32-bit register words `(hi, lo)`.
    pub fn to_register_words(self) -> (u32, u32) {
        ((self.0 >> 32) as u32, self.0 as u32)
    }

    /// Reassembles an identity from two 32-bit register words.
    pub fn from_register_words(hi: u32, lo: u32) -> Self {
        TaskId(((hi as u64) << 32) | lo as u64)
    }

    /// The identity as big-endian bytes (for key derivation input).
    pub fn to_bytes(self) -> [u8; 8] {
        self.0.to_be_bytes()
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl fmt::LowerHex for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Digest, Sha1};

    #[test]
    fn truncation_takes_first_eight_bytes() {
        let digest: Vec<u8> = (1..=20u8).collect();
        let id = TaskId::from_digest(&digest);
        assert_eq!(id.as_u64(), 0x0102_0304_0506_0708);
    }

    #[test]
    fn register_word_roundtrip() {
        let id = TaskId::from_u64(0xdead_beef_cafe_f00d);
        let (hi, lo) = id.to_register_words();
        assert_eq!(hi, 0xdead_beef);
        assert_eq!(lo, 0xcafe_f00d);
        assert_eq!(TaskId::from_register_words(hi, lo), id);
    }

    #[test]
    fn distinct_binaries_distinct_ids() {
        let a = TaskId::from_digest(&Sha1::digest(b"task a"));
        let b = TaskId::from_digest(&Sha1::digest(b"task b"));
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn short_digest_panics() {
        let _ = TaskId::from_digest(&[1, 2, 3]);
    }

    #[test]
    fn display_is_16_hex_digits() {
        assert_eq!(TaskId::from_u64(0xab).to_string(), "00000000000000ab");
    }
}
