//! `sp32-lint` — lint TTIF task images standalone, for CI and local use.
//!
//! ```text
//! sp32-lint [--json] [--deny warnings|errors] [--budget CYCLES]
//!           [--allow START:LEN[:r|w|rw]] [--peer START:LEN:ENTRY]
//!           [--cfg-export PATH] IMAGE.ttif...
//! ```
//!
//! `--cfg-export PATH` writes the image's admissible-edge set (the
//! serialized static CFG the control-flow-attestation verifier loads)
//! as JSON to `PATH`; it requires exactly one image argument, since the
//! export names one edge set.
//!
//! Exit status: 0 when every image is acceptable, 1 when any image has a
//! finding at or above the deny level (or fails to parse), 2 on usage or
//! I/O errors. Malformed image files are reported as findings, never a
//! panic — the input is untrusted by design.

use std::process::ExitCode;

use eampu::{Perms, Region};
use tytan_image::TaskImage;
use tytan_lint::{LintPolicy, Linter, Peer, Severity};

struct Options {
    json: bool,
    deny: Severity,
    policy: LintPolicy,
    cfg_export: Option<String>,
    files: Vec<String>,
}

fn usage() -> String {
    "usage: sp32-lint [--json] [--deny warnings|errors] [--budget CYCLES]\n\
     \x20                [--allow START:LEN[:r|w|rw]] [--peer START:LEN:ENTRY]\n\
     \x20                [--cfg-export PATH] IMAGE.ttif..."
        .to_string()
}

fn parse_u32(text: &str) -> Result<u32, String> {
    let t = text.trim();
    let parsed = match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        Some(hex) => u32::from_str_radix(hex, 16),
        None => t.parse(),
    };
    parsed.map_err(|_| format!("bad number `{text}`"))
}

/// Parses `START:LEN[:r|w|rw]` into an access window.
fn parse_window(spec: &str) -> Result<(Region, Perms), String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let (start, len, perms) = match parts.as_slice() {
        [start, len] => (start, len, Perms::RW),
        [start, len, perms] => {
            let perms = match *perms {
                "r" => Perms::R,
                "w" => Perms::W,
                "rw" => Perms::RW,
                other => return Err(format!("bad permissions `{other}` (want r, w, or rw)")),
            };
            (start, len, perms)
        }
        _ => return Err(format!("bad window `{spec}` (want START:LEN[:perms])")),
    };
    let start = parse_u32(start)?;
    let len = parse_u32(len)?;
    if len == 0 || start.checked_add(len - 1).is_none() {
        return Err(format!(
            "window `{spec}` is empty or wraps the address space"
        ));
    }
    Ok((Region::new(start, len), perms))
}

/// Parses `START:LEN:ENTRY` into a peer declaration.
fn parse_peer(spec: &str) -> Result<Peer, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let [start, len, entry] = parts.as_slice() else {
        return Err(format!("bad peer `{spec}` (want START:LEN:ENTRY)"));
    };
    let start = parse_u32(start)?;
    let len = parse_u32(len)?;
    let entry = parse_u32(entry)?;
    if len == 0 || start.checked_add(len - 1).is_none() {
        return Err(format!("peer `{spec}` is empty or wraps the address space"));
    }
    let code = Region::new(start, len);
    if !code.contains(entry) {
        return Err(format!(
            "peer entry {entry:#x} is outside {start:#x}:{len:#x}"
        ));
    }
    Ok(Peer { code, entry })
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        json: false,
        deny: Severity::Error,
        policy: LintPolicy::default(),
        cfg_export: None,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--json" => options.json = true,
            "--deny" => {
                options.deny = match value_of("--deny")?.as_str() {
                    "warnings" => Severity::Warning,
                    "errors" => Severity::Error,
                    other => return Err(format!("bad deny level `{other}`")),
                };
            }
            "--budget" => {
                let v = value_of("--budget")?;
                options.policy.block_cycle_budget =
                    Some(parse_u32(&v).map(u64::from).map_err(|e| e.to_string())?);
            }
            "--allow" => options
                .policy
                .windows
                .push(parse_window(&value_of("--allow")?)?),
            "--peer" => options.policy.peers.push(parse_peer(&value_of("--peer")?)?),
            "--cfg-export" => options.cfg_export = Some(value_of("--cfg-export")?),
            "--help" | "-h" => return Err(usage()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{}", usage()));
            }
            file => options.files.push(file.to_string()),
        }
    }
    if options.files.is_empty() {
        return Err(format!("no image files given\n{}", usage()));
    }
    if options.cfg_export.is_some() && options.files.len() != 1 {
        return Err("--cfg-export names one edge set; give exactly one image".to_string());
    }
    Ok(options)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("sp32-lint: {message}");
            return ExitCode::from(2);
        }
    };

    let linter = Linter::new(options.policy.clone());
    let mut rejected = false;
    let mut json_reports = Vec::new();
    for file in &options.files {
        let bytes = match std::fs::read(file) {
            Ok(bytes) => bytes,
            Err(e) => {
                eprintln!("sp32-lint: {file}: {e}");
                return ExitCode::from(2);
            }
        };
        // Untrusted input: a malformed file is a rejection, not a crash.
        let image = match TaskImage::parse(&bytes) {
            Ok(image) => image,
            Err(e) => {
                eprintln!("{file}: error: not a valid task image: {e}");
                rejected = true;
                continue;
            }
        };
        let report = linter.lint(&image);
        if report.rejects_at(options.deny) {
            rejected = true;
        }
        if let Some(path) = &options.cfg_export {
            let edges = tytan_lint::admissible_edges(&image);
            if let Err(e) = std::fs::write(path, edges.to_json() + "\n") {
                eprintln!("sp32-lint: {path}: {e}");
                return ExitCode::from(2);
            }
        }
        if options.json {
            json_reports.push(report.to_json());
        } else {
            println!("{file}: {report}");
        }
    }
    if options.json {
        println!("[{}]", json_reports.join(","));
    }
    if rejected {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
