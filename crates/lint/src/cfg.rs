//! Control-flow graph recovery over a task image's text section.
//!
//! Recovery is reachability-based (a worklist from the entry point), not
//! a linear sweep: task text sections legitimately embed data — the radar
//! monitor ships a pointer table and a scratch buffer inside text — and a
//! linear sweep would flag every such byte run as malformed. Only bytes
//! an execution can actually reach are decoded.
//!
//! Branch targets resolve through the image's relocation table: an
//! extension word that is a reloc site holds a *task-relative* pointer
//! (the loader rebases it), so an in-range, aligned value is an
//! intra-task edge. A non-relocated extension word is an *absolute*
//! address — it cannot point into this task, so it is recorded for the
//! policy pass (peer entry-point conformance) instead of becoming an
//! edge.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use sp32::cfg::{ends_block, fetch, is_terminator, FetchError};
use sp32::{DecodeError, Instr};

/// One decoded, reachable instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedInstr {
    /// Task-relative address of the first word.
    pub pc: u32,
    /// The decoded instruction.
    pub instr: Instr,
    /// Encoded size in bytes (4 or 8).
    pub size: u32,
    /// Whether the extension word (if any) is a relocation site, i.e.
    /// holds a task-relative pointer.
    pub ext_relocated: bool,
    /// For `Jmp`/`Jcc`/`Call` with a relocated, in-range, aligned
    /// target: the resolved intra-task target.
    pub target: Option<u32>,
}

/// How control reaches a successor block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Taken branch (`jmp`/`jcc` target).
    Branch,
    /// Fall-through to the next instruction.
    Fall,
    /// `call` target; the return address is on the stack on entry.
    Call,
}

/// A CFG edge, by successor block start address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Start pc of the successor block.
    pub to: u32,
    /// How control gets there.
    pub kind: EdgeKind,
}

/// A basic block: a maximal straight-line run of reachable
/// instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Start pc (a leader).
    pub start: u32,
    /// The block's instructions, in address order.
    pub instrs: Vec<DecodedInstr>,
    /// Successor edges.
    pub edges: Vec<Edge>,
}

/// The recovered control-flow graph plus every site the policy pass
/// needs to judge.
#[derive(Debug, Default)]
pub struct Cfg {
    /// Basic blocks, ordered by start address.
    pub blocks: Vec<Block>,
    /// Block start pc → index into `blocks`.
    pub index: BTreeMap<u32, usize>,
    /// Distinct reachable instructions decoded.
    pub instr_count: usize,
    /// Reachable pcs whose word failed to decode.
    pub decode_errors: Vec<(u32, DecodeError)>,
    /// Reachable pcs that are misaligned or extend past text.
    pub truncated: Vec<u32>,
    /// Pcs of instructions whose fall-through leaves the text section.
    pub fall_off: Vec<u32>,
    /// Relocated branch targets that are misaligned or outside text:
    /// `(pc, instr, target)`.
    pub bad_branch_targets: Vec<(u32, Instr, u32)>,
    /// Non-relocated (absolute) transfer targets: `(pc, instr, target)`.
    pub absolute_transfers: Vec<(u32, Instr, u32)>,
    /// Register-indirect jumps: `(pc, instr)`.
    pub indirect_jumps: Vec<(u32, Instr)>,
}

/// Recovers the CFG of `text` starting from `entry`.
///
/// `reloc_sites` is the image's relocation table (byte offsets of
/// 32-bit words holding task-relative pointers).
pub fn recover(text: &[u8], entry: u32, reloc_sites: &BTreeSet<u32>) -> Cfg {
    let text_len = text.len() as u32;
    let mut cfg = Cfg::default();
    let mut instrs: BTreeMap<u32, DecodedInstr> = BTreeMap::new();
    let mut leaders: BTreeSet<u32> = BTreeSet::new();
    let mut visited: BTreeSet<u32> = BTreeSet::new();
    let mut pending: VecDeque<u32> = VecDeque::new();

    leaders.insert(entry);
    pending.push_back(entry);

    while let Some(pc) = pending.pop_front() {
        if !visited.insert(pc) {
            continue;
        }
        let (instr, size) = match fetch(text, pc) {
            Ok(fetched) => (fetched.instr, fetched.size),
            Err(FetchError::Unfetchable) => {
                cfg.truncated.push(pc);
                continue;
            }
            Err(FetchError::Decode(error)) => {
                cfg.decode_errors.push((pc, error));
                continue;
            }
        };
        let ext_relocated = size == 8 && reloc_sites.contains(&(pc + 4));

        let mut resolved = None;
        match instr {
            Instr::Jmp { target } | Instr::Jcc { target, .. } | Instr::Call { target } => {
                if ext_relocated {
                    if target.is_multiple_of(4) && target < text_len {
                        resolved = Some(target);
                        leaders.insert(target);
                        pending.push_back(target);
                    } else {
                        cfg.bad_branch_targets.push((pc, instr, target));
                    }
                } else {
                    cfg.absolute_transfers.push((pc, instr, target));
                }
            }
            Instr::JmpReg { .. } => cfg.indirect_jumps.push((pc, instr)),
            _ => {}
        }

        if !is_terminator(&instr) {
            let next = pc + size;
            if next >= text_len {
                cfg.fall_off.push(pc);
            } else {
                pending.push_back(next);
                if matches!(instr, Instr::Jcc { .. } | Instr::Call { .. }) {
                    leaders.insert(next);
                }
            }
        }

        instrs.insert(
            pc,
            DecodedInstr {
                pc,
                instr,
                size,
                ext_relocated,
                target: resolved,
            },
        );
    }

    cfg.instr_count = instrs.len();

    // Split the decoded instruction stream at the leaders. A chain ends
    // at a control transfer, at the next leader, or where decoding
    // stopped (truncation / decode error already reported above).
    for &leader in &leaders {
        if !instrs.contains_key(&leader) {
            continue;
        }
        let mut block = Block {
            start: leader,
            instrs: Vec::new(),
            edges: Vec::new(),
        };
        let mut pc = leader;
        loop {
            let di = instrs[&pc];
            block.instrs.push(di);
            let next = pc + di.size;
            if ends_block(&di.instr) {
                if let Some(target) = di.target {
                    let kind = if matches!(di.instr, Instr::Call { .. }) {
                        EdgeKind::Call
                    } else {
                        EdgeKind::Branch
                    };
                    block.edges.push(Edge { to: target, kind });
                }
                if !is_terminator(&di.instr) && instrs.contains_key(&next) {
                    block.edges.push(Edge {
                        to: next,
                        kind: EdgeKind::Fall,
                    });
                }
                break;
            }
            if !instrs.contains_key(&next) {
                break;
            }
            if leaders.contains(&next) {
                block.edges.push(Edge {
                    to: next,
                    kind: EdgeKind::Fall,
                });
                break;
            }
            pc = next;
        }
        cfg.index.insert(leader, cfg.blocks.len());
        cfg.blocks.push(block);
    }

    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp32::asm::assemble;

    fn recover_source(source: &str) -> (Cfg, sp32::asm::Program) {
        let program = assemble(source, 0).expect("assembles");
        let relocs: BTreeSet<u32> = program.reloc_sites.iter().copied().collect();
        let cfg = recover(&program.bytes, program.symbol("main").unwrap(), &relocs);
        (cfg, program)
    }

    #[test]
    fn straight_line_is_one_block() {
        let (cfg, _) = recover_source("main:\n nop\n nop\n hlt\n");
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].instrs.len(), 3);
        assert!(cfg.blocks[0].edges.is_empty());
        assert_eq!(cfg.instr_count, 3);
    }

    #[test]
    fn conditional_branch_splits_blocks() {
        let (cfg, program) =
            recover_source("main:\n cmpi r0, 0\n jz done\n addi r0, -1\ndone:\n hlt\n");
        assert_eq!(cfg.blocks.len(), 3);
        let done = program.symbol("done").unwrap();
        let entry = &cfg.blocks[0];
        assert_eq!(entry.edges.len(), 2);
        assert!(entry
            .edges
            .iter()
            .any(|e| e.to == done && e.kind == EdgeKind::Branch));
        assert!(entry.edges.iter().any(|e| e.kind == EdgeKind::Fall));
    }

    #[test]
    fn embedded_data_is_not_decoded() {
        // A pointer table and padding inside text, never reached.
        let (cfg, _) =
            recover_source("main:\n jmp end\ntable:\n .word main, end\n .space 64\nend:\n hlt\n");
        assert_eq!(cfg.blocks.len(), 2);
        assert!(cfg.decode_errors.is_empty());
        assert_eq!(cfg.instr_count, 2);
    }

    #[test]
    fn loops_terminate_recovery() {
        let (cfg, _) = recover_source("main:\nspin:\n jmp spin\n");
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].edges.len(), 1);
        assert_eq!(cfg.blocks[0].edges[0].to, cfg.blocks[0].start);
    }

    #[test]
    fn call_edge_and_fallthrough() {
        let (cfg, program) = recover_source("main:\n call helper\n hlt\nhelper:\n ret\n");
        let helper = program.symbol("helper").unwrap();
        let entry = &cfg.blocks[cfg.index[&0]];
        assert!(entry
            .edges
            .iter()
            .any(|e| e.to == helper && e.kind == EdgeKind::Call));
        assert!(entry.edges.iter().any(|e| e.kind == EdgeKind::Fall));
    }

    #[test]
    fn fall_off_end_is_recorded() {
        let (cfg, _) = recover_source("main:\n nop\n nop\n");
        assert_eq!(cfg.fall_off.len(), 1);
    }

    #[test]
    fn indirect_jump_is_recorded_not_followed() {
        let (cfg, _) = recover_source("main:\n movi r1, main\n jmpr r1\n");
        assert_eq!(cfg.indirect_jumps.len(), 1);
        assert_eq!(cfg.blocks.len(), 1);
    }
}
