//! `tytan-lint` — static sp32 task-image verifier.
//!
//! TyTAN's secure loader admits tasks at runtime and relies on the EA-MPU
//! to catch illegal accesses dynamically. This crate front-loads that
//! judgement: it decodes a [`TaskImage`]'s text section into a
//! control-flow graph **without executing it** and checks, before the
//! loader commits any resources, that
//!
//! 1. every reachable instruction decodes, and straight-line execution
//!    never runs off the end of the text section;
//! 2. every *statically-resolvable* load, store, and transfer target
//!    conforms to the EA-MPU policy the task will run under: data
//!    accesses stay inside the task's own memory or a declared window,
//!    and cross-region transfers land on a declared peer entry point —
//!    the entry-point-enforcement property the hardware checks
//!    dynamically;
//! 3. the worst-case stack depth over the CFG (plus an interrupt-frame
//!    reserve) fits the image's declared stack, and no basic block's
//!    straight-line cycle cost exceeds a configurable real-time budget.
//!
//! # Address model
//!
//! Task images are linked at base 0 and rebased by the loader, so at
//! lint time the task's text section is `[0, text_len)` and its
//! data/bss/stack follow at `[text_len, total_memory_size)`. A value
//! whose origin is a relocation site is a *task-relative pointer*; a
//! non-relocated constant is an *absolute* address (an MMIO register, a
//! peer task, …) and is judged against the policy's windows and peers.
//!
//! # Soundness boundary
//!
//! The analysis is deliberately simple: it propagates constants within a
//! basic block (`movi`/`mov`/`addi`/`add`) and resolves what it can.
//! Anything it cannot resolve — register-indirect jumps, accesses
//! through a register of unknown value — is reported as an explicit
//! `Unproven` finding ([`Severity::Info`]) rather than silently passed.
//! A clean report therefore means "no *provable* violation", with every
//! un-analyzed site enumerated; it is not a proof of safety. Proven
//! violations are [`Severity::Error`] and make the image unloadable when
//! verification is enabled in the loader.

use std::collections::BTreeSet;

use eampu::{AccessKind, Perms, Region};
use sp32::{Instr, Reg};
use sp_emu::CycleModel;
use tytan_image::TaskImage;
use tytan_trace::{CounterId, Tracer};

pub mod cfg;
pub mod edges;
mod report;
pub mod symbolize;

pub use edges::{AdmissibleEdgeSet, CfaViolation, SiteKind, OUT_OF_REGION};
pub use report::{Finding, FindingKind, LintReport, LintStats, Severity, Verdict};
pub use symbolize::FuncSym;

use cfg::{Cfg, EdgeKind};

/// Bytes the analysis reserves on top of the worst-case stack depth for
/// one asynchronous interrupt frame (the hardware's 9-word save area).
pub const DEFAULT_IRQ_RESERVE: u32 = 36;

/// Safety margin, in bytes above the declared stack, past which the
/// stack fixed point is declared divergent (unbounded recursion).
const STACK_DIVERGENCE_MARGIN: i64 = 64 * 1024;

/// A peer task the linted image may legitimately transfer to: its code
/// region and its sole declared entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Peer {
    /// The peer's code region, in absolute addresses.
    pub code: Region,
    /// The only address inside `code` that transfers may target.
    pub entry: u32,
}

/// The rule table an image is verified against.
///
/// Rule slots referenced by [`Finding::rule_slot`] number the windows
/// first (`0..windows.len()`), then the peers.
#[derive(Debug, Clone)]
pub struct LintPolicy {
    /// Absolute address windows the task may access directly (MMIO
    /// ranges, shared-memory or IPC mailbox windows), with permissions.
    pub windows: Vec<(Region, Perms)>,
    /// Peer tasks reachable by cross-region transfer.
    pub peers: Vec<Peer>,
    /// Cost model for the per-block cycle bound — the same model the
    /// emulator charges, so the bound matches execution.
    pub cycle_model: CycleModel,
    /// Per-basic-block straight-line cycle budget; `None` disables the
    /// real-time check.
    pub block_cycle_budget: Option<u64>,
    /// Interrupt-frame reserve added to the worst-case stack depth.
    pub irq_stack_reserve: u32,
}

impl Default for LintPolicy {
    fn default() -> Self {
        LintPolicy {
            windows: Vec::new(),
            peers: Vec::new(),
            cycle_model: CycleModel::default(),
            block_cycle_budget: None,
            irq_stack_reserve: DEFAULT_IRQ_RESERVE,
        }
    }
}

/// A constant tracked through a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Known {
    value: u32,
    /// Whether the value originated at a relocation site, i.e. is a
    /// task-relative pointer rather than an absolute address.
    relocated: bool,
}

/// What is known about each register at a program point.
type RegState = [Option<Known>; 8];

/// Pointwise intersection: a register survives the join only if every
/// incoming path agrees on its value.
fn meet(a: &RegState, b: &RegState) -> RegState {
    std::array::from_fn(|i| match (a[i], b[i]) {
        (Some(x), Some(y)) if x == y => Some(x),
        _ => None,
    })
}

/// Applies one instruction's effect on the tracked register state.
/// Mirrors the emulator's register writes, degraded to "unknown" for
/// anything beyond pointer arithmetic.
fn transfer(regs: &mut RegState, di: &cfg::DecodedInstr) {
    match di.instr {
        Instr::MovImm { rd, imm } => {
            regs[rd.index()] = Some(Known {
                value: imm,
                relocated: di.ext_relocated,
            });
        }
        Instr::MovReg { rd, rs } => regs[rd.index()] = regs[rs.index()],
        Instr::AddImm { rd, imm } => {
            regs[rd.index()] = regs[rd.index()].map(|k| Known {
                value: k.value.wrapping_add(imm as i32 as u32),
                relocated: k.relocated,
            });
        }
        Instr::Add { rd, rs } => {
            regs[rd.index()] = match (regs[rd.index()], regs[rs.index()]) {
                // Pointer + offset (either order) stays a pointer;
                // pointer + pointer is meaningless — drop it.
                (Some(a), Some(b)) if !(a.relocated && b.relocated) => Some(Known {
                    value: a.value.wrapping_add(b.value),
                    relocated: a.relocated || b.relocated,
                }),
                _ => None,
            };
        }
        Instr::Ldw { rd, .. }
        | Instr::Ldb { rd, .. }
        | Instr::Sub { rd, .. }
        | Instr::Mul { rd, .. }
        | Instr::And { rd, .. }
        | Instr::Or { rd, .. }
        | Instr::Xor { rd, .. }
        | Instr::Not { rd }
        | Instr::Shl { rd, .. }
        | Instr::Shr { rd, .. }
        | Instr::Pop { rd } => regs[rd.index()] = None,
        Instr::Int { .. } => {
            // Syscalls return values in r0/r1; everything else is
            // callee-saved by the kernel dispatch path.
            regs[Reg::R0.index()] = None;
            regs[Reg::R1.index()] = None;
        }
        _ => {}
    }
}

/// Computes the register state at entry to every block: a forward
/// dataflow fixed point from the task entry, meeting over predecessors.
/// State flows through branch, fall-through, and call edges (the callee
/// sees the caller's registers); the fall-through *after* a call starts
/// from nothing, since the callee may clobber anything.
fn block_entry_states(graph: &Cfg, entry: u32) -> Vec<RegState> {
    let unknown: RegState = [None; 8];
    let mut states: Vec<Option<RegState>> = vec![None; graph.blocks.len()];
    let Some(&entry_idx) = graph.index.get(&entry) else {
        return vec![unknown; graph.blocks.len()];
    };
    states[entry_idx] = Some(unknown);
    let mut worklist = vec![entry_idx];
    while let Some(i) = worklist.pop() {
        let mut st = states[i].expect("worklist blocks have a state");
        for di in &graph.blocks[i].instrs {
            transfer(&mut st, di);
        }
        let ends_in_call = graph.blocks[i]
            .instrs
            .last()
            .is_some_and(|di| matches!(di.instr, Instr::Call { .. }));
        for edge in &graph.blocks[i].edges {
            let Some(&j) = graph.index.get(&edge.to) else {
                continue;
            };
            let out = if ends_in_call && edge.kind == EdgeKind::Fall {
                unknown
            } else {
                st
            };
            let new = match states[j] {
                None => out,
                Some(prev) => meet(&prev, &out),
            };
            if states[j] != Some(new) {
                states[j] = Some(new);
                worklist.push(j);
            }
        }
    }
    states.into_iter().map(|s| s.unwrap_or(unknown)).collect()
}

/// Statically verifies `image` against `policy`.
///
/// Runs entirely on the host: no emulator is constructed and no guest
/// cycle is charged. See the crate docs for what a clean report does
/// and does not prove.
pub fn lint_image(image: &TaskImage, policy: &LintPolicy) -> LintReport {
    let text = image.text();
    let text_len = text.len() as u32;
    let total = image.total_memory_size();
    let reloc_sites: BTreeSet<u32> = image.relocs().iter().copied().collect();
    let graph = cfg::recover(text, image.entry_offset(), &reloc_sites);

    let mut findings = Vec::new();
    structural_findings(&graph, &mut findings);
    transfer_findings(&graph, policy, &mut findings);
    memory_findings(
        &graph,
        policy,
        image.entry_offset(),
        text_len,
        total,
        &mut findings,
    );
    let worst_stack_depth = stack_findings(
        &graph,
        policy,
        image.entry_offset(),
        image.stack_len(),
        &mut findings,
    );
    let worst_block_cycles = cycle_findings(&graph, policy, &mut findings);
    let edge_states = block_entry_states(&graph, image.entry_offset());
    let edge_set = edges::AdmissibleEdgeSet::extract(
        image.name(),
        &graph,
        image.entry_offset(),
        text_len,
        &edge_states,
    );

    findings.sort_by(|a, b| {
        (a.pc, std::cmp::Reverse(a.severity)).cmp(&(b.pc, std::cmp::Reverse(b.severity)))
    });
    let unproven = findings.iter().filter(|f| f.kind.is_unproven()).count();

    LintReport {
        image_name: image.name().to_string(),
        stats: LintStats {
            instructions: graph.instr_count,
            blocks: graph.blocks.len(),
            worst_stack_depth,
            worst_block_cycles,
            unproven,
        },
        edge_digest: edge_set.digest_hex(),
        findings,
    }
}

/// Extracts the admissible-edge set of `image`: the static CFG distilled
/// into per-site admissible destinations for control-flow attestation
/// (see [`edges`]). Runs the same CFG recovery and dataflow as
/// [`lint_image`], no policy needed.
pub fn admissible_edges(image: &TaskImage) -> AdmissibleEdgeSet {
    let text = image.text();
    let reloc_sites: BTreeSet<u32> = image.relocs().iter().copied().collect();
    let graph = cfg::recover(text, image.entry_offset(), &reloc_sites);
    let states = block_entry_states(&graph, image.entry_offset());
    edges::AdmissibleEdgeSet::extract(
        image.name(),
        &graph,
        image.entry_offset(),
        text.len() as u32,
        &states,
    )
}

fn structural_findings(graph: &Cfg, findings: &mut Vec<Finding>) {
    for &(pc, error) in &graph.decode_errors {
        findings.push(Finding::new(
            FindingKind::Malformed { error },
            pc,
            None,
            format!("reachable word fails to decode: {error}"),
        ));
    }
    for &pc in &graph.truncated {
        findings.push(Finding::new(
            FindingKind::TruncatedInstruction,
            pc,
            None,
            "reachable instruction is misaligned or extends past the text section".to_string(),
        ));
    }
    for &pc in &graph.fall_off {
        findings.push(Finding::new(
            FindingKind::FallsOffText,
            pc,
            None,
            "straight-line execution runs off the end of the text section".to_string(),
        ));
    }
    for &(pc, instr, target) in &graph.bad_branch_targets {
        findings.push(Finding::new(
            FindingKind::IllegalTransfer { target },
            pc,
            Some(instr),
            format!("relocated branch target {target:#x} is not a valid text address"),
        ));
    }
}

fn transfer_findings(graph: &Cfg, policy: &LintPolicy, findings: &mut Vec<Finding>) {
    for &(pc, instr, target) in &graph.absolute_transfers {
        match policy.peers.iter().position(|p| p.code.contains(target)) {
            Some(slot) if policy.peers[slot].entry == target => {
                // Conforms: lands exactly on the declared entry point.
            }
            Some(slot) => {
                let expected = policy.peers[slot].entry;
                findings.push(
                    Finding::new(
                        FindingKind::MidRegionCall {
                            target,
                            expected_entry: expected,
                        },
                        pc,
                        Some(instr),
                        format!(
                            "transfer to {target:#x} lands inside a peer's code region \
                             but not on its entry point {expected:#x}"
                        ),
                    )
                    .with_rule_slot(policy.windows.len() + slot),
                );
            }
            None => {
                findings.push(Finding::new(
                    FindingKind::UnknownTransfer { target },
                    pc,
                    Some(instr),
                    format!("absolute transfer target {target:#x} matches no declared peer"),
                ));
            }
        }
    }
    for &(pc, instr) in &graph.indirect_jumps {
        findings.push(Finding::new(
            FindingKind::UnprovenIndirectJump,
            pc,
            Some(instr),
            "register-indirect jump target cannot be resolved statically".to_string(),
        ));
    }
}

fn memory_findings(
    graph: &Cfg,
    policy: &LintPolicy,
    entry: u32,
    text_len: u32,
    total: u32,
    findings: &mut Vec<Finding>,
) {
    let entry_states = block_entry_states(graph, entry);
    for (block, entry_state) in graph.blocks.iter().zip(entry_states) {
        let mut regs = entry_state;
        for di in &block.instrs {
            match di.instr {
                Instr::Ldw { rs, disp, .. } => check_access(
                    policy,
                    text_len,
                    total,
                    di.pc,
                    di.instr,
                    regs[rs.index()],
                    disp,
                    4,
                    AccessKind::Read,
                    findings,
                ),
                Instr::Ldb { rs, disp, .. } => check_access(
                    policy,
                    text_len,
                    total,
                    di.pc,
                    di.instr,
                    regs[rs.index()],
                    disp,
                    1,
                    AccessKind::Read,
                    findings,
                ),
                Instr::Stw { rd, disp, .. } => check_access(
                    policy,
                    text_len,
                    total,
                    di.pc,
                    di.instr,
                    regs[rd.index()],
                    disp,
                    4,
                    AccessKind::Write,
                    findings,
                ),
                Instr::Stb { rd, disp, .. } => check_access(
                    policy,
                    text_len,
                    total,
                    di.pc,
                    di.instr,
                    regs[rd.index()],
                    disp,
                    1,
                    AccessKind::Write,
                    findings,
                ),
                _ => {}
            }
            transfer(&mut regs, di);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_access(
    policy: &LintPolicy,
    text_len: u32,
    total: u32,
    pc: u32,
    instr: Instr,
    base: Option<Known>,
    disp: i16,
    size: u32,
    kind: AccessKind,
    findings: &mut Vec<Finding>,
) {
    let Some(base) = base else {
        findings.push(Finding::new(
            FindingKind::UnprovenAccess { kind },
            pc,
            Some(instr),
            "base register value cannot be resolved statically".to_string(),
        ));
        return;
    };
    let eff = base.value as i64 + disp as i64;
    if base.relocated {
        // A task-relative pointer: judge against the task's own layout.
        if eff < 0 || eff + size as i64 > total as i64 {
            let addr = eff as u32;
            let kind = match kind {
                AccessKind::Read => FindingKind::IllegalLoad { addr, size },
                AccessKind::Write => FindingKind::IllegalStore { addr, size },
            };
            findings.push(Finding::new(
                kind,
                pc,
                Some(instr),
                format!(
                    "task-relative access at {eff:#x} falls outside the task's \
                     {total:#x}-byte memory"
                ),
            ));
        } else if kind == AccessKind::Write && (eff as u32) < text_len {
            findings.push(Finding::new(
                FindingKind::StoreToText { addr: eff as u32 },
                pc,
                Some(instr),
                format!("store at {eff:#x} targets the task's own text section"),
            ));
        }
        return;
    }
    // An absolute address: must be covered by a declared window.
    if !(0..=u32::MAX as i64 - size as i64 + 1).contains(&eff) {
        report_illegal_absolute(pc, instr, eff as u32, size, kind, None, findings);
        return;
    }
    let addr = eff as u32;
    match policy
        .windows
        .iter()
        .position(|(region, _)| region.contains_range(addr, size))
    {
        Some(slot) if policy.windows[slot].1.allows(kind) => {}
        Some(slot) => report_illegal_absolute(pc, instr, addr, size, kind, Some(slot), findings),
        None => report_illegal_absolute(pc, instr, addr, size, kind, None, findings),
    }
}

fn report_illegal_absolute(
    pc: u32,
    instr: Instr,
    addr: u32,
    size: u32,
    kind: AccessKind,
    slot: Option<usize>,
    findings: &mut Vec<Finding>,
) {
    let finding_kind = match kind {
        AccessKind::Read => FindingKind::IllegalLoad { addr, size },
        AccessKind::Write => FindingKind::IllegalStore { addr, size },
    };
    let message = match slot {
        Some(_) => format!("declared window forbids this access at {addr:#x}"),
        None => format!("absolute access at {addr:#x} is covered by no declared window"),
    };
    let mut finding = Finding::new(finding_kind, pc, Some(instr), message);
    if let Some(slot) = slot {
        finding = finding.with_rule_slot(slot);
    }
    findings.push(finding);
}

/// Per-block stack summary: net depth change, the worst rise above the
/// block's entry depth (including transient pushes), and edge deltas.
struct BlockStack {
    net: i64,
    max_rise: i64,
}

fn stack_findings(
    graph: &Cfg,
    policy: &LintPolicy,
    entry: u32,
    stack_len: u32,
    findings: &mut Vec<Finding>,
) -> Option<u32> {
    let reserve = policy.irq_stack_reserve as i64;
    let summaries: Vec<BlockStack> = graph
        .blocks
        .iter()
        .map(|block| {
            let mut cur = 0i64;
            let mut max_rise = 0i64;
            for di in &block.instrs {
                let (delta, transient) = match di.instr {
                    Instr::Push { .. } => (4, 0),
                    Instr::Pop { .. } => (-4, 0),
                    // The call pushes a return address the callee's `ret`
                    // pops; the callee path is modeled by the call edge.
                    Instr::Call { .. } => (0, 4),
                    Instr::Ret => (-4, 0),
                    // `int` borrows an interrupt frame that `iret` in the
                    // handler returns; a task-level `iret` (the restore
                    // path) gives the frame back for good.
                    Instr::Int { .. } => (0, reserve),
                    Instr::Iret => (-reserve, 0),
                    _ => (0, 0),
                };
                max_rise = max_rise.max(cur + delta.max(transient));
                cur += delta;
            }
            BlockStack { net: cur, max_rise }
        })
        .collect();

    let Some(&entry_idx) = graph.index.get(&entry) else {
        return Some(0);
    };
    let mut depth: Vec<Option<i64>> = vec![None; graph.blocks.len()];
    depth[entry_idx] = Some(0);
    let mut worklist = vec![entry_idx];
    let cap = stack_len as i64 + STACK_DIVERGENCE_MARGIN;
    while let Some(i) = worklist.pop() {
        let d = depth[i].expect("worklist blocks have a depth");
        for edge in &graph.blocks[i].edges {
            let Some(&j) = graph.index.get(&edge.to) else {
                continue;
            };
            let extra = if edge.kind == EdgeKind::Call { 4 } else { 0 };
            let nd = d + summaries[i].net + extra;
            if nd > cap {
                findings.push(Finding::new(
                    FindingKind::StackUnbounded,
                    graph.blocks[j].start,
                    None,
                    "stack depth grows without bound along a cycle through this block".to_string(),
                ));
                return None;
            }
            if depth[j].is_none_or(|old| nd > old) {
                depth[j] = Some(nd);
                worklist.push(j);
            }
        }
    }

    let worst = graph
        .blocks
        .iter()
        .enumerate()
        .filter_map(|(i, _)| depth[i].map(|d| (d + summaries[i].max_rise).max(0)))
        .max()
        .unwrap_or(0);
    let required = worst + reserve;
    if required > stack_len as i64 {
        findings.push(Finding::new(
            FindingKind::StackOverflow {
                worst_depth: worst as u32,
                reserve: reserve as u32,
                stack_len,
            },
            entry,
            None,
            format!(
                "worst-case stack depth {worst} + {reserve}-byte interrupt reserve \
                 exceeds the declared stack of {stack_len} bytes"
            ),
        ));
    }
    Some(worst as u32)
}

fn cycle_findings(graph: &Cfg, policy: &LintPolicy, findings: &mut Vec<Finding>) -> u64 {
    let mut worst = 0u64;
    for block in &graph.blocks {
        let cycles: u64 = block
            .instrs
            .iter()
            .map(|di| policy.cycle_model.cost(&di.instr, true))
            .sum();
        worst = worst.max(cycles);
        if let Some(budget) = policy.block_cycle_budget {
            if cycles > budget {
                findings.push(Finding::new(
                    FindingKind::CycleBudgetExceeded { cycles, budget },
                    block.start,
                    None,
                    format!(
                        "basic block runs {cycles} straight-line cycles, over the \
                         {budget}-cycle real-time budget"
                    ),
                ));
            }
        }
    }
    worst
}

/// A reusable linter that reports through the `tytan-trace` counter
/// registry: images checked, findings by severity, unproven sites.
pub struct Linter {
    policy: LintPolicy,
    tracer: Tracer,
    images_checked: CounterId,
    findings_error: CounterId,
    findings_warning: CounterId,
    findings_info: CounterId,
    unproven_sites: CounterId,
}

impl Linter {
    /// Builds a linter with a detached (null) tracer.
    pub fn new(policy: LintPolicy) -> Linter {
        Linter::with_tracer(policy, Tracer::null())
    }

    /// Builds a linter that registers its `lint_*` counter group on
    /// `tracer`'s counter registry.
    pub fn with_tracer(policy: LintPolicy, tracer: Tracer) -> Linter {
        let counters = tracer.counters().clone();
        Linter {
            policy,
            images_checked: counters.register("lint_images_checked"),
            findings_error: counters.register("lint_findings_error"),
            findings_warning: counters.register("lint_findings_warning"),
            findings_info: counters.register("lint_findings_info"),
            unproven_sites: counters.register("lint_unproven_sites"),
            tracer,
        }
    }

    /// The policy images are verified against.
    pub fn policy(&self) -> &LintPolicy {
        &self.policy
    }

    /// Lints one image, updating the counter group.
    pub fn lint(&self, image: &TaskImage) -> LintReport {
        let report = lint_image(image, &self.policy);
        let counters = self.tracer.counters();
        counters.incr(self.images_checked);
        counters.add(self.findings_error, report.count(Severity::Error) as u64);
        counters.add(
            self.findings_warning,
            report.count(Severity::Warning) as u64,
        );
        counters.add(self.findings_info, report.count(Severity::Info) as u64);
        counters.add(self.unproven_sites, report.stats.unproven as u64);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp32::asm::assemble;

    fn image_from(source: &str, stack_len: u32) -> TaskImage {
        let program = assemble(source, 0).expect("assembles");
        TaskImage::from_program("lintee", &program, stack_len, true).expect("valid image")
    }

    fn lint_source(source: &str, policy: &LintPolicy) -> LintReport {
        lint_image(&image_from(source, 256), policy)
    }

    /// Splits an assembled program at `split_label` into text and data,
    /// the way the toolchain lays real tasks out.
    fn image_with_data(source: &str, split_label: &str, stack_len: u32) -> TaskImage {
        let program = assemble(source, 0).expect("assembles");
        let split = program.symbol(split_label).expect("split label") as usize;
        let text = program.bytes[..split].to_vec();
        let data = program.bytes[split..].to_vec();
        TaskImage::new(
            "lintee",
            true,
            program.symbol("main").expect("main"),
            text,
            data,
            0,
            stack_len,
            program.reloc_sites.clone(),
        )
        .expect("valid image")
    }

    #[test]
    fn verdict_collapses_reports_three_ways() {
        // No findings at all: every site proven.
        let clean = lint_source("main:\n movi r0, 1\n hlt\n", &LintPolicy::default());
        assert!(clean.is_fully_clean());
        assert_eq!(clean.verdict(), Verdict::CleanProven);

        // A register-indirect jump is unproven (Info): clean but not proven.
        let unproven = lint_source(
            "main:\n movi r1, main\n jmpr r1\n hlt\n",
            &LintPolicy::default(),
        );
        assert_eq!(unproven.count(Severity::Error), 0, "{unproven}");
        assert!(!unproven.is_fully_clean());
        assert_eq!(unproven.verdict(), Verdict::CleanUnproven);

        // A proven violation rejects.
        let reject = lint_source(
            "main:\n movi r1, 0xf0000000\n stw [r1], r2\n hlt\n",
            &LintPolicy::default(),
        );
        assert_eq!(reject.verdict(), Verdict::Reject);
        assert_eq!(reject.verdict().name(), "reject");
    }

    #[test]
    fn clean_spin_task_passes() {
        // The repo's spin-task idiom: a pointer materialized before the
        // loop, dereferenced inside it. Needs cross-block constant flow.
        let image = image_with_data(
            "main:\n movi r1, counter\nloop:\n ldw r2, [r1]\n addi r2, 1\n stw [r1], r2\n \
             jmp loop\ncounter:\n .word 0\n",
            "counter",
            256,
        );
        let report = lint_image(&image, &LintPolicy::default());
        assert_eq!(report.worst(), None, "{report}");
        assert!(report.stats.instructions >= 5);
    }

    #[test]
    fn store_outside_task_is_an_error() {
        let report = lint_source(
            "main:\n movi r1, 0xf0000000\n stw [r1], r2\n hlt\n",
            &LintPolicy::default(),
        );
        assert_eq!(report.count(Severity::Error), 1, "{report}");
        assert!(matches!(
            report.findings[0].kind,
            FindingKind::IllegalStore {
                addr: 0xf000_0000,
                size: 4
            }
        ));
    }

    #[test]
    fn declared_window_makes_mmio_access_clean() {
        let mut policy = LintPolicy::default();
        policy
            .windows
            .push((Region::new(0xf000_0000, 0x400), Perms::RW));
        let report = lint_source(
            "main:\n movi r1, 0xf0000100\n ldw r2, [r1]\n hlt\n",
            &policy,
        );
        assert_eq!(report.worst(), None, "{report}");
    }

    #[test]
    fn read_only_window_rejects_store_with_rule_slot() {
        let mut policy = LintPolicy::default();
        policy
            .windows
            .push((Region::new(0xf000_0000, 0x400), Perms::R));
        let report = lint_source(
            "main:\n movi r1, 0xf0000000\n stw [r1], r2\n hlt\n",
            &policy,
        );
        assert_eq!(report.count(Severity::Error), 1, "{report}");
        assert_eq!(report.findings[0].rule_slot, Some(0));
    }

    #[test]
    fn store_to_own_text_is_an_error() {
        let report = lint_source(
            "main:\n movi r1, main\n stw [r1], r2\n hlt\n",
            &LintPolicy::default(),
        );
        assert_eq!(report.count(Severity::Error), 1, "{report}");
        assert!(matches!(
            report.findings[0].kind,
            FindingKind::StoreToText { addr: 0 }
        ));
    }

    #[test]
    fn mid_region_call_is_an_error_and_entry_call_is_clean() {
        let mut policy = LintPolicy::default();
        policy.peers.push(Peer {
            code: Region::new(0x8000, 0x100),
            entry: 0x8000,
        });
        let clean = lint_source("main:\n call 0x8000\n hlt\n", &policy);
        assert_eq!(clean.worst(), None, "{clean}");

        let dirty = lint_source("main:\n call 0x8010\n hlt\n", &policy);
        assert_eq!(dirty.count(Severity::Error), 1, "{dirty}");
        assert!(matches!(
            dirty.findings[0].kind,
            FindingKind::MidRegionCall {
                target: 0x8010,
                expected_entry: 0x8000
            }
        ));
        // Peers are numbered after the (empty) window table.
        assert_eq!(dirty.findings[0].rule_slot, Some(0));
    }

    #[test]
    fn absolute_transfer_without_peer_is_an_error() {
        let report = lint_source("main:\n jmp 0x9000\n", &LintPolicy::default());
        assert_eq!(report.count(Severity::Error), 1, "{report}");
        assert!(matches!(
            report.findings[0].kind,
            FindingKind::UnknownTransfer { target: 0x9000 }
        ));
    }

    #[test]
    fn indirect_jump_is_unproven_not_error() {
        let report = lint_source("main:\n movi r1, main\n jmpr r1\n", &LintPolicy::default());
        assert_eq!(report.count(Severity::Error), 0, "{report}");
        assert_eq!(report.stats.unproven, 1);
        assert_eq!(report.worst(), Some(Severity::Info));
    }

    #[test]
    fn unresolved_base_register_is_unproven() {
        let report = lint_source("main:\n ldw r2, [r3]\n hlt\n", &LintPolicy::default());
        assert_eq!(report.count(Severity::Error), 0, "{report}");
        assert!(matches!(
            report.findings[0].kind,
            FindingKind::UnprovenAccess {
                kind: AccessKind::Read
            }
        ));
    }

    #[test]
    fn push_loop_is_stack_unbounded() {
        let report = lint_source(
            "main:\nloop:\n push r1\n jmp loop\n",
            &LintPolicy::default(),
        );
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.kind == FindingKind::StackUnbounded),
            "{report}"
        );
        assert_eq!(report.stats.worst_stack_depth, None);
    }

    #[test]
    fn deep_pushes_overflow_declared_stack() {
        // 8 pushes x 4 bytes + 36-byte reserve = 68 > 64.
        let mut body = String::from("main:\n");
        for _ in 0..8 {
            body.push_str(" push r1\n");
        }
        body.push_str(" hlt\n");
        let report = lint_image(&image_from(&body, 64), &LintPolicy::default());
        assert!(
            report.findings.iter().any(|f| matches!(
                f.kind,
                FindingKind::StackOverflow {
                    worst_depth: 32,
                    ..
                }
            )),
            "{report}"
        );
    }

    #[test]
    fn call_chain_depth_is_counted() {
        // main -> a -> b, each one call deep: worst depth 8 bytes.
        let report = lint_source(
            "main:\n call a\n hlt\na:\n call b\n ret\nb:\n ret\n",
            &LintPolicy::default(),
        );
        assert_eq!(report.stats.worst_stack_depth, Some(8), "{report}");
        assert_eq!(report.worst(), None);
    }

    #[test]
    fn recursion_is_unbounded() {
        let report = lint_source("main:\n call main\n hlt\n", &LintPolicy::default());
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.kind == FindingKind::StackUnbounded),
            "{report}"
        );
    }

    #[test]
    fn cycle_budget_flags_long_blocks() {
        let policy = LintPolicy {
            block_cycle_budget: Some(10),
            ..LintPolicy::default()
        };
        let report = lint_source(
            "main:\n add r1, r2\n add r1, r2\n add r1, r2\n add r1, r2\n add r1, r2\n \
             add r1, r2\n hlt\n",
            &policy,
        );
        assert_eq!(report.count(Severity::Warning), 1, "{report}");
        assert!(report.stats.worst_block_cycles > 10);
    }

    #[test]
    fn embedded_text_data_does_not_trip_the_decoder() {
        // Mirrors the radar monitor: a pointer table and scratch space
        // inside text, never executed.
        let report = lint_source(
            "main:\n jmp end\ntable:\n .word main, end\n .space 128\nend:\nspin:\n jmp spin\n",
            &LintPolicy::default(),
        );
        assert_eq!(report.worst(), None, "{report}");
    }

    #[test]
    fn json_report_round_trips_through_the_trace_parser() {
        let report = lint_source(
            "main:\n movi r1, 0xf0000000\n stw [r1], r2\n jmpr r1\n",
            &LintPolicy::default(),
        );
        let doc = tytan_trace::json::parse(&report.to_json()).expect("valid JSON");
        assert_eq!(doc.get("image").and_then(|v| v.as_str()), Some("lintee"));
        let findings = doc
            .get("findings")
            .and_then(|v| v.as_array())
            .expect("findings array");
        assert_eq!(findings.len(), report.findings.len());
        assert_eq!(
            findings[0].get("severity").and_then(|v| v.as_str()),
            Some("error")
        );
        assert!(findings[0].get("pc").and_then(|v| v.as_number()).is_some());
    }

    #[test]
    fn linter_counters_track_severities() {
        let tracer = Tracer::null();
        let linter = Linter::with_tracer(LintPolicy::default(), tracer.clone());
        linter.lint(&image_from(
            "main:\n movi r1, 0xf0000000\n stw [r1], r2\n jmpr r1\n",
            256,
        ));
        linter.lint(&image_from("main:\nspin:\n jmp spin\n", 256));
        let counters = tracer.counters();
        assert_eq!(counters.get("lint_images_checked"), Some(2));
        assert_eq!(counters.get("lint_findings_error"), Some(1));
        assert_eq!(counters.get("lint_findings_info"), Some(1));
        assert_eq!(counters.get("lint_unproven_sites"), Some(1));
    }
}
