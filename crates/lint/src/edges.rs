//! The admissible-edge set: the static CFG as a runtime-attestation
//! oracle.
//!
//! Control-flow attestation needs a ground truth to judge a reported
//! execution against. This module distils the recovered CFG
//! ([`crate::cfg`]) plus the constant-propagation dataflow into an
//! [`AdmissibleEdgeSet`]: for every reachable control-transfer site,
//! exactly which destinations a *benign* execution may take from it.
//!
//! - Direct `jmp`/`jcc`/`call` sites with a relocated, in-range target
//!   admit only that target (for `jcc`, only the taken direction is
//!   ever logged — fall-through emits no edge).
//! - `call` sites additionally pin the return address the matching
//!   `ret` must come back to; replay tracks this with a shadow stack,
//!   which is what catches ROP-style detours that stay entirely on
//!   statically-valid edges.
//! - Register-indirect jumps are bounded by the same dataflow the lint
//!   pass uses for memory accesses: a site whose register provably
//!   holds one task-relative pointer admits exactly that target.
//! - Indirect sites the analysis cannot bound are flagged
//!   [`SiteKind::Unproven`]; replay drops into a conservative mode for
//!   that site only — the destination must at least be a reachable
//!   instruction start ([`CfaViolation::UnprovenSiteViolation`]
//!   otherwise).
//! - Sites whose transfer provably leaves the task (absolute targets)
//!   are recorded as *declared external sites*: the runtime monitor
//!   logs a region exit there as the sentinel edge
//!   `(site, OUT_OF_REGION)`, which replay admits only from a declared
//!   site — an exit sentinel anywhere else, or an intra-task edge
//!   claimed from an external site, is itself evidence of tampering.
//!
//! Replay consumes the log in its canonical run-length-encoded form
//! ([`AdmissibleEdgeSet::replay_runs`]): admissibility of a repeated
//! edge is decided once per run — repetition of a jump adds no new
//! state, while call/return runs move the shadow stack in counted
//! batches — so replay cost is O(#runs), not O(#edges). Raw logs take
//! the same path through [`AdmissibleEdgeSet::replay`], which
//! canonically compresses first; violation indices always refer to the
//! *raw* edge stream either way.
//!
//! The set has one canonical byte encoding ([`AdmissibleEdgeSet::canonical_bytes`])
//! whose SHA-1 digest is embedded in the lint report and provisioned to
//! the fleet verifier, and a JSON form (`sp32-lint --cfg-export`) that
//! round-trips losslessly through `tytan-trace`'s dependency-free
//! parser.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use sp32::cfg::{transfer_kind, TransferKind};
use tytan_crypto::{Digest, Sha1};
use tytan_trace::chrome::escape_json_string;
use tytan_trace::json::{self, Value};

use crate::cfg::Cfg;
use crate::{transfer, RegState};

/// Task-relative sentinel endpoint the monitor records for the
/// unmonitored outside world: `(from, OUT_OF_REGION)` is a region
/// exit, `(OUT_OF_REGION, to)` a re-entry. Must match
/// `sp_emu::OUT_OF_REGION` (the prover-side definition; pinned by test
/// where both crates are visible).
pub const OUT_OF_REGION: u32 = u32::MAX;

/// What a benign execution may do at one control-transfer site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SiteKind {
    /// Unconditional direct jump: admits exactly `target`.
    Jump {
        /// The sole admissible destination.
        target: u32,
    },
    /// Conditional direct jump: the taken edge admits exactly `target`
    /// (fall-through emits no edge).
    CondJump {
        /// The taken-direction destination.
        target: u32,
    },
    /// Direct call: admits exactly `target` and pushes `ret` onto the
    /// replay shadow stack.
    Call {
        /// The callee entry.
        target: u32,
        /// The return address the matching `ret` must come back to.
        ret: u32,
    },
    /// Return: admits exactly the top of the replay shadow stack.
    Return,
    /// Register-indirect jump bounded by the dataflow: admits any
    /// member of `targets`.
    Indirect {
        /// Admissible destinations, sorted ascending.
        targets: Vec<u32>,
    },
    /// Register-indirect jump the analysis could not bound: replay is
    /// conservative here — the destination must be a reachable
    /// instruction start.
    Unproven,
}

impl SiteKind {
    /// Stable name used in the JSON form.
    pub fn name(&self) -> &'static str {
        match self {
            SiteKind::Jump { .. } => "jump",
            SiteKind::CondJump { .. } => "cond-jump",
            SiteKind::Call { .. } => "call",
            SiteKind::Return => "return",
            SiteKind::Indirect { .. } => "indirect",
            SiteKind::Unproven => "unproven",
        }
    }

    fn tag(&self) -> u8 {
        match self {
            SiteKind::Jump { .. } => 1,
            SiteKind::CondJump { .. } => 2,
            SiteKind::Call { .. } => 3,
            SiteKind::Return => 4,
            SiteKind::Indirect { .. } => 5,
            SiteKind::Unproven => 6,
        }
    }
}

/// Why a reported control-flow log fails replay against an
/// [`AdmissibleEdgeSet`]. Carries the first offending edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CfaViolation {
    /// The edge is not admitted by the static CFG: its source is not a
    /// transfer site, or its destination is outside the site's
    /// admissible set (including a `ret` that disagrees with the
    /// shadow stack).
    InadmissibleEdge {
        /// Index of the offending edge in the log.
        index: usize,
        /// Task-relative source pc.
        from: u32,
        /// Task-relative destination pc.
        to: u32,
    },
    /// An edge from a site the static analysis could not bound lands
    /// somewhere that is not even a reachable instruction start.
    UnprovenSiteViolation {
        /// Index of the offending edge in the log.
        index: usize,
        /// Task-relative source pc (the unproven site).
        from: u32,
        /// Task-relative destination pc.
        to: u32,
    },
}

/// Renders a task-relative endpoint, naming the out-of-region sentinel.
fn fmt_pc(pc: u32) -> String {
    if pc == OUT_OF_REGION {
        "out-of-region".to_string()
    } else {
        format!("{pc:#x}")
    }
}

impl fmt::Display for CfaViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfaViolation::InadmissibleEdge { index, from, to } => write!(
                f,
                "edge {index}: {} -> {} is not admitted by the static CFG",
                fmt_pc(*from),
                fmt_pc(*to)
            ),
            CfaViolation::UnprovenSiteViolation { index, from, to } => write!(
                f,
                "edge {index}: unproven site {from:#x} -> {to:#x} is not a reachable \
                 instruction start"
            ),
        }
    }
}

/// The canonical, serializable admissible-edge set of one task image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissibleEdgeSet {
    /// The image's name (metadata; not part of the canonical bytes).
    pub image_name: String,
    /// Task-relative entry point.
    pub entry: u32,
    /// Length of the text section in bytes.
    pub text_len: u32,
    /// Every reachable instruction start, the universe conservative
    /// replay checks unproven-site destinations against.
    pub instr_pcs: BTreeSet<u32>,
    /// Control-transfer sites by task-relative pc.
    pub sites: BTreeMap<u32, SiteKind>,
    /// Sites whose transfer provably leaves the task (absolute
    /// targets): the only pcs from which the monitor's region-exit
    /// sentinel edge `(pc, OUT_OF_REGION)` is admissible.
    pub external_sites: BTreeSet<u32>,
}

impl AdmissibleEdgeSet {
    /// Extracts the edge set from a recovered CFG and its per-block
    /// dataflow states (as computed by the lint pass).
    pub(crate) fn extract(
        image_name: &str,
        graph: &Cfg,
        entry: u32,
        text_len: u32,
        entry_states: &[RegState],
    ) -> AdmissibleEdgeSet {
        let mut instr_pcs = BTreeSet::new();
        let mut sites = BTreeMap::new();
        let mut external_sites = BTreeSet::new();
        for (block, entry_state) in graph.blocks.iter().zip(entry_states) {
            let mut regs = *entry_state;
            for di in &block.instrs {
                instr_pcs.insert(di.pc);
                match transfer_kind(&di.instr) {
                    TransferKind::Jump { .. } => {
                        // `di.target` is the relocated, validated
                        // intra-task destination; absolute targets
                        // resolve to `None` — the transfer provably
                        // leaves the task, so the site is declared
                        // external and admits only the exit sentinel.
                        match di.target {
                            Some(target) => {
                                sites.insert(di.pc, SiteKind::Jump { target });
                            }
                            None => {
                                external_sites.insert(di.pc);
                            }
                        }
                    }
                    TransferKind::CondJump { .. } => match di.target {
                        Some(target) => {
                            sites.insert(di.pc, SiteKind::CondJump { target });
                        }
                        None => {
                            external_sites.insert(di.pc);
                        }
                    },
                    TransferKind::Call { .. } => match di.target {
                        Some(target) => {
                            sites.insert(
                                di.pc,
                                SiteKind::Call {
                                    target,
                                    ret: di.pc + di.size,
                                },
                            );
                        }
                        None => {
                            external_sites.insert(di.pc);
                        }
                    },
                    TransferKind::Return => {
                        sites.insert(di.pc, SiteKind::Return);
                    }
                    TransferKind::IndirectJump { rs } => {
                        let kind = match regs[rs.index()] {
                            Some(k) if k.relocated => {
                                if k.value.is_multiple_of(4) && k.value < text_len {
                                    SiteKind::Indirect {
                                        targets: vec![k.value],
                                    }
                                } else {
                                    // Provably faults at runtime:
                                    // admits nothing.
                                    continue;
                                }
                            }
                            // Provably absolute: leaves the task — a
                            // declared external site, admitting only
                            // the region-exit sentinel.
                            Some(_) => {
                                external_sites.insert(di.pc);
                                continue;
                            }
                            None => SiteKind::Unproven,
                        };
                        sites.insert(di.pc, kind);
                    }
                    TransferKind::Interrupt | TransferKind::Halt | TransferKind::None => {}
                }
                transfer(&mut regs, di);
            }
        }
        AdmissibleEdgeSet {
            image_name: image_name.to_string(),
            entry,
            text_len,
            instr_pcs,
            sites,
            external_sites,
        }
    }

    /// Number of transfer sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Number of sites the analysis could not bound (conservative-mode
    /// sites).
    pub fn unproven_count(&self) -> usize {
        self.sites
            .values()
            .filter(|k| matches!(k, SiteKind::Unproven))
            .count()
    }

    /// The canonical byte encoding the digest is computed over. Fully
    /// deterministic: maps and sets iterate in address order.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.instr_pcs.len() * 4 + self.sites.len() * 12);
        out.extend_from_slice(b"AES1");
        out.extend_from_slice(&self.entry.to_le_bytes());
        out.extend_from_slice(&self.text_len.to_le_bytes());
        out.extend_from_slice(&(self.instr_pcs.len() as u32).to_le_bytes());
        for &pc in &self.instr_pcs {
            out.extend_from_slice(&pc.to_le_bytes());
        }
        out.extend_from_slice(&(self.sites.len() as u32).to_le_bytes());
        for (&pc, kind) in &self.sites {
            out.extend_from_slice(&pc.to_le_bytes());
            out.push(kind.tag());
            match kind {
                SiteKind::Jump { target } | SiteKind::CondJump { target } => {
                    out.extend_from_slice(&target.to_le_bytes());
                }
                SiteKind::Call { target, ret } => {
                    out.extend_from_slice(&target.to_le_bytes());
                    out.extend_from_slice(&ret.to_le_bytes());
                }
                SiteKind::Return | SiteKind::Unproven => {}
                SiteKind::Indirect { targets } => {
                    out.extend_from_slice(&(targets.len() as u32).to_le_bytes());
                    for t in targets {
                        out.extend_from_slice(&t.to_le_bytes());
                    }
                }
            }
        }
        // Declared external sites travel in a trailing section that is
        // appended only when non-empty, so the digest of every edge set
        // without external transfers is unchanged from the pre-sentinel
        // encoding (fleet provisioning and checked-in exports keep
        // their identities). The section cannot be confused with more
        // site records: the site count above already delimits them.
        if !self.external_sites.is_empty() {
            out.extend_from_slice(b"EXT1");
            out.extend_from_slice(&(self.external_sites.len() as u32).to_le_bytes());
            for &pc in &self.external_sites {
                out.extend_from_slice(&pc.to_le_bytes());
            }
        }
        out
    }

    /// SHA-1 digest of the canonical bytes: the identity the lint
    /// report embeds and the verifier provisions.
    pub fn digest(&self) -> [u8; 20] {
        Sha1::digest(&self.canonical_bytes())
            .try_into()
            .expect("SHA-1 is 20 bytes")
    }

    /// The digest as lowercase hex, as embedded in JSON output.
    pub fn digest_hex(&self) -> String {
        self.digest().iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Replays a raw control-flow log against this set.
    ///
    /// The log is the monitored run's taken edges in order,
    /// task-relative, possibly containing [`OUT_OF_REGION`] sentinel
    /// endpoints. Replay canonically run-length-compresses the stream
    /// and takes the run path ([`AdmissibleEdgeSet::replay_runs`]);
    /// violation indices refer to this raw log.
    ///
    /// # Errors
    ///
    /// The first [`CfaViolation`], with the offending raw log index.
    pub fn replay(&self, log: &[(u32, u32)]) -> Result<(), CfaViolation> {
        self.replay_runs(&tytan_crypto::compress_log(log.iter().copied()))
    }

    /// Replays a canonically run-length-encoded control-flow log.
    ///
    /// Admissibility is decided *per run*, in O(#runs): a repeated
    /// jump, branch, or indirect edge is checked once (its repetition
    /// adds no replay state); a repeated call pushes its return address
    /// as one counted shadow-stack entry; a repeated return pops
    /// counted entries, each of which must match the run's
    /// destination. The shadow stack pairs `call` and `ret` sites, so a
    /// return to anywhere but the dynamically-matching return address
    /// is inadmissible even when that address is some *other* call
    /// site's return — the ROP case a pure edge-set membership check
    /// would miss.
    ///
    /// Sentinel edges are typed here too: a region exit
    /// `(from, OUT_OF_REGION)` is admissible only from a declared
    /// external site, and a re-entry `(OUT_OF_REGION, to)` only onto a
    /// reachable instruction start.
    ///
    /// # Errors
    ///
    /// The first [`CfaViolation`]; `index` is the offending edge's
    /// position in the *raw* (expanded) edge stream the runs encode.
    pub fn replay_runs(&self, runs: &[(u32, u32, u32)]) -> Result<(), CfaViolation> {
        // Compressed shadow stack: (return address, consecutive calls).
        let mut shadow: Vec<(u32, u32)> = Vec::new();
        // Raw index of the current run's first edge.
        let mut base = 0usize;
        for &(from, to, count) in runs {
            if count == 0 {
                continue;
            }
            let index = base;
            base += count as usize;
            let inadmissible = CfaViolation::InadmissibleEdge { index, from, to };
            // Sentinel edges: no site lookup, no shadow effect.
            if to == OUT_OF_REGION {
                if from == OUT_OF_REGION || !self.external_sites.contains(&from) {
                    return Err(inadmissible);
                }
                continue;
            }
            if from == OUT_OF_REGION {
                if !self.instr_pcs.contains(&to) {
                    return Err(inadmissible);
                }
                continue;
            }
            match self.sites.get(&from) {
                None => return Err(inadmissible),
                Some(SiteKind::Jump { target }) | Some(SiteKind::CondJump { target }) => {
                    if to != *target {
                        return Err(inadmissible);
                    }
                }
                Some(SiteKind::Call { target, ret }) => {
                    if to != *target {
                        return Err(inadmissible);
                    }
                    shadow.push((*ret, count));
                }
                Some(SiteKind::Return) => {
                    // Pop `count` return addresses; each must match the
                    // run's destination. Violations attribute the exact
                    // raw index of the first mismatching pop.
                    let mut remaining = count;
                    while remaining > 0 {
                        match shadow.last_mut() {
                            // An unmatched or mismatched return: the log
                            // claims control came back to an address no
                            // tracked call put on the stack.
                            None => {
                                return Err(CfaViolation::InadmissibleEdge {
                                    index: index + (count - remaining) as usize,
                                    from,
                                    to,
                                })
                            }
                            Some((expected, _)) if *expected != to => {
                                return Err(CfaViolation::InadmissibleEdge {
                                    index: index + (count - remaining) as usize,
                                    from,
                                    to,
                                })
                            }
                            Some((_, n)) => {
                                let take = remaining.min(*n);
                                *n -= take;
                                remaining -= take;
                                if *n == 0 {
                                    shadow.pop();
                                }
                            }
                        }
                    }
                }
                Some(SiteKind::Indirect { targets }) => {
                    if !targets.contains(&to) {
                        return Err(inadmissible);
                    }
                }
                Some(SiteKind::Unproven) => {
                    if !self.instr_pcs.contains(&to) {
                        return Err(CfaViolation::UnprovenSiteViolation { index, from, to });
                    }
                }
            }
        }
        Ok(())
    }

    /// Renders the set as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.instr_pcs.len() * 8 + self.sites.len() * 48);
        out.push_str("{\"image\":\"");
        out.push_str(&escape_json_string(&self.image_name));
        out.push_str(&format!(
            "\",\"entry\":{},\"text_len\":{},\"digest\":\"{}\",\"instr_pcs\":[",
            self.entry,
            self.text_len,
            self.digest_hex(),
        ));
        for (i, pc) in self.instr_pcs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&pc.to_string());
        }
        out.push_str("],\"sites\":[");
        for (i, (pc, kind)) in self.sites.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"pc\":{pc},\"kind\":\"{}\"", kind.name()));
            match kind {
                SiteKind::Jump { target } | SiteKind::CondJump { target } => {
                    out.push_str(&format!(",\"target\":{target}"));
                }
                SiteKind::Call { target, ret } => {
                    out.push_str(&format!(",\"target\":{target},\"ret\":{ret}"));
                }
                SiteKind::Return | SiteKind::Unproven => {}
                SiteKind::Indirect { targets } => {
                    out.push_str(",\"targets\":[");
                    for (j, t) in targets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&t.to_string());
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("],\"external_sites\":[");
        for (i, pc) in self.external_sites.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&pc.to_string());
        }
        out.push_str("]}");
        out
    }

    /// Parses the JSON form back into an edge set.
    ///
    /// The embedded `digest` field, when present, is cross-checked
    /// against the digest recomputed from the parsed content, so a
    /// corrupted or hand-edited export cannot silently impersonate the
    /// original.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first structural problem.
    pub fn from_json(input: &str) -> Result<AdmissibleEdgeSet, String> {
        let doc = json::parse(input).map_err(|e| format!("invalid JSON: {e}"))?;
        let image_name = doc
            .get("image")
            .and_then(Value::as_str)
            .ok_or("missing string field `image`")?
            .to_string();
        let entry = field_u32(&doc, "entry")?;
        let text_len = field_u32(&doc, "text_len")?;
        let instr_pcs: BTreeSet<u32> = doc
            .get("instr_pcs")
            .and_then(Value::as_array)
            .ok_or("missing array field `instr_pcs`")?
            .iter()
            .map(value_u32)
            .collect::<Result<_, _>>()?;
        let mut sites = BTreeMap::new();
        for site in doc
            .get("sites")
            .and_then(Value::as_array)
            .ok_or("missing array field `sites`")?
        {
            let pc = field_u32(site, "pc")?;
            let kind = match site.get("kind").and_then(Value::as_str) {
                Some("jump") => SiteKind::Jump {
                    target: field_u32(site, "target")?,
                },
                Some("cond-jump") => SiteKind::CondJump {
                    target: field_u32(site, "target")?,
                },
                Some("call") => SiteKind::Call {
                    target: field_u32(site, "target")?,
                    ret: field_u32(site, "ret")?,
                },
                Some("return") => SiteKind::Return,
                Some("indirect") => SiteKind::Indirect {
                    targets: site
                        .get("targets")
                        .and_then(Value::as_array)
                        .ok_or("indirect site missing array field `targets`")?
                        .iter()
                        .map(value_u32)
                        .collect::<Result<_, _>>()?,
                },
                Some("unproven") => SiteKind::Unproven,
                Some(other) => return Err(format!("unknown site kind `{other}`")),
                None => return Err("site missing string field `kind`".to_string()),
            };
            sites.insert(pc, kind);
        }
        // Optional for compatibility with pre-sentinel exports, which
        // simply have no declared external sites.
        let external_sites: BTreeSet<u32> = match doc.get("external_sites") {
            None => BTreeSet::new(),
            Some(v) => v
                .as_array()
                .ok_or("field `external_sites` is not an array")?
                .iter()
                .map(value_u32)
                .collect::<Result<_, _>>()?,
        };
        let set = AdmissibleEdgeSet {
            image_name,
            entry,
            text_len,
            instr_pcs,
            sites,
            external_sites,
        };
        if let Some(claimed) = doc.get("digest").and_then(Value::as_str) {
            let actual = set.digest_hex();
            if claimed != actual {
                return Err(format!(
                    "digest mismatch: file claims {claimed}, content hashes to {actual}"
                ));
            }
        }
        Ok(set)
    }
}

fn field_u32(value: &Value, key: &str) -> Result<u32, String> {
    value
        .get(key)
        .ok_or(format!("missing number field `{key}`"))
        .and_then(value_u32)
}

fn value_u32(value: &Value) -> Result<u32, String> {
    let n = value
        .as_number()
        .ok_or_else(|| format!("expected a number, got {}", value.type_name()))?;
    if n < 0.0 || n > u32::MAX as f64 || n.fract() != 0.0 {
        return Err(format!("number {n} is not a u32"));
    }
    Ok(n as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admissible_edges;
    use sp32::asm::assemble;
    use tytan_image::TaskImage;

    fn edge_set(source: &str) -> AdmissibleEdgeSet {
        let program = assemble(source, 0).expect("assembles");
        let image = TaskImage::from_program("edgee", &program, 256, true).expect("valid image");
        admissible_edges(&image)
    }

    #[test]
    fn direct_jump_admits_only_its_target() {
        let set = edge_set("main:\nspin:\n jmp spin\n");
        assert_eq!(set.site_count(), 1);
        assert_eq!(set.replay(&[(0, 0), (0, 0)]), Ok(()));
        assert!(matches!(
            set.replay(&[(0, 4)]),
            Err(CfaViolation::InadmissibleEdge {
                index: 0,
                from: 0,
                to: 4
            })
        ));
    }

    #[test]
    fn cond_jump_taken_edge_only() {
        // Layout: cmpi at 0 (4B), jz at 4 (8B, extension word), addi at
        // 12 (4B), done at 16 — the taken edge is 4 -> 16.
        let set = edge_set("main:\n cmpi r0, 0\n jz done\n addi r0, -1\ndone:\n hlt\n");
        let jz = 4;
        assert_eq!(set.replay(&[(jz, 16)]), Ok(()));
        // Fall-through is never logged, so an explicit fall-through
        // "edge" in a log is inadmissible.
        assert!(set.replay(&[(jz, 12)]).is_err());
    }

    #[test]
    fn shadow_stack_catches_cross_site_return() {
        // Two call sites into the same helper: a ret must come back to
        // the *dynamically matching* return address, not just any
        // call's return site.
        let set = edge_set("main:\n call helper\n call helper\n hlt\nhelper:\n ret\n");
        let (c1, c2, helper) = (0u32, 8u32, 20u32);
        let ret = helper;
        // Honest: each return matches its own call.
        assert_eq!(
            set.replay(&[(c1, helper), (ret, c1 + 8), (c2, helper), (ret, c2 + 8)]),
            Ok(())
        );
        // ROP shape: the first return detours to the second call's
        // return address — a statically-valid edge in membership terms,
        // caught only by the shadow stack.
        assert!(matches!(
            set.replay(&[(c1, helper), (ret, c2 + 8)]),
            Err(CfaViolation::InadmissibleEdge { index: 1, .. })
        ));
        // A return with no call on the stack at all.
        assert!(set.replay(&[(ret, c1 + 8)]).is_err());
    }

    #[test]
    fn bounded_indirect_admits_exactly_the_dataflow_targets() {
        let set = edge_set("main:\n movi r1, main\n jmpr r1\n");
        let jmpr = 8;
        assert_eq!(
            set.sites.get(&jmpr),
            Some(&SiteKind::Indirect { targets: vec![0] })
        );
        assert_eq!(set.replay(&[(jmpr, 0)]), Ok(()));
        assert!(set.replay(&[(jmpr, 4)]).is_err());
    }

    #[test]
    fn unbounded_indirect_is_unproven_and_conservative() {
        // The jump register comes out of memory: unknown to the
        // dataflow.
        let set =
            edge_set("main:\n movi r1, table\n ldw r2, [r1]\n jmpr r2\ntable:\n .word main\n");
        let jmpr = 12;
        assert_eq!(set.sites.get(&jmpr), Some(&SiteKind::Unproven));
        assert_eq!(set.unproven_count(), 1);
        // Conservative mode: any reachable instruction start passes...
        assert_eq!(set.replay(&[(jmpr, 0)]), Ok(()));
        // ...but a mid-instruction or data destination is a typed
        // unproven-site violation.
        assert!(matches!(
            set.replay(&[(jmpr, 2)]),
            Err(CfaViolation::UnprovenSiteViolation { index: 0, .. })
        ));
    }

    #[test]
    fn edge_from_a_non_transfer_site_is_inadmissible() {
        let set = edge_set("main:\n nop\n hlt\n");
        assert!(matches!(
            set.replay(&[(0, 4)]),
            Err(CfaViolation::InadmissibleEdge { index: 0, .. })
        ));
    }

    #[test]
    fn run_replay_matches_raw_replay_with_raw_indices() {
        let set = edge_set("main:\n call helper\n call helper\n hlt\nhelper:\n ret\n");
        let (c1, c2, helper) = (0u32, 8u32, 20u32);
        // Honest raw log with a repeated call/return pair, replayed
        // both raw and as canonical runs.
        let log = [
            (c1, helper),
            (helper, c1 + 8),
            (c2, helper),
            (helper, c2 + 8),
        ];
        assert_eq!(set.replay(&log), Ok(()));
        assert_eq!(
            set.replay_runs(&tytan_crypto::compress_log(log.iter().copied())),
            Ok(())
        );
        // A counted call run balances a counted return run of the same
        // shape (recursion-like): 3 calls from c1, then 3 returns each
        // to c1's return address... the first return is admissible, the
        // second pops a matching entry too — all three match.
        let runs = [(c1, helper, 3), (helper, c1 + 8, 3)];
        assert_eq!(set.replay_runs(&runs), Ok(()));
        // A return run whose *second* pop mismatches attributes the
        // exact raw index inside the run.
        let runs = [(c1, helper, 1), (c2, helper, 1), (helper, c2 + 8, 2)];
        assert!(matches!(
            set.replay_runs(&runs),
            Err(CfaViolation::InadmissibleEdge { index: 3, .. })
        ));
        // Underflow mid-run: 2 calls, a 3-count return run fails on its
        // third pop (raw index 2 + 2).
        let runs = [(c1, helper, 2), (helper, c1 + 8, 3)];
        assert!(matches!(
            set.replay_runs(&runs),
            Err(CfaViolation::InadmissibleEdge { index: 4, .. })
        ));
    }

    #[test]
    fn region_exit_sentinels_are_typed_by_declared_external_sites() {
        let mut set = edge_set("main:\nspin:\n jmp spin\n");
        // Undeclared exit: inadmissible, attributed to the raw index.
        assert!(matches!(
            set.replay(&[(0, 0), (0, OUT_OF_REGION)]),
            Err(CfaViolation::InadmissibleEdge {
                index: 1,
                from: 0,
                to: OUT_OF_REGION
            })
        ));
        // Declare pc 0 external: the exit sentinel becomes admissible,
        // and a re-entry onto a reachable instruction start does too.
        set.external_sites.insert(0);
        assert_eq!(
            set.replay(&[(0, OUT_OF_REGION), (OUT_OF_REGION, 0)]),
            Ok(())
        );
        // Re-entry onto a non-instruction is still inadmissible.
        assert!(matches!(
            set.replay(&[(0, OUT_OF_REGION), (OUT_OF_REGION, 2)]),
            Err(CfaViolation::InadmissibleEdge { index: 1, .. })
        ));
        // An intra-task edge claimed *from* a declared external site is
        // not admitted either — external sites admit only the exit.
        assert!(set.replay(&[(0, 4)]).is_err());
        // Both endpoints out-of-region can never be recorded honestly.
        assert!(set.replay(&[(OUT_OF_REGION, OUT_OF_REGION)]).is_err());
    }

    #[test]
    fn external_sites_extend_the_digest_only_when_present() {
        let set = edge_set("main:\nspin:\n jmp spin\n");
        assert!(set.external_sites.is_empty());
        let baseline = set.canonical_bytes();
        assert!(!baseline.windows(4).any(|w| w == b"EXT1"));
        let mut declared = set.clone();
        declared.external_sites.insert(0);
        assert!(declared.canonical_bytes().len() > baseline.len());
        assert_ne!(declared.digest(), set.digest());
        // And the JSON form round-trips the declaration.
        let parsed = AdmissibleEdgeSet::from_json(&declared.to_json()).expect("parses");
        assert_eq!(parsed, declared);
    }

    #[test]
    fn digest_is_content_addressed() {
        let a = edge_set("main:\nspin:\n jmp spin\n");
        let b = edge_set("main:\nspin:\n jmp spin\n");
        assert_eq!(a.digest(), b.digest());
        let c = edge_set("main:\n nop\nspin:\n jmp spin\n");
        assert_ne!(a.digest(), c.digest());
        assert_eq!(a.digest_hex().len(), 40);
    }

    #[test]
    fn json_round_trips_identically() {
        let set = edge_set(
            "main:\n call helper\n cmpi r0, 0\n jz out\n movi r1, main\n jmpr r1\nout:\n \
             hlt\nhelper:\n ret\n",
        );
        let parsed = AdmissibleEdgeSet::from_json(&set.to_json()).expect("parses");
        assert_eq!(parsed, set);
        assert_eq!(parsed.digest(), set.digest());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_site() -> impl Strategy<Value = (u32, SiteKind)> {
            (
                0u32..2048,
                0u8..6,
                0u32..2048,
                0u32..2048,
                proptest::collection::vec(0u32..2048, 0..4),
            )
                .prop_map(|(pc, tag, a, b, mut targets)| {
                    let kind = match tag {
                        0 => SiteKind::Jump { target: a },
                        1 => SiteKind::CondJump { target: a },
                        2 => SiteKind::Call { target: a, ret: b },
                        3 => SiteKind::Return,
                        4 => {
                            targets.sort_unstable();
                            targets.dedup();
                            SiteKind::Indirect { targets }
                        }
                        _ => SiteKind::Unproven,
                    };
                    (pc, kind)
                })
        }

        proptest! {
            #[test]
            fn prop_json_export_parses_to_identical_edge_set(
                entry in 0u32..1024,
                text_len in 0u32..4096,
                pcs in proptest::collection::vec(0u32..4096, 0..32),
                sites in proptest::collection::vec(arb_site(), 0..16),
                externals in proptest::collection::vec(0u32..4096, 0..8),
            ) {
                let set = AdmissibleEdgeSet {
                    image_name: "prop-image \"quoted\"".to_string(),
                    entry,
                    text_len,
                    instr_pcs: pcs.into_iter().collect(),
                    sites: sites.into_iter().collect(),
                    external_sites: externals.into_iter().collect(),
                };
                let parsed = AdmissibleEdgeSet::from_json(&set.to_json())
                    .expect("export parses");
                prop_assert_eq!(&parsed, &set);
                prop_assert_eq!(parsed.digest(), set.digest());
            }
        }
    }

    #[test]
    fn tampered_json_digest_is_rejected() {
        let set = edge_set("main:\nspin:\n jmp spin\n");
        // Retarget the jump without refreshing the embedded digest.
        let tampered = set.to_json().replace("\"target\":0", "\"target\":4");
        assert_ne!(tampered, set.to_json());
        let err = AdmissibleEdgeSet::from_json(&tampered).expect_err("tamper detected");
        assert!(err.contains("digest mismatch"), "{err}");
    }
}
