//! The diagnostic report model: findings, severities, per-image stats,
//! and the human / JSON emitters.
//!
//! The JSON emitter reuses [`tytan_trace::chrome::escape_json_string`] so
//! the crate stays dependency-free, and its output round-trips through
//! [`tytan_trace::json::parse`] (covered by tests).

use std::fmt;

use eampu::AccessKind;
use sp32::{DecodeError, Instr};
use tytan_trace::chrome::escape_json_string;

/// How serious a finding is.
///
/// `Error` findings make an image unloadable under
/// [`LoadJob::with_verification`](../tytan/loader/struct.LoadJob.html);
/// `Warning` findings fail CI under `sp32-lint --deny warnings`; `Info`
/// findings (the `Unproven` class) never fail anything by default — they
/// mark the soundness boundary of the static analysis, not a defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory; includes every `Unproven` site.
    Info,
    /// Suspicious but not provably wrong (e.g. a cycle-budget overrun).
    Warning,
    /// Provably violates the image format or the EA-MPU policy.
    Error,
}

impl Severity {
    /// Lower-case name, as used in JSON output and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a finding is about. Each kind carries the statically-derived
/// facts that justify it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FindingKind {
    /// A reachable instruction word failed to decode.
    Malformed {
        /// The decoder's complaint.
        error: DecodeError,
    },
    /// A reachable instruction extends past the end of the text section
    /// (or sits at a misaligned pc).
    TruncatedInstruction,
    /// Straight-line execution runs off the end of the text section.
    FallsOffText,
    /// A statically-resolved load reads outside the task and every
    /// declared window.
    IllegalLoad {
        /// Resolved effective address (task-relative or absolute).
        addr: u32,
        /// Access size in bytes.
        size: u32,
    },
    /// A statically-resolved store writes outside the task's writable
    /// range and every declared window.
    IllegalStore {
        /// Resolved effective address (task-relative or absolute).
        addr: u32,
        /// Access size in bytes.
        size: u32,
    },
    /// A statically-resolved store targets the task's own text section.
    StoreToText {
        /// Resolved task-relative address.
        addr: u32,
    },
    /// A relocated branch target does not name a valid instruction
    /// address inside the task's text section.
    IllegalTransfer {
        /// The task-relative target.
        target: u32,
    },
    /// An absolute transfer lands inside a declared peer's code region
    /// but not on its declared entry point — exactly the property the
    /// EA-MPU enforces dynamically.
    MidRegionCall {
        /// Where the transfer lands.
        target: u32,
        /// The peer's declared entry point.
        expected_entry: u32,
    },
    /// An absolute transfer target matches no declared peer.
    UnknownTransfer {
        /// The absolute target address.
        target: u32,
    },
    /// A register-indirect jump; the target cannot be resolved
    /// statically.
    UnprovenIndirectJump,
    /// A load/store through a register whose value could not be
    /// resolved statically.
    UnprovenAccess {
        /// Whether the unresolved access reads or writes.
        kind: AccessKind,
    },
    /// Worst-case stack depth (plus the interrupt-frame reserve)
    /// exceeds the image's declared stack length.
    StackOverflow {
        /// Worst-case depth over the CFG, in bytes.
        worst_depth: u32,
        /// Interrupt-frame reserve added on top.
        reserve: u32,
        /// The image's declared stack length.
        stack_len: u32,
    },
    /// Stack depth grows without bound (e.g. a push or call loop with
    /// no balancing pop).
    StackUnbounded,
    /// A basic block's straight-line cycle cost exceeds the configured
    /// real-time budget.
    CycleBudgetExceeded {
        /// The block's worst-case cycle cost.
        cycles: u64,
        /// The configured budget.
        budget: u64,
    },
}

impl FindingKind {
    /// Stable kebab-case identifier, used as the JSON `kind` field.
    pub fn slug(&self) -> &'static str {
        match self {
            FindingKind::Malformed { .. } => "malformed",
            FindingKind::TruncatedInstruction => "truncated-instruction",
            FindingKind::FallsOffText => "falls-off-text",
            FindingKind::IllegalLoad { .. } => "illegal-load",
            FindingKind::IllegalStore { .. } => "illegal-store",
            FindingKind::StoreToText { .. } => "store-to-text",
            FindingKind::IllegalTransfer { .. } => "illegal-transfer",
            FindingKind::MidRegionCall { .. } => "mid-region-call",
            FindingKind::UnknownTransfer { .. } => "unknown-transfer",
            FindingKind::UnprovenIndirectJump => "unproven-indirect-jump",
            FindingKind::UnprovenAccess { .. } => "unproven-access",
            FindingKind::StackOverflow { .. } => "stack-overflow",
            FindingKind::StackUnbounded => "stack-unbounded",
            FindingKind::CycleBudgetExceeded { .. } => "cycle-budget-exceeded",
        }
    }

    /// The severity this kind of finding carries.
    pub fn severity(&self) -> Severity {
        match self {
            FindingKind::Malformed { .. }
            | FindingKind::TruncatedInstruction
            | FindingKind::FallsOffText
            | FindingKind::IllegalLoad { .. }
            | FindingKind::IllegalStore { .. }
            | FindingKind::StoreToText { .. }
            | FindingKind::IllegalTransfer { .. }
            | FindingKind::MidRegionCall { .. }
            | FindingKind::UnknownTransfer { .. }
            | FindingKind::StackOverflow { .. }
            | FindingKind::StackUnbounded => Severity::Error,
            FindingKind::CycleBudgetExceeded { .. } => Severity::Warning,
            FindingKind::UnprovenIndirectJump | FindingKind::UnprovenAccess { .. } => {
                Severity::Info
            }
        }
    }

    /// Whether this finding marks a site the analysis could not decide
    /// (as opposed to a proven violation).
    pub fn is_unproven(&self) -> bool {
        matches!(
            self,
            FindingKind::UnprovenIndirectJump | FindingKind::UnprovenAccess { .. }
        )
    }
}

/// One diagnostic: a severity, the kind with its facts, the pc it
/// anchors to, the decoded instruction (when there is one), and the
/// policy rule slot it was checked against (when one applied).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// How serious the finding is.
    pub severity: Severity,
    /// What the finding is about.
    pub kind: FindingKind,
    /// Task-relative pc of the offending site (block start for
    /// whole-block findings such as cycle-budget overruns).
    pub pc: u32,
    /// The decoded instruction at `pc`, when decoding succeeded.
    pub instr: Option<Instr>,
    /// Index into the policy's rule table (windows first, then peers),
    /// when the finding was judged against a specific rule.
    pub rule_slot: Option<usize>,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// Builds a finding with the kind's default severity.
    pub fn new(kind: FindingKind, pc: u32, instr: Option<Instr>, message: String) -> Finding {
        Finding {
            severity: kind.severity(),
            kind,
            pc,
            instr,
            rule_slot: None,
            message,
        }
    }

    /// Attaches the policy rule slot the finding was judged against.
    pub fn with_rule_slot(mut self, slot: usize) -> Finding {
        self.rule_slot = Some(slot);
        self
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {:#06x}: ", self.severity, self.pc)?;
        if let Some(instr) = &self.instr {
            write!(f, "`{instr}`: ")?;
        }
        write!(f, "{} [{}", self.message, self.kind.slug())?;
        if let Some(slot) = self.rule_slot {
            write!(f, ", rule slot {slot}")?;
        }
        f.write_str("]")
    }
}

/// Aggregate facts about the analyzed image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LintStats {
    /// Distinct reachable instructions decoded.
    pub instructions: usize,
    /// Basic blocks recovered.
    pub blocks: usize,
    /// Worst-case stack depth over the CFG, in bytes (excluding the
    /// interrupt-frame reserve); `None` if the depth is unbounded.
    pub worst_stack_depth: Option<u32>,
    /// Largest straight-line cycle cost of any basic block.
    pub worst_block_cycles: u64,
    /// Number of `Unproven` findings (sites the analysis gave up on).
    pub unproven: usize,
}

/// The three-way outcome of a lint run, collapsed for consumers that
/// cross-check static verdicts against dynamic behaviour (the fuzz
/// plane's lint-vs-execution oracle).
///
/// The contract each variant carries:
///
/// - [`Verdict::Reject`]: a loader configured with
///   [`LoadJob::with_verification`](../tytan/loader/struct.LoadJob.html)
///   must refuse the image before allocating anything, at zero guest
///   cycles.
/// - [`Verdict::CleanProven`]: the analysis decided *every* site, so a
///   sandboxed execution under the same policy must never raise an
///   EA-MPU fault.
/// - [`Verdict::CleanUnproven`]: no proven violation, but undecided
///   sites (or warnings) remain — runtime denials are possible and
///   declared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// At least one proven `Error` finding: the image must not load.
    Reject,
    /// No findings at all: every reachable site was proven safe.
    CleanProven,
    /// No errors, but warnings or unproven sites remain.
    CleanUnproven,
}

impl Verdict {
    /// Lower-case name, as used in JSON output and logs.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Reject => "reject",
            Verdict::CleanProven => "clean-proven",
            Verdict::CleanUnproven => "clean-unproven",
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The result of linting one task image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    /// The image's name, from its TTIF header.
    pub image_name: String,
    /// Every finding, ordered by pc then severity.
    pub findings: Vec<Finding>,
    /// Aggregate facts about the image.
    pub stats: LintStats,
    /// Lowercase-hex SHA-1 of the image's canonical
    /// [`AdmissibleEdgeSet`](crate::AdmissibleEdgeSet): binds this lint
    /// run to the exact edge set a control-flow-attestation verifier
    /// must be provisioned with.
    pub edge_digest: String,
}

impl LintReport {
    /// Number of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// The most severe finding level present, if any.
    pub fn worst(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// Whether the report contains a finding at or above `deny`.
    pub fn rejects_at(&self, deny: Severity) -> bool {
        self.worst().is_some_and(|w| w >= deny)
    }

    /// Whether the analysis decided every site and found nothing — no
    /// errors, no warnings, and no unproven sites. Only such reports
    /// license the "never faults at runtime" claim (see [`Verdict`]).
    pub fn is_fully_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Collapses the report into the three-way [`Verdict`] the
    /// lint-vs-execution cross-check keys on.
    pub fn verdict(&self) -> Verdict {
        if self.rejects_at(Severity::Error) {
            Verdict::Reject
        } else if self.is_fully_clean() {
            Verdict::CleanProven
        } else {
            Verdict::CleanUnproven
        }
    }

    /// Renders the report as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.findings.len() * 128);
        out.push_str("{\"image\":\"");
        out.push_str(&escape_json_string(&self.image_name));
        out.push_str("\",\"edge_digest\":\"");
        out.push_str(&escape_json_string(&self.edge_digest));
        out.push_str("\",\"stats\":{");
        out.push_str(&format!(
            "\"instructions\":{},\"blocks\":{},\"worst_stack_depth\":{},\
             \"worst_block_cycles\":{},\"unproven\":{}",
            self.stats.instructions,
            self.stats.blocks,
            match self.stats.worst_stack_depth {
                Some(d) => d.to_string(),
                None => "null".to_string(),
            },
            self.stats.worst_block_cycles,
            self.stats.unproven,
        ));
        out.push_str("},\"findings\":[");
        for (i, finding) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"severity\":\"{}\",\"kind\":\"{}\",\"pc\":{},\"instr\":{},\
                 \"rule_slot\":{},\"message\":\"{}\"}}",
                finding.severity,
                finding.kind.slug(),
                finding.pc,
                match &finding.instr {
                    Some(instr) => format!("\"{}\"", escape_json_string(&instr.to_string())),
                    None => "null".to_string(),
                },
                match finding.rule_slot {
                    Some(slot) => slot.to_string(),
                    None => "null".to_string(),
                },
                escape_json_string(&finding.message),
            ));
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} instruction(s), {} block(s), worst stack {}, worst block {} cycle(s)",
            self.image_name,
            self.stats.instructions,
            self.stats.blocks,
            match self.stats.worst_stack_depth {
                Some(d) => format!("{d} byte(s)"),
                None => "unbounded".to_string(),
            },
            self.stats.worst_block_cycles,
        )?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        write!(
            f,
            "  {} error(s), {} warning(s), {} unproven site(s)",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.stats.unproven,
        )
    }
}
