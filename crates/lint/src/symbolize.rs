//! Function-level symbolization of a task image's text section.
//!
//! TTIF images carry no symbol table — the only names available at
//! runtime are the image name and its entry point. The profiler needs
//! more: flamegraphs by task alone would collapse every hot loop into
//! one bucket. This module reuses the verifier's CFG recovery
//! ([`crate::cfg::recover`]) to derive a *function table*: the entry
//! point plus every `call` target is a function start, and a function
//! extends to the next start (or end of text). Names are synthesized —
//! `entry` for the image entry, `fn_0x{offset:x}` elsewhere — which is
//! stable across runs (addresses are task-relative) and unambiguous
//! within a task.
//!
//! Unreached text (data tables, padding, dead code) stays unclaimed by
//! design: the table covers addresses between function starts, so an EIP
//! inside embedded data still maps to the function whose address range
//! contains it — which is exactly how a sampling symbolizer would see it.

use std::collections::BTreeSet;

use crate::cfg::{self, EdgeKind};
use tytan_image::TaskImage;

/// One synthesized function symbol, in task-relative byte offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncSym {
    /// First byte of the function (a CFG-recovered function start).
    pub start: u32,
    /// One past the last byte covered by this symbol (the next function
    /// start, or the end of text for the last function).
    pub end: u32,
    /// Synthesized name: `entry` or `fn_0x{start:x}`.
    pub name: String,
}

impl FuncSym {
    /// Whether `offset` (task-relative) falls inside this symbol.
    pub fn contains(&self, offset: u32) -> bool {
        self.start <= offset && offset < self.end
    }
}

/// Recovers the function table of `text`: `entry` plus every
/// CFG-recovered `call` target, each spanning to the next function
/// start. Offsets before the first function start (possible when `entry`
/// is not at offset 0) are not covered by any symbol.
pub fn function_table(text: &[u8], entry: u32, reloc_sites: &BTreeSet<u32>) -> Vec<FuncSym> {
    let recovered = cfg::recover(text, entry, reloc_sites);
    let mut starts: BTreeSet<u32> = BTreeSet::new();
    starts.insert(entry);
    for block in &recovered.blocks {
        for edge in &block.edges {
            if edge.kind == EdgeKind::Call {
                starts.insert(edge.to);
            }
        }
    }
    let text_len = text.len() as u32;
    let starts: Vec<u32> = starts.into_iter().collect();
    starts
        .iter()
        .enumerate()
        .map(|(i, &start)| {
            let end = starts.get(i + 1).copied().unwrap_or(text_len).max(start);
            FuncSym {
                start,
                end,
                name: if start == entry {
                    "entry".to_string()
                } else {
                    format!("fn_0x{start:x}")
                },
            }
        })
        .collect()
}

/// [`function_table`] over a loaded image's text, entry, and relocation
/// table — the symbolization input the platform hands the profiler at
/// secure-load time.
pub fn image_functions(image: &TaskImage) -> Vec<FuncSym> {
    let relocs: BTreeSet<u32> = image.relocs().iter().copied().collect();
    function_table(image.text(), image.entry_offset(), &relocs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp32::asm::assemble;

    fn table(source: &str) -> (Vec<FuncSym>, sp32::asm::Program) {
        let program = assemble(source, 0).expect("assembles");
        let relocs: BTreeSet<u32> = program.reloc_sites.iter().copied().collect();
        let table = function_table(&program.bytes, program.symbol("main").unwrap(), &relocs);
        (table, program)
    }

    #[test]
    fn entry_only_covers_whole_text() {
        let (t, _) = table("main:\n nop\n nop\n hlt\n");
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].name, "entry");
        assert_eq!((t[0].start, t[0].end), (0, 12));
    }

    #[test]
    fn call_targets_become_functions_with_tight_extents() {
        let src = "main:\n call helper\n call second\n hlt\n\
                   helper:\n nop\n ret\n\
                   second:\n ret\n";
        let (t, p) = table(src);
        assert_eq!(t.len(), 3);
        let helper = p.symbol("helper").unwrap();
        let second = p.symbol("second").unwrap();
        assert_eq!(t[0].name, "entry");
        assert_eq!(t[0].end, helper, "entry ends where helper starts");
        assert_eq!(
            t[1],
            FuncSym {
                start: helper,
                end: second,
                name: format!("fn_0x{helper:x}"),
            }
        );
        assert_eq!(t[2].start, second);
        assert_eq!(t[2].end, p.bytes.len() as u32);
        // Every text offset at or past entry resolves to exactly one symbol.
        for off in (0..p.bytes.len() as u32).step_by(4) {
            assert_eq!(
                t.iter().filter(|f| f.contains(off)).count(),
                1,
                "offset {off}"
            );
        }
    }

    #[test]
    fn embedded_data_is_claimed_by_the_surrounding_function() {
        // The pointer table inside text belongs to `entry`'s address range.
        let src = "main:\n jmp end\ntable:\n .word main, end\nend:\n hlt\n";
        let (t, p) = table(src);
        assert_eq!(t.len(), 1);
        let data_off = p.symbol("table").unwrap();
        assert!(t[0].contains(data_off));
    }
}
