//! End-to-end tests for the `sp32-lint` binary on crafted TTIF files:
//! the acceptance images (a store outside the task's data region, a
//! call into a secure peer at a non-entry offset), a clean control, and
//! corrupt files that must be rejected gracefully.

use std::path::PathBuf;
use std::process::Command;

use sp32::asm::assemble;
use tytan_image::TaskImage;

fn write_image(name: &str, image: &TaskImage) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("sp32-lint-test-{}-{name}.ttif", std::process::id()));
    std::fs::write(&path, image.to_bytes()).expect("write image");
    path
}

fn lint(args: &[&str]) -> (i32, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_sp32-lint"))
        .args(args)
        .output()
        .expect("run sp32-lint");
    (
        output.status.code().expect("exit code"),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

fn image_from(source: &str, stack_len: u32) -> TaskImage {
    let program = assemble(source, 0).expect("assembles");
    TaskImage::from_program("crafted", &program, stack_len, true).expect("valid image")
}

#[test]
fn rejects_store_outside_data_region() {
    let image = image_from("main:\n movi r1, 0xf0000000\n stw [r1], r2\n hlt\n", 256);
    let path = write_image("oob-store", &image);
    let (code, stdout, _) = lint(&[path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("illegal-store"), "{stdout}");
}

#[test]
fn allow_window_makes_mmio_store_clean() {
    let image = image_from("main:\n movi r1, 0xf0000000\n stw [r1], r2\n hlt\n", 256);
    let path = write_image("mmio-store", &image);
    let (code, stdout, _) = lint(&[
        "--deny",
        "warnings",
        "--allow",
        "0xf0000000:0x400",
        path.to_str().unwrap(),
    ]);
    std::fs::remove_file(&path).ok();
    assert_eq!(code, 0, "{stdout}");
}

#[test]
fn rejects_call_to_peer_non_entry_offset() {
    let image = image_from("main:\n call 0x8010\n hlt\n", 256);
    let path = write_image("mid-call", &image);
    let (code, stdout, _) = lint(&["--peer", "0x8000:0x100:0x8000", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("mid-region-call"), "{stdout}");
}

#[test]
fn accepts_call_to_declared_peer_entry() {
    let image = image_from("main:\n call 0x8000\n hlt\n", 256);
    let path = write_image("entry-call", &image);
    let (code, stdout, _) = lint(&[
        "--deny",
        "warnings",
        "--peer",
        "0x8000:0x100:0x8000",
        path.to_str().unwrap(),
    ]);
    std::fs::remove_file(&path).ok();
    assert_eq!(code, 0, "{stdout}");
}

#[test]
fn clean_image_passes_deny_warnings_with_json() {
    let image = image_from("main:\nspin:\n jmp spin\n", 256);
    let path = write_image("clean", &image);
    let (code, stdout, _) = lint(&["--deny", "warnings", "--json", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(code, 0, "{stdout}");
    let doc = tytan_trace::json::parse(stdout.trim()).expect("valid JSON");
    let reports = doc.as_array().expect("array of reports");
    assert_eq!(reports.len(), 1);
    assert_eq!(
        reports[0]
            .get("findings")
            .and_then(|f| f.as_array())
            .map(Vec::len),
        Some(0)
    );
}

#[test]
fn corrupt_file_is_rejected_without_panicking() {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "sp32-lint-test-{}-garbage.ttif",
        std::process::id()
    ));
    std::fs::write(&path, b"TTIF but not really").expect("write garbage");
    let (code, _, stderr) = lint(&[path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("not a valid task image"), "{stderr}");
}

#[test]
fn truncated_real_image_is_rejected_without_panicking() {
    let image = image_from("main:\n movi r1, main\n jmp main\n", 256);
    let bytes = image.to_bytes();
    let mut path = std::env::temp_dir();
    path.push(format!(
        "sp32-lint-test-{}-truncated.ttif",
        std::process::id()
    ));
    std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("write truncated");
    let (code, _, stderr) = lint(&[path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(code, 1, "{stderr}");
}

#[test]
fn missing_file_is_a_usage_error() {
    let (code, _, stderr) = lint(&["/nonexistent/no-such-image.ttif"]);
    assert_eq!(code, 2, "{stderr}");
}

#[test]
fn bad_flags_are_usage_errors() {
    for args in [
        &["--deny", "everything", "x.ttif"][..],
        &["--allow", "nonsense", "x.ttif"][..],
        &["--peer", "1:2", "x.ttif"][..],
        &["--wat", "x.ttif"][..],
        &[][..],
    ] {
        let (code, _, _) = lint(args);
        assert_eq!(code, 2, "args {args:?}");
    }
}
