//! Assembler ↔ disassembler integration: listings re-assemble to
//! identical bytes (the tool chain's fixed point).

use proptest::prelude::*;
use sp32::asm::assemble;
use sp32::disasm::disassemble;

/// A generator for random but valid assembly programs.
fn arb_source() -> impl Strategy<Value = String> {
    let line = prop_oneof![
        Just("nop".to_string()),
        (0u32..8, 0u32..8).prop_map(|(a, b)| format!("mov r{a}, r{b}")),
        (0u32..8, any::<u16>()).prop_map(|(r, v)| format!("movi r{r}, {v}")),
        (0u32..8, 0u32..8).prop_map(|(a, b)| format!("add r{a}, r{b}")),
        (0u32..8, 0u32..8).prop_map(|(a, b)| format!("xor r{a}, r{b}")),
        (0u32..8, -64i32..64).prop_map(|(r, d)| format!("ldw r{r}, [r0{d:+}]")),
        (0u32..8, -64i32..64).prop_map(|(r, d)| format!("stw [r0{d:+}], r{r}")),
        (0u32..8).prop_map(|r| format!("push r{r}")),
        (0u32..8).prop_map(|r| format!("pop r{r}")),
        Just("cmpi r1, 5".to_string()),
        Just("sti".to_string()),
    ];
    proptest::collection::vec(line, 1..32).prop_map(|lines| {
        let mut src = String::from("main:\n");
        for l in lines {
            src.push(' ');
            src.push_str(&l);
            src.push('\n');
        }
        src.push_str(" hlt\n");
        src
    })
}

proptest! {
    #[test]
    fn disassembly_reassembles_to_identical_bytes(source in arb_source(), base in 0u32..0x1000) {
        let base = base & !3;
        let program = assemble(&source, base).unwrap();
        let lines = disassemble(&program.bytes, base).unwrap();
        // Re-render each decoded instruction as assembly and re-assemble.
        let mut rendered = String::new();
        for line in &lines {
            rendered.push_str(&line.instr.to_string());
            rendered.push('\n');
        }
        let reassembled = assemble(&rendered, base).unwrap();
        prop_assert_eq!(reassembled.bytes, program.bytes);
    }

    #[test]
    fn assembled_length_matches_symbol_arithmetic(source in arb_source()) {
        let p = assemble(&source, 0x100).unwrap();
        // `main` is the first label; total size is consistent with the
        // byte vector.
        prop_assert_eq!(p.symbol("main"), Some(0x100));
        prop_assert!(p.bytes.len().is_multiple_of(4));
    }
}
