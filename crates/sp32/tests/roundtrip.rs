//! Assembler ↔ disassembler integration: listings re-assemble to
//! identical bytes (the tool chain's fixed point).

use proptest::prelude::*;
use sp32::asm::assemble;
use sp32::disasm::disassemble;
use sp32::{encode, Cond, Instr, Reg};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u32..8).prop_map(|i| Reg::from_index(i).unwrap())
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Z),
        Just(Cond::Nz),
        Just(Cond::Lt),
        Just(Cond::Ge),
        Just(Cond::B),
        Just(Cond::Ae),
    ]
}

/// All 31 instruction forms with arbitrary operands, as [`Instr`] values
/// (rendered through `Display` for the assembler-level round trip).
fn arb_full_instr() -> impl Strategy<Value = Instr> {
    let rr =
        |make: fn(Reg, Reg) -> Instr| (arb_reg(), arb_reg()).prop_map(move |(a, b)| make(a, b));
    // The assembler parses `[rN-32768]` as minus-then-magnitude, so
    // i16::MIN is not expressible in listing syntax; stay one short.
    let mem = |make: fn(Reg, Reg, i16) -> Instr| {
        (arb_reg(), arb_reg(), -32767i32..32768).prop_map(move |(a, b, d)| make(a, b, d as i16))
    };
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Hlt),
        rr(|rd, rs| Instr::MovReg { rd, rs }),
        (arb_reg(), any::<u32>()).prop_map(|(rd, imm)| Instr::MovImm { rd, imm }),
        rr(|rd, rs| Instr::Add { rd, rs }),
        (arb_reg(), -32767i32..32768).prop_map(|(rd, imm)| Instr::AddImm {
            rd,
            imm: imm as i16
        }),
        rr(|rd, rs| Instr::Sub { rd, rs }),
        rr(|rd, rs| Instr::Mul { rd, rs }),
        rr(|rd, rs| Instr::And { rd, rs }),
        rr(|rd, rs| Instr::Or { rd, rs }),
        rr(|rd, rs| Instr::Xor { rd, rs }),
        arb_reg().prop_map(|rd| Instr::Not { rd }),
        rr(|rd, rs| Instr::Shl { rd, rs }),
        rr(|rd, rs| Instr::Shr { rd, rs }),
        rr(|rd, rs| Instr::Cmp { rd, rs }),
        (arb_reg(), -32767i32..32768).prop_map(|(rd, imm)| Instr::CmpImm {
            rd,
            imm: imm as i16
        }),
        mem(|rd, rs, disp| Instr::Ldw { rd, rs, disp }),
        mem(|rd, rs, disp| Instr::Stw { rd, rs, disp }),
        mem(|rd, rs, disp| Instr::Ldb { rd, rs, disp }),
        mem(|rd, rs, disp| Instr::Stb { rd, rs, disp }),
        any::<u32>().prop_map(|target| Instr::Jmp { target }),
        (arb_cond(), any::<u32>()).prop_map(|(cond, target)| Instr::Jcc { cond, target }),
        arb_reg().prop_map(|rs| Instr::JmpReg { rs }),
        any::<u32>().prop_map(|target| Instr::Call { target }),
        Just(Instr::Ret),
        arb_reg().prop_map(|rs| Instr::Push { rs }),
        arb_reg().prop_map(|rd| Instr::Pop { rd }),
        any::<u8>().prop_map(|vector| Instr::Int { vector }),
        Just(Instr::Iret),
        Just(Instr::Sti),
        Just(Instr::Cli),
    ]
}

/// A generator for random but valid assembly programs.
fn arb_source() -> impl Strategy<Value = String> {
    let line = prop_oneof![
        Just("nop".to_string()),
        (0u32..8, 0u32..8).prop_map(|(a, b)| format!("mov r{a}, r{b}")),
        (0u32..8, any::<u16>()).prop_map(|(r, v)| format!("movi r{r}, {v}")),
        (0u32..8, 0u32..8).prop_map(|(a, b)| format!("add r{a}, r{b}")),
        (0u32..8, 0u32..8).prop_map(|(a, b)| format!("xor r{a}, r{b}")),
        (0u32..8, -64i32..64).prop_map(|(r, d)| format!("ldw r{r}, [r0{d:+}]")),
        (0u32..8, -64i32..64).prop_map(|(r, d)| format!("stw [r0{d:+}], r{r}")),
        (0u32..8).prop_map(|r| format!("push r{r}")),
        (0u32..8).prop_map(|r| format!("pop r{r}")),
        Just("cmpi r1, 5".to_string()),
        Just("sti".to_string()),
    ];
    proptest::collection::vec(line, 1..32).prop_map(|lines| {
        let mut src = String::from("main:\n");
        for l in lines {
            src.push(' ');
            src.push_str(&l);
            src.push('\n');
        }
        src.push_str(" hlt\n");
        src
    })
}

proptest! {
    #[test]
    fn disassembly_reassembles_to_identical_bytes(source in arb_source(), base in 0u32..0x1000) {
        let base = base & !3;
        let program = assemble(&source, base).unwrap();
        let lines = disassemble(&program.bytes, base).unwrap();
        // Re-render each decoded instruction as assembly and re-assemble.
        let mut rendered = String::new();
        for line in &lines {
            rendered.push_str(&line.instr.to_string());
            rendered.push('\n');
        }
        let reassembled = assemble(&rendered, base).unwrap();
        prop_assert_eq!(reassembled.bytes, program.bytes);
    }

    /// Every instruction form survives assemble → disassemble →
    /// re-encode: the assembler parses each variant's `Display`
    /// rendering back to bytes identical to a direct [`encode`].
    #[test]
    fn every_variant_roundtrips_through_the_assembler(instrs in proptest::collection::vec(arb_full_instr(), 1..24)) {
        let mut source = String::from("main:\n");
        let mut direct = Vec::new();
        for instr in &instrs {
            source.push(' ');
            source.push_str(&instr.to_string());
            source.push('\n');
            let mut words = Vec::new();
            encode(instr, &mut words);
            for w in words {
                direct.extend_from_slice(&w.to_le_bytes());
            }
        }
        let program = assemble(&source, 0).unwrap();
        prop_assert_eq!(&program.bytes, &direct);
        // And the disassembly of those bytes renders back to the same
        // instruction sequence.
        let lines = disassemble(&program.bytes, 0).unwrap();
        let decoded: Vec<Instr> = lines.iter().map(|l| l.instr).collect();
        prop_assert_eq!(decoded, instrs);
    }

    #[test]
    fn assembled_length_matches_symbol_arithmetic(source in arb_source()) {
        let p = assemble(&source, 0x100).unwrap();
        // `main` is the first label; total size is consistent with the
        // byte vector.
        prop_assert_eq!(p.symbol("main"), Some(0x100));
        prop_assert!(p.bytes.len().is_multiple_of(4));
    }
}

#[test]
fn labeled_transfers_roundtrip_for_every_condition() {
    // Label operands (the relocatable path) for jmp, call, and all six
    // conditions: the disassembled listing, re-assembled at the same
    // base with now-absolute targets, must produce identical bytes.
    let source = "\
main:
 jz a
 jnz b
 jlt c
 jge d
 jb e
 jae f
a:
 call main
b:
 jmp g
c:
 nop
d:
 nop
e:
 nop
f:
 nop
g:
 hlt
";
    let base = 0x400;
    let program = assemble(source, base).unwrap();
    let lines = disassemble(&program.bytes, base).unwrap();
    let mut rendered = String::new();
    for line in &lines {
        rendered.push_str(&line.instr.to_string());
        rendered.push('\n');
    }
    let reassembled = assemble(&rendered, base).unwrap();
    assert_eq!(reassembled.bytes, program.bytes);
}
