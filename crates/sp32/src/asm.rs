//! A two-pass assembler for SP32.
//!
//! The assembler is the "tool chain" of the reproduction: guest tasks for
//! the TyTAN platform are authored in SP32 assembly, and the byte offsets of
//! label-derived absolute immediates are reported so the task-image builder
//! can emit relocation entries (the paper loads relocatable ELF binaries;
//! see `tytan-image`).
//!
//! # Syntax
//!
//! ```text
//! ; comment (also #)
//! .equ UART, 0xf0000000     ; named constant
//! start:                    ; label
//!     movi r0, UART         ; 32-bit immediate (register, constant, label)
//!     movi r1, msg          ; label use => recorded as a relocation site
//!     ldb  r2, [r1+0]       ; base + signed displacement
//!     stw  [r0], r2         ; displacement defaults to 0
//!     addi r1, 1
//!     cmpi r2, 0
//!     jnz  start
//!     hlt
//! msg:
//!     .byte 0x68, 0x69, 0    ; data directives: .byte .word .space .align
//! ```
//!
//! Conditional jumps: `jz jnz jlt jge jb jae`. `r7` may be written `sp`.

use crate::encode::encode;
use crate::isa::{Cond, Instr, Reg};
use std::collections::BTreeMap;
use std::fmt;

/// An assembled program: raw bytes plus the metadata the loader needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// The address the program was assembled for (pass-1 base).
    pub origin: u32,
    /// The raw little-endian image.
    pub bytes: Vec<u8>,
    /// Label name to absolute address.
    pub symbols: BTreeMap<String, u32>,
    /// Byte offsets (relative to `origin`) of 32-bit words holding
    /// label-derived absolute addresses. These are the program's
    /// relocation sites.
    pub reloc_sites: Vec<u32>,
}

impl Program {
    /// The absolute address of a label.
    ///
    /// # Examples
    ///
    /// ```
    /// use sp32::asm::assemble;
    ///
    /// # fn main() -> Result<(), sp32::asm::AssembleError> {
    /// let p = assemble("nop\nend: hlt\n", 0x400)?;
    /// assert_eq!(p.symbol("end"), Some(0x404));
    /// # Ok(())
    /// # }
    /// ```
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }
}

/// An error produced by [`assemble`], with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssembleError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for AssembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AssembleError {}

fn err(line: usize, message: impl Into<String>) -> AssembleError {
    AssembleError {
        line,
        message: message.into(),
    }
}

/// One source statement after lexing.
#[derive(Debug)]
enum Stmt {
    Label(String),
    Equ(String, String),
    Instr {
        mnemonic: String,
        operands: Vec<String>,
    },
    Byte(Vec<String>),
    Word(Vec<String>),
    Space(String),
    Align(String),
    Ascii {
        bytes: Vec<u8>,
        nul: bool,
    },
}

fn split_statements(source: &str) -> Result<Vec<(usize, Stmt)>, AssembleError> {
    let mut stmts = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let mut text = raw;
        if let Some(pos) = text.find([';', '#']) {
            text = &text[..pos];
        }
        let mut text = text.trim();
        // One or more leading labels on the line.
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || !is_ident(label) {
                return Err(err(line_no, format!("invalid label `{label}`")));
            }
            stmts.push((line_no, Stmt::Label(label.to_string())));
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let (head, tail) = match text.find(char::is_whitespace) {
            Some(pos) => (&text[..pos], text[pos..].trim()),
            None => (text, ""),
        };
        let head_lc = head.to_ascii_lowercase();
        let stmt = match head_lc.as_str() {
            ".equ" => {
                let (name, value) = tail
                    .split_once(',')
                    .ok_or_else(|| err(line_no, ".equ requires `name, value`"))?;
                let name = name.trim();
                if !is_ident(name) {
                    return Err(err(line_no, format!("invalid .equ name `{name}`")));
                }
                Stmt::Equ(name.to_string(), value.trim().to_string())
            }
            ".ascii" | ".asciz" => {
                let text = tail.trim();
                let inner = text
                    .strip_prefix('"')
                    .and_then(|t| t.strip_suffix('"'))
                    .ok_or_else(|| err(line_no, ".ascii requires a double-quoted string"))?;
                let mut bytes = Vec::with_capacity(inner.len());
                let mut chars = inner.chars();
                while let Some(c) = chars.next() {
                    let byte = if c == '\\' {
                        match chars.next() {
                            Some('n') => b'\n',
                            Some('t') => b'\t',
                            Some('0') => 0,
                            Some('\\') => b'\\',
                            Some('"') => b'"',
                            other => {
                                return Err(err(
                                    line_no,
                                    format!("unknown escape `\\{}`", other.unwrap_or(' ')),
                                ))
                            }
                        }
                    } else if c.is_ascii() {
                        c as u8
                    } else {
                        return Err(err(line_no, format!("non-ASCII character `{c}`")));
                    };
                    bytes.push(byte);
                }
                Stmt::Ascii {
                    bytes,
                    nul: head_lc == ".asciz",
                }
            }
            ".byte" => Stmt::Byte(split_operands(tail)),
            ".word" => Stmt::Word(split_operands(tail)),
            ".space" => Stmt::Space(tail.to_string()),
            ".align" => Stmt::Align(tail.to_string()),
            other if other.starts_with('.') => {
                return Err(err(line_no, format!("unknown directive `{other}`")));
            }
            _ => Stmt::Instr {
                mnemonic: head_lc,
                operands: split_operands(tail),
            },
        };
        stmts.push((line_no, stmt));
    }
    Ok(stmts)
}

fn split_operands(text: &str) -> Vec<String> {
    if text.trim().is_empty() {
        return Vec::new();
    }
    text.split(',').map(|s| s.trim().to_string()).collect()
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '.')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

/// The size contribution of an instruction statement, by mnemonic.
fn instr_size(mnemonic: &str) -> u32 {
    match mnemonic {
        "movi" | "jmp" | "jz" | "jnz" | "jlt" | "jge" | "jb" | "jae" | "call" => 8,
        _ => 4,
    }
}

#[derive(Debug, Clone, Copy)]
struct Value {
    val: u32,
    /// Whether the value was derived from a label (position-dependent).
    relocatable: bool,
}

struct Symbols {
    labels: BTreeMap<String, u32>,
    equs: BTreeMap<String, u32>,
}

impl Symbols {
    fn lookup(&self, name: &str) -> Option<Value> {
        if let Some(&val) = self.labels.get(name) {
            return Some(Value {
                val,
                relocatable: true,
            });
        }
        self.equs.get(name).map(|&val| Value {
            val,
            relocatable: false,
        })
    }
}

fn parse_number(text: &str) -> Option<u32> {
    let (neg, body) = match text.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, text),
    };
    let magnitude = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u32::from_str_radix(&hex.replace('_', ""), 16).ok()?
    } else if let Some(bin) = body.strip_prefix("0b").or_else(|| body.strip_prefix("0B")) {
        u32::from_str_radix(&bin.replace('_', ""), 2).ok()?
    } else {
        body.replace('_', "").parse::<u32>().ok()?
    };
    Some(if neg {
        magnitude.wrapping_neg()
    } else {
        magnitude
    })
}

/// Evaluates `term (("+"|"-") term)*` where a term is a number, label, or
/// equ constant. Only label+const keeps the relocatable flag.
fn eval_expr(text: &str, symbols: &Symbols, line: usize) -> Result<Value, AssembleError> {
    let mut total: u32 = 0;
    let mut relocatable = false;
    let mut rest = text.trim();
    let mut sign = 1i64;
    if rest.is_empty() {
        return Err(err(line, "empty expression"));
    }
    loop {
        // A leading '-' is consumed as part of the number literal below.
        let term_end = rest[1..]
            .find(['+', '-'])
            .map(|p| p + 1)
            .unwrap_or(rest.len());
        let term = rest[..term_end].trim();
        let value = if let Some(num) = parse_number(term) {
            Value {
                val: num,
                relocatable: false,
            }
        } else if let Some(v) = symbols.lookup(term) {
            v
        } else {
            return Err(err(line, format!("undefined symbol `{term}`")));
        };
        if sign >= 0 {
            total = total.wrapping_add(value.val);
            relocatable |= value.relocatable;
        } else {
            total = total.wrapping_sub(value.val);
            // label - label is position-independent; treat any subtraction
            // of a relocatable term as cancelling relocatability.
            if value.relocatable {
                relocatable = false;
            }
        }
        rest = rest[term_end..].trim();
        if rest.is_empty() {
            break;
        }
        sign = if rest.starts_with('-') { -1 } else { 1 };
        rest = rest[1..].trim();
        if rest.is_empty() {
            return Err(err(line, "dangling operator in expression"));
        }
    }
    Ok(Value {
        val: total,
        relocatable,
    })
}

fn parse_reg(text: &str, line: usize) -> Result<Reg, AssembleError> {
    let t = text.to_ascii_lowercase();
    if t == "sp" {
        return Ok(Reg::SP);
    }
    if let Some(n) = t.strip_prefix('r') {
        if let Ok(i) = n.parse::<u32>() {
            if let Some(reg) = Reg::from_index(i) {
                return Ok(reg);
            }
        }
    }
    Err(err(line, format!("expected register, found `{text}`")))
}

/// Parses `[reg]`, `[reg+expr]`, or `[reg-expr]`.
fn parse_mem(text: &str, symbols: &Symbols, line: usize) -> Result<(Reg, i16), AssembleError> {
    let inner = text
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| {
            err(
                line,
                format!("expected memory operand `[reg+disp]`, found `{text}`"),
            )
        })?
        .trim();
    let (reg_text, disp_text) = match inner.find(['+', '-']) {
        Some(pos) => (&inner[..pos], &inner[pos..]),
        None => (inner, ""),
    };
    let reg = parse_reg(reg_text.trim(), line)?;
    let disp = if disp_text.is_empty() {
        0
    } else {
        let body = disp_text[1..].trim();
        let value = eval_expr(body, symbols, line)?;
        if value.relocatable {
            return Err(err(line, "displacement must be position-independent"));
        }
        let signed = value.val as i32;
        if !(-32768..=32767).contains(&signed) {
            return Err(err(line, format!("displacement {signed} out of i16 range")));
        }
        let magnitude = signed as i16;
        if disp_text.starts_with('-') {
            magnitude
                .checked_neg()
                .ok_or_else(|| err(line, "displacement overflow"))?
        } else {
            magnitude
        }
    };
    Ok((reg, disp))
}

fn imm16_value(value: Value, line: usize) -> Result<i16, AssembleError> {
    if value.relocatable {
        return Err(err(line, "16-bit immediate must be position-independent"));
    }
    let signed = value.val as i32;
    if !(-32768..=32767).contains(&signed) && value.val > 0xffff {
        return Err(err(line, format!("immediate {signed} out of 16-bit range")));
    }
    Ok(value.val as u16 as i16)
}

fn expect_operands(
    operands: &[String],
    n: usize,
    mnemonic: &str,
    line: usize,
) -> Result<(), AssembleError> {
    if operands.len() != n {
        return Err(err(
            line,
            format!(
                "`{mnemonic}` expects {n} operand(s), found {}",
                operands.len()
            ),
        ));
    }
    Ok(())
}

struct Emitter<'a> {
    bytes: Vec<u8>,
    origin: u32,
    reloc_sites: Vec<u32>,
    symbols: &'a Symbols,
}

impl Emitter<'_> {
    fn pc(&self) -> u32 {
        self.origin + self.bytes.len() as u32
    }

    fn emit_instr(&mut self, instr: &Instr, ext_is_reloc: bool) {
        let mut words = Vec::with_capacity(2);
        encode(instr, &mut words);
        if words.len() == 2 && ext_is_reloc {
            self.reloc_sites.push(self.bytes.len() as u32 + 4);
        }
        for w in words {
            self.bytes.extend_from_slice(&w.to_le_bytes());
        }
    }

    fn imm32(&mut self, text: &str, line: usize) -> Result<(u32, bool), AssembleError> {
        // Register operands are not valid 32-bit immediates; report clearly.
        if parse_reg(text, line).is_ok() {
            return Err(err(
                line,
                format!("expected immediate, found register `{text}`"),
            ));
        }
        let value = eval_expr(text, self.symbols, line)?;
        Ok((value.val, value.relocatable))
    }
}

fn assemble_instr(
    emitter: &mut Emitter<'_>,
    mnemonic: &str,
    operands: &[String],
    line: usize,
) -> Result<(), AssembleError> {
    let symbols = emitter.symbols;
    let reg = |i: usize| parse_reg(&operands[i], line);
    match mnemonic {
        "nop" => {
            expect_operands(operands, 0, mnemonic, line)?;
            emitter.emit_instr(&Instr::Nop, false);
        }
        "hlt" => {
            expect_operands(operands, 0, mnemonic, line)?;
            emitter.emit_instr(&Instr::Hlt, false);
        }
        "mov" => {
            expect_operands(operands, 2, mnemonic, line)?;
            emitter.emit_instr(
                &Instr::MovReg {
                    rd: reg(0)?,
                    rs: reg(1)?,
                },
                false,
            );
        }
        "movi" => {
            expect_operands(operands, 2, mnemonic, line)?;
            let rd = reg(0)?;
            let (imm, reloc) = emitter.imm32(&operands[1], line)?;
            emitter.emit_instr(&Instr::MovImm { rd, imm }, reloc);
        }
        "add" | "sub" | "mul" | "and" | "or" | "xor" | "shl" | "shr" | "cmp" => {
            expect_operands(operands, 2, mnemonic, line)?;
            let rd = reg(0)?;
            let rs = reg(1)?;
            let instr = match mnemonic {
                "add" => Instr::Add { rd, rs },
                "sub" => Instr::Sub { rd, rs },
                "mul" => Instr::Mul { rd, rs },
                "and" => Instr::And { rd, rs },
                "or" => Instr::Or { rd, rs },
                "xor" => Instr::Xor { rd, rs },
                "shl" => Instr::Shl { rd, rs },
                "shr" => Instr::Shr { rd, rs },
                _ => Instr::Cmp { rd, rs },
            };
            emitter.emit_instr(&instr, false);
        }
        "not" => {
            expect_operands(operands, 1, mnemonic, line)?;
            emitter.emit_instr(&Instr::Not { rd: reg(0)? }, false);
        }
        "addi" | "cmpi" => {
            expect_operands(operands, 2, mnemonic, line)?;
            let rd = reg(0)?;
            let imm = imm16_value(eval_expr(&operands[1], symbols, line)?, line)?;
            let instr = if mnemonic == "addi" {
                Instr::AddImm { rd, imm }
            } else {
                Instr::CmpImm { rd, imm }
            };
            emitter.emit_instr(&instr, false);
        }
        "ldw" | "ldb" => {
            expect_operands(operands, 2, mnemonic, line)?;
            let rd = reg(0)?;
            let (rs, disp) = parse_mem(&operands[1], symbols, line)?;
            let instr = if mnemonic == "ldw" {
                Instr::Ldw { rd, rs, disp }
            } else {
                Instr::Ldb { rd, rs, disp }
            };
            emitter.emit_instr(&instr, false);
        }
        "stw" | "stb" => {
            expect_operands(operands, 2, mnemonic, line)?;
            let (rd, disp) = parse_mem(&operands[0], symbols, line)?;
            let rs = reg(1)?;
            let instr = if mnemonic == "stw" {
                Instr::Stw { rd, rs, disp }
            } else {
                Instr::Stb { rd, rs, disp }
            };
            emitter.emit_instr(&instr, false);
        }
        "jmp" | "call" => {
            expect_operands(operands, 1, mnemonic, line)?;
            let (target, reloc) = emitter.imm32(&operands[0], line)?;
            let instr = if mnemonic == "jmp" {
                Instr::Jmp { target }
            } else {
                Instr::Call { target }
            };
            emitter.emit_instr(&instr, reloc);
        }
        "jz" | "jnz" | "jlt" | "jge" | "jb" | "jae" => {
            expect_operands(operands, 1, mnemonic, line)?;
            let cond = match mnemonic {
                "jz" => Cond::Z,
                "jnz" => Cond::Nz,
                "jlt" => Cond::Lt,
                "jge" => Cond::Ge,
                "jb" => Cond::B,
                _ => Cond::Ae,
            };
            let (target, reloc) = emitter.imm32(&operands[0], line)?;
            emitter.emit_instr(&Instr::Jcc { cond, target }, reloc);
        }
        "jmpr" => {
            expect_operands(operands, 1, mnemonic, line)?;
            emitter.emit_instr(&Instr::JmpReg { rs: reg(0)? }, false);
        }
        "ret" => {
            expect_operands(operands, 0, mnemonic, line)?;
            emitter.emit_instr(&Instr::Ret, false);
        }
        "push" => {
            expect_operands(operands, 1, mnemonic, line)?;
            emitter.emit_instr(&Instr::Push { rs: reg(0)? }, false);
        }
        "pop" => {
            expect_operands(operands, 1, mnemonic, line)?;
            emitter.emit_instr(&Instr::Pop { rd: reg(0)? }, false);
        }
        "int" => {
            expect_operands(operands, 1, mnemonic, line)?;
            let value = eval_expr(&operands[0], symbols, line)?;
            if value.relocatable || value.val > 0xff {
                return Err(err(line, "interrupt vector must be a constant in 0..=255"));
            }
            emitter.emit_instr(
                &Instr::Int {
                    vector: value.val as u8,
                },
                false,
            );
        }
        "iret" => {
            expect_operands(operands, 0, mnemonic, line)?;
            emitter.emit_instr(&Instr::Iret, false);
        }
        "sti" => {
            expect_operands(operands, 0, mnemonic, line)?;
            emitter.emit_instr(&Instr::Sti, false);
        }
        "cli" => {
            expect_operands(operands, 0, mnemonic, line)?;
            emitter.emit_instr(&Instr::Cli, false);
        }
        other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
    }
    Ok(())
}

/// Directive sizing shared between the two passes.
fn directive_size(
    stmt: &Stmt,
    pc: u32,
    symbols: &Symbols,
    line: usize,
) -> Result<u32, AssembleError> {
    Ok(match stmt {
        Stmt::Ascii { bytes, nul } => bytes.len() as u32 + u32::from(*nul),
        Stmt::Byte(items) => items.len() as u32,
        Stmt::Word(items) => 4 * items.len() as u32,
        Stmt::Space(expr) => eval_expr(expr, symbols, line)?.val,
        Stmt::Align(expr) => {
            let align = eval_expr(expr, symbols, line)?.val;
            if align == 0 || !align.is_power_of_two() {
                return Err(err(line, "alignment must be a power of two"));
            }
            (align - (pc % align)) % align
        }
        _ => 0,
    })
}

/// Assembles SP32 source text at the given origin address.
///
/// # Errors
///
/// Returns an [`AssembleError`] with the offending line for syntax errors,
/// unknown mnemonics or directives, out-of-range immediates, undefined or
/// duplicate symbols.
///
/// # Examples
///
/// ```
/// use sp32::asm::assemble;
///
/// # fn main() -> Result<(), sp32::asm::AssembleError> {
/// let p = assemble(
///     ".equ MMIO, 0xf0000000\n\
///      loop: movi r0, MMIO\n\
///      movi r1, loop\n\
///      hlt\n",
///     0x2000,
/// )?;
/// // `movi r1, loop` references a label: one relocation site at its
/// // extension word (offset 12: after the first two-word movi).
/// assert_eq!(p.reloc_sites, vec![12]);
/// # Ok(())
/// # }
/// ```
pub fn assemble(source: &str, origin: u32) -> Result<Program, AssembleError> {
    let stmts = split_statements(source)?;

    // Pass 1: collect .equ values and label addresses.
    let mut symbols = Symbols {
        labels: BTreeMap::new(),
        equs: BTreeMap::new(),
    };
    let mut pc = origin;
    for (line, stmt) in &stmts {
        match stmt {
            Stmt::Label(name) => {
                if symbols.labels.insert(name.clone(), pc).is_some() {
                    return Err(err(*line, format!("duplicate label `{name}`")));
                }
            }
            Stmt::Equ(name, value) => {
                // .equ may reference earlier equs but not labels (one pass).
                let v = eval_expr(value, &symbols, *line)?;
                if symbols.equs.insert(name.clone(), v.val).is_some() {
                    return Err(err(*line, format!("duplicate .equ `{name}`")));
                }
            }
            Stmt::Instr { mnemonic, .. } => pc += instr_size(mnemonic),
            other => pc += directive_size(other, pc, &symbols, *line)?,
        }
    }

    // Pass 2: emit.
    let mut emitter = Emitter {
        bytes: Vec::new(),
        origin,
        reloc_sites: Vec::new(),
        symbols: &symbols,
    };
    for (line, stmt) in &stmts {
        match stmt {
            Stmt::Label(_) | Stmt::Equ(..) => {}
            Stmt::Instr { mnemonic, operands } => {
                assemble_instr(&mut emitter, mnemonic, operands, *line)?;
            }
            Stmt::Ascii { bytes, nul } => {
                emitter.bytes.extend_from_slice(bytes);
                if *nul {
                    emitter.bytes.push(0);
                }
            }
            Stmt::Byte(items) => {
                for item in items {
                    let v = eval_expr(item, &symbols, *line)?;
                    if v.relocatable {
                        return Err(err(*line, ".byte values must be position-independent"));
                    }
                    if v.val > 0xff && (v.val as i32) < -128 {
                        return Err(err(*line, format!("byte value {} out of range", v.val)));
                    }
                    emitter.bytes.push(v.val as u8);
                }
            }
            Stmt::Word(items) => {
                for item in items {
                    let v = eval_expr(item, &symbols, *line)?;
                    if v.relocatable {
                        emitter.reloc_sites.push(emitter.bytes.len() as u32);
                    }
                    emitter.bytes.extend_from_slice(&v.val.to_le_bytes());
                }
            }
            other => {
                let size = directive_size(other, emitter.pc(), &symbols, *line)?;
                emitter
                    .bytes
                    .extend(std::iter::repeat_n(0u8, size as usize));
            }
        }
    }

    let Emitter {
        bytes, reloc_sites, ..
    } = emitter;
    Ok(Program {
        origin,
        bytes,
        symbols: symbols.labels,
        reloc_sites,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::decode;

    fn words_of(p: &Program) -> Vec<u32> {
        p.bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    #[test]
    fn assembles_minimal_program() {
        let p = assemble("movi r0, 42\nhlt\n", 0).unwrap();
        assert_eq!(p.bytes.len(), 12);
        let words = words_of(&p);
        assert_eq!(
            decode(words[0], Some(words[1])).unwrap(),
            Instr::MovImm {
                rd: Reg::R0,
                imm: 42
            }
        );
        assert_eq!(decode(words[2], None).unwrap(), Instr::Hlt);
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let src = "top:\n jmp bottom\n nop\nbottom:\n jmp top\n";
        let p = assemble(src, 0x100).unwrap();
        assert_eq!(p.symbol("top"), Some(0x100));
        assert_eq!(p.symbol("bottom"), Some(0x10c));
        let words = words_of(&p);
        assert_eq!(
            decode(words[0], Some(words[1])).unwrap(),
            Instr::Jmp { target: 0x10c }
        );
        assert_eq!(
            decode(words[3], Some(words[4])).unwrap(),
            Instr::Jmp { target: 0x100 }
        );
    }

    #[test]
    fn reloc_sites_track_label_immediates_only() {
        let src = ".equ K, 0x1234\nstart:\n movi r0, K\n movi r1, start\n jmp start\n hlt\n";
        let p = assemble(src, 0).unwrap();
        // movi r0, K: constant, no reloc. movi r1, start: ext word at 12.
        // jmp start: ext word at 20.
        assert_eq!(p.reloc_sites, vec![12, 20]);
    }

    #[test]
    fn word_directive_with_label_is_reloc_site() {
        let src = "entry:\n hlt\ntable:\n .word entry, 7\n";
        let p = assemble(src, 0x40).unwrap();
        assert_eq!(p.reloc_sites, vec![4]);
        let words = words_of(&p);
        assert_eq!(words[1], 0x40);
        assert_eq!(words[2], 7);
    }

    #[test]
    fn label_difference_is_position_independent() {
        let src = "a:\n nop\n nop\nb:\n movi r0, b-a\n hlt\n";
        let p = assemble(src, 0x1000).unwrap();
        assert!(p.reloc_sites.is_empty());
        let words = words_of(&p);
        assert_eq!(words[3], 8);
    }

    #[test]
    fn memory_operands_parse_displacements() {
        let p = assemble("ldw r0, [r1+8]\nstw [sp-4], r2\nldb r3, [r4]\n", 0).unwrap();
        let words = words_of(&p);
        assert_eq!(
            decode(words[0], None).unwrap(),
            Instr::Ldw {
                rd: Reg::R0,
                rs: Reg::R1,
                disp: 8
            }
        );
        assert_eq!(
            decode(words[1], None).unwrap(),
            Instr::Stw {
                rd: Reg::R7,
                rs: Reg::R2,
                disp: -4
            }
        );
        assert_eq!(
            decode(words[2], None).unwrap(),
            Instr::Ldb {
                rd: Reg::R3,
                rs: Reg::R4,
                disp: 0
            }
        );
    }

    #[test]
    fn align_and_space_directives() {
        let p = assemble(".byte 1\n.align 4\n.space 8\nend: hlt\n", 0).unwrap();
        assert_eq!(p.symbol("end"), Some(12));
        assert_eq!(&p.bytes[..12], &[1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn ascii_directives_emit_strings() {
        let p = assemble(".ascii \"hi\"\n.asciz \"ok\"\nend: hlt\n", 0).unwrap();
        assert_eq!(&p.bytes[..5], b"hiok\0");
        assert_eq!(p.symbol("end"), Some(5));
    }

    #[test]
    fn ascii_escapes_and_errors() {
        let p = assemble(".ascii \"a\\n\\0b\"\nhlt\n", 0).unwrap();
        assert_eq!(&p.bytes[..4], b"a\n\0b");
        assert!(assemble(".ascii no-quotes\n", 0).is_err());
        assert!(assemble(".ascii \"caf\u{e9}\"\n", 0).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("; top comment\n\n nop # trailing\n", 0).unwrap();
        assert_eq!(p.bytes.len(), 4);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus r0\n", 0).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("a:\nnop\na:\n", 0).unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn undefined_symbol_rejected() {
        let e = assemble("jmp nowhere\n", 0).unwrap_err();
        assert!(e.message.contains("undefined"));
    }

    #[test]
    fn displacement_out_of_range_rejected() {
        let e = assemble("ldw r0, [r1+70000]\n", 0).unwrap_err();
        assert!(e.message.contains("range"));
    }

    #[test]
    fn interrupt_vector_must_be_small_constant() {
        assert!(assemble("int 0x30\n", 0).is_ok());
        assert!(assemble("int 300\n", 0).is_err());
    }

    #[test]
    fn origin_shifts_all_symbols_and_targets() {
        let src = "start:\n movi r0, start\n hlt\n";
        let p0 = assemble(src, 0).unwrap();
        let p1 = assemble(src, 0x8000).unwrap();
        assert_eq!(p0.bytes.len(), p1.bytes.len());
        assert_eq!(words_of(&p0)[1], 0);
        assert_eq!(words_of(&p1)[1], 0x8000);
        // Identical reloc sites regardless of origin.
        assert_eq!(p0.reloc_sites, p1.reloc_sites);
    }

    #[test]
    fn sti_cli_iret_ret_roundtrip() {
        let p = assemble("sti\ncli\niret\nret\n", 0).unwrap();
        let words = words_of(&p);
        assert_eq!(decode(words[0], None).unwrap(), Instr::Sti);
        assert_eq!(decode(words[1], None).unwrap(), Instr::Cli);
        assert_eq!(decode(words[2], None).unwrap(), Instr::Iret);
        assert_eq!(decode(words[3], None).unwrap(), Instr::Ret);
    }

    #[test]
    fn conditional_jumps_assemble() {
        let src = "t:\n jz t\n jnz t\n jlt t\n jge t\n jb t\n jae t\n";
        let p = assemble(src, 0).unwrap();
        let words = words_of(&p);
        let conds = [Cond::Z, Cond::Nz, Cond::Lt, Cond::Ge, Cond::B, Cond::Ae];
        for (i, cond) in conds.iter().enumerate() {
            assert_eq!(
                decode(words[2 * i], Some(words[2 * i + 1])).unwrap(),
                Instr::Jcc {
                    cond: *cond,
                    target: 0
                }
            );
        }
    }
}
