//! Disassembler for SP32 machine code.

use crate::encode::{decode, encoded_len_words, DecodeError};
use crate::isa::Instr;

/// One disassembled instruction with its address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Line {
    /// Address of the first byte of the instruction.
    pub addr: u32,
    /// The decoded instruction.
    pub instr: Instr,
}

/// Disassembles a little-endian byte image starting at `base`.
///
/// Decoding stops at the first malformed instruction; the successfully
/// decoded prefix is returned alongside the error (the caller may want to
/// render partial output, [C-INTERMEDIATE]).
///
/// # Errors
///
/// Returns the lines decoded so far plus the [`DecodeError`] and the address
/// where it occurred.
///
/// # Examples
///
/// ```
/// use sp32::asm::assemble;
/// use sp32::disasm::disassemble;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = assemble("movi r0, 7\nhlt\n", 0x100)?;
/// let lines = disassemble(&p.bytes, 0x100).map_err(|(_, e, _)| e)?;
/// assert_eq!(lines.len(), 2);
/// assert_eq!(lines[1].addr, 0x108);
/// # Ok(())
/// # }
/// ```
#[allow(clippy::type_complexity)]
pub fn disassemble(bytes: &[u8], base: u32) -> Result<Vec<Line>, (Vec<Line>, DecodeError, u32)> {
    let mut lines = Vec::new();
    let words: Vec<u32> = bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("chunk of 4")))
        .collect();
    let mut i = 0;
    while i < words.len() {
        let addr = base + (i as u32) * 4;
        let first = words[i];
        let len = encoded_len_words(first);
        let ext = if len == 2 {
            words.get(i + 1).copied()
        } else {
            None
        };
        match decode(first, ext) {
            Ok(instr) => {
                lines.push(Line { addr, instr });
                i += len;
            }
            Err(e) => return Err((lines, e, addr)),
        }
    }
    Ok(lines)
}

/// Renders a disassembly listing as text, one instruction per line.
///
/// # Examples
///
/// ```
/// use sp32::asm::assemble;
/// use sp32::disasm::{disassemble, listing};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = assemble("nop\nhlt\n", 0)?;
/// let lines = disassemble(&p.bytes, 0).map_err(|(_, e, _)| e)?;
/// assert_eq!(listing(&lines), "00000000: nop\n00000004: hlt\n");
/// # Ok(())
/// # }
/// ```
pub fn listing(lines: &[Line]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for line in lines {
        let _ = writeln!(out, "{:08x}: {}", line.addr, line.instr);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn disassembles_assembled_program() {
        let src = "start:\n movi r0, 0xf0000000\n ldw r1, [r0+4]\n cmpi r1, 0\n jz start\n hlt\n";
        let p = assemble(src, 0x1000).unwrap();
        let lines = disassemble(&p.bytes, 0x1000).unwrap();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[0].addr, 0x1000);
        assert_eq!(lines.last().unwrap().instr, Instr::Hlt);
    }

    #[test]
    fn reports_error_with_partial_prefix() {
        let mut bytes = Vec::new();
        let p = assemble("nop\n", 0).unwrap();
        bytes.extend_from_slice(&p.bytes);
        bytes.extend_from_slice(&0xff00_0000u32.to_le_bytes());
        let (prefix, err, addr) = disassemble(&bytes, 0).unwrap_err();
        assert_eq!(prefix.len(), 1);
        assert_eq!(addr, 4);
        assert!(matches!(err, DecodeError::UnknownOpcode(0xff)));
    }

    #[test]
    fn listing_format() {
        let p = assemble("nop\n", 0x20).unwrap();
        let lines = disassemble(&p.bytes, 0x20).unwrap();
        assert_eq!(listing(&lines), "00000020: nop\n");
    }
}
