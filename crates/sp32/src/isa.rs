//! Architectural definitions: registers, condition codes, instructions.

use std::fmt;

/// Zero flag bit in `EFLAGS`.
pub const EFLAGS_ZF: u32 = 1 << 0;
/// Sign flag bit in `EFLAGS`.
pub const EFLAGS_SF: u32 = 1 << 1;
/// Carry flag bit in `EFLAGS`.
pub const EFLAGS_CF: u32 = 1 << 2;
/// Interrupt-enable flag bit in `EFLAGS` (cleared on interrupt entry,
/// restored by `IRET`, toggled by `STI`/`CLI`).
pub const EFLAGS_IF: u32 = 1 << 9;

/// One of the eight SP32 general-purpose registers.
///
/// `R7` doubles as the stack pointer: `PUSH`, `POP`, `CALL`, `RET`, the
/// hardware exception engine, and `IRET` all operate on `R7`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Reg {
    /// General-purpose register 0 (return values, IPC message word 0).
    R0,
    /// General-purpose register 1.
    R1,
    /// General-purpose register 2.
    R2,
    /// General-purpose register 3.
    R3,
    /// General-purpose register 4.
    R4,
    /// General-purpose register 5.
    R5,
    /// General-purpose register 6.
    R6,
    /// General-purpose register 7, the stack pointer.
    R7,
}

impl Reg {
    /// All registers in index order.
    pub const ALL: [Reg; 8] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
    ];

    /// The register's 3-bit encoding index.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Decodes a register from its 3-bit index.
    ///
    /// Returns `None` if `index > 7`.
    pub fn from_index(index: u32) -> Option<Reg> {
        Reg::ALL.get(index as usize).copied()
    }

    /// The stack pointer alias for [`Reg::R7`].
    pub const SP: Reg = Reg::R7;
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

/// Branch condition for conditional jumps, evaluated against `EFLAGS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Jump if zero (`ZF` set).
    Z,
    /// Jump if not zero (`ZF` clear).
    Nz,
    /// Jump if signed less-than (`SF` set).
    Lt,
    /// Jump if signed greater-or-equal (`SF` clear).
    Ge,
    /// Jump if unsigned below (`CF` set).
    B,
    /// Jump if unsigned above-or-equal (`CF` clear).
    Ae,
}

impl Cond {
    pub(crate) fn code(self) -> u32 {
        match self {
            Cond::Z => 0,
            Cond::Nz => 1,
            Cond::Lt => 2,
            Cond::Ge => 3,
            Cond::B => 4,
            Cond::Ae => 5,
        }
    }

    pub(crate) fn from_code(code: u32) -> Option<Cond> {
        Some(match code {
            0 => Cond::Z,
            1 => Cond::Nz,
            2 => Cond::Lt,
            3 => Cond::Ge,
            4 => Cond::B,
            5 => Cond::Ae,
            _ => return None,
        })
    }

    /// Evaluates the condition against an `EFLAGS` value.
    pub fn holds(self, eflags: u32) -> bool {
        match self {
            Cond::Z => eflags & EFLAGS_ZF != 0,
            Cond::Nz => eflags & EFLAGS_ZF == 0,
            Cond::Lt => eflags & EFLAGS_SF != 0,
            Cond::Ge => eflags & EFLAGS_SF == 0,
            Cond::B => eflags & EFLAGS_CF != 0,
            Cond::Ae => eflags & EFLAGS_CF == 0,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Z => "z",
            Cond::Nz => "nz",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
            Cond::B => "b",
            Cond::Ae => "ae",
        };
        f.write_str(s)
    }
}

/// A decoded SP32 instruction.
///
/// Memory operands use base + signed 16-bit displacement addressing.
/// Absolute 32-bit targets (`Jmp`, `Jcc`, `Call`, `MovImm`) occupy an
/// extension word; everything else encodes in a single 32-bit word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// No operation.
    Nop,
    /// Halt the core until the next interrupt.
    Hlt,
    /// `rd = rs`.
    MovReg { rd: Reg, rs: Reg },
    /// `rd = imm` (32-bit immediate, extension word).
    MovImm { rd: Reg, imm: u32 },
    /// `rd = rd + rs` (sets ZF/SF/CF).
    Add { rd: Reg, rs: Reg },
    /// `rd = rd + sext(imm16)` (sets ZF/SF/CF).
    AddImm { rd: Reg, imm: i16 },
    /// `rd = rd - rs` (sets ZF/SF/CF).
    Sub { rd: Reg, rs: Reg },
    /// `rd = rd * rs` (low 32 bits; sets ZF/SF).
    Mul { rd: Reg, rs: Reg },
    /// `rd = rd & rs` (sets ZF/SF).
    And { rd: Reg, rs: Reg },
    /// `rd = rd | rs` (sets ZF/SF).
    Or { rd: Reg, rs: Reg },
    /// `rd = rd ^ rs` (sets ZF/SF).
    Xor { rd: Reg, rs: Reg },
    /// `rd = !rd` (sets ZF/SF).
    Not { rd: Reg },
    /// `rd = rd << (rs & 31)` (sets ZF/SF).
    Shl { rd: Reg, rs: Reg },
    /// `rd = rd >> (rs & 31)`, logical (sets ZF/SF).
    Shr { rd: Reg, rs: Reg },
    /// Compare `rd - rs`, set flags only.
    Cmp { rd: Reg, rs: Reg },
    /// Compare `rd - sext(imm16)`, set flags only.
    CmpImm { rd: Reg, imm: i16 },
    /// Load word: `rd = mem32[rs + sext(disp)]`.
    Ldw { rd: Reg, rs: Reg, disp: i16 },
    /// Store word: `mem32[rd + sext(disp)] = rs`.
    Stw { rd: Reg, rs: Reg, disp: i16 },
    /// Load byte (zero-extended): `rd = mem8[rs + sext(disp)]`.
    Ldb { rd: Reg, rs: Reg, disp: i16 },
    /// Store byte: `mem8[rd + sext(disp)] = rs & 0xff`.
    Stb { rd: Reg, rs: Reg, disp: i16 },
    /// Unconditional absolute jump (extension word).
    Jmp { target: u32 },
    /// Conditional absolute jump (extension word).
    Jcc { cond: Cond, target: u32 },
    /// Jump to the address in `rs`.
    JmpReg { rs: Reg },
    /// Push return address, jump to absolute target (extension word).
    Call { target: u32 },
    /// Pop return address and jump to it.
    Ret,
    /// Push `rs` (decrements `R7` by 4 first).
    Push { rs: Reg },
    /// Pop into `rd` (increments `R7` by 4 after).
    Pop { rd: Reg },
    /// Software interrupt through IDT vector `vector`.
    Int { vector: u8 },
    /// Return from interrupt: pop `EIP`, then `EFLAGS`.
    Iret,
    /// Set the interrupt-enable flag.
    Sti,
    /// Clear the interrupt-enable flag.
    Cli,
}

impl Instr {
    /// Whether this instruction carries a 32-bit extension word.
    pub fn has_ext_word(&self) -> bool {
        matches!(
            self,
            Instr::MovImm { .. } | Instr::Jmp { .. } | Instr::Jcc { .. } | Instr::Call { .. }
        )
    }

    /// The encoded size of this instruction in bytes (4 or 8).
    pub fn size_bytes(&self) -> u32 {
        if self.has_ext_word() {
            8
        } else {
            4
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Nop => write!(f, "nop"),
            Instr::Hlt => write!(f, "hlt"),
            Instr::MovReg { rd, rs } => write!(f, "mov {rd}, {rs}"),
            Instr::MovImm { rd, imm } => write!(f, "movi {rd}, {imm:#x}"),
            Instr::Add { rd, rs } => write!(f, "add {rd}, {rs}"),
            Instr::AddImm { rd, imm } => write!(f, "addi {rd}, {imm}"),
            Instr::Sub { rd, rs } => write!(f, "sub {rd}, {rs}"),
            Instr::Mul { rd, rs } => write!(f, "mul {rd}, {rs}"),
            Instr::And { rd, rs } => write!(f, "and {rd}, {rs}"),
            Instr::Or { rd, rs } => write!(f, "or {rd}, {rs}"),
            Instr::Xor { rd, rs } => write!(f, "xor {rd}, {rs}"),
            Instr::Not { rd } => write!(f, "not {rd}"),
            Instr::Shl { rd, rs } => write!(f, "shl {rd}, {rs}"),
            Instr::Shr { rd, rs } => write!(f, "shr {rd}, {rs}"),
            Instr::Cmp { rd, rs } => write!(f, "cmp {rd}, {rs}"),
            Instr::CmpImm { rd, imm } => write!(f, "cmpi {rd}, {imm}"),
            Instr::Ldw { rd, rs, disp } => write!(f, "ldw {rd}, [{rs}{disp:+}]"),
            Instr::Stw { rd, rs, disp } => write!(f, "stw [{rd}{disp:+}], {rs}"),
            Instr::Ldb { rd, rs, disp } => write!(f, "ldb {rd}, [{rs}{disp:+}]"),
            Instr::Stb { rd, rs, disp } => write!(f, "stb [{rd}{disp:+}], {rs}"),
            Instr::Jmp { target } => write!(f, "jmp {target:#x}"),
            Instr::Jcc { cond, target } => write!(f, "j{cond} {target:#x}"),
            Instr::JmpReg { rs } => write!(f, "jmpr {rs}"),
            Instr::Call { target } => write!(f, "call {target:#x}"),
            Instr::Ret => write!(f, "ret"),
            Instr::Push { rs } => write!(f, "push {rs}"),
            Instr::Pop { rd } => write!(f, "pop {rd}"),
            Instr::Int { vector } => write!(f, "int {vector:#x}"),
            Instr::Iret => write!(f, "iret"),
            Instr::Sti => write!(f, "sti"),
            Instr::Cli => write!(f, "cli"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_index_roundtrip() {
        for reg in Reg::ALL {
            assert_eq!(Reg::from_index(reg.index() as u32), Some(reg));
        }
        assert_eq!(Reg::from_index(8), None);
    }

    #[test]
    fn sp_is_r7() {
        assert_eq!(Reg::SP, Reg::R7);
        assert_eq!(Reg::SP.index(), 7);
    }

    #[test]
    fn cond_code_roundtrip() {
        for cond in [Cond::Z, Cond::Nz, Cond::Lt, Cond::Ge, Cond::B, Cond::Ae] {
            assert_eq!(Cond::from_code(cond.code()), Some(cond));
        }
        assert_eq!(Cond::from_code(6), None);
    }

    #[test]
    fn cond_evaluation() {
        assert!(Cond::Z.holds(EFLAGS_ZF));
        assert!(!Cond::Z.holds(0));
        assert!(Cond::Nz.holds(0));
        assert!(Cond::Lt.holds(EFLAGS_SF));
        assert!(Cond::Ge.holds(0));
        assert!(Cond::B.holds(EFLAGS_CF));
        assert!(Cond::Ae.holds(EFLAGS_ZF | EFLAGS_SF));
    }

    #[test]
    fn instruction_sizes() {
        assert_eq!(Instr::Nop.size_bytes(), 4);
        assert_eq!(
            Instr::MovImm {
                rd: Reg::R0,
                imm: 0
            }
            .size_bytes(),
            8
        );
        assert_eq!(Instr::Jmp { target: 0 }.size_bytes(), 8);
        assert_eq!(
            Instr::Jcc {
                cond: Cond::Z,
                target: 0
            }
            .size_bytes(),
            8
        );
        assert_eq!(Instr::Call { target: 0 }.size_bytes(), 8);
        assert_eq!(Instr::Ret.size_bytes(), 4);
    }

    #[test]
    fn display_is_nonempty() {
        let samples = [
            Instr::Nop,
            Instr::MovImm {
                rd: Reg::R3,
                imm: 0xdead_beef,
            },
            Instr::Ldw {
                rd: Reg::R1,
                rs: Reg::R2,
                disp: -8,
            },
            Instr::Jcc {
                cond: Cond::Nz,
                target: 0x100,
            },
            Instr::Int { vector: 0x30 },
        ];
        for instr in samples {
            assert!(!instr.to_string().is_empty());
        }
    }
}
