//! The SP32 command-line tool chain: assembler and disassembler.
//!
//! ```text
//! sp32 asm    <source.s>  [--base <addr>] [-o <out.bin>]   assemble
//! sp32 disasm <image.bin> [--base <addr>]                  disassemble
//! sp32 symbols <source.s> [--base <addr>]                  dump label addresses
//! ```
//!
//! Addresses accept decimal or `0x` hex. Without `-o`, `asm` prints a hex
//! dump plus the relocation sites.

use sp32::asm::assemble;
use sp32::disasm::{disassemble, listing};
use std::process::ExitCode;

fn parse_addr(text: &str) -> Result<u32, String> {
    let parsed = if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16)
    } else {
        text.parse()
    };
    parsed.map_err(|_| format!("invalid address `{text}`"))
}

struct Options {
    command: String,
    input: String,
    base: u32,
    output: Option<String>,
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Options, String> {
    let command = args
        .next()
        .ok_or("missing command (asm | disasm | symbols)")?;
    let mut input = None;
    let mut base = 0u32;
    let mut output = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--base" => {
                let value = args.next().ok_or("--base needs a value")?;
                base = parse_addr(&value)?;
            }
            "-o" | "--output" => {
                output = Some(args.next().ok_or("-o needs a path")?);
            }
            "-h" | "--help" => {
                return Err("usage: sp32 <asm|disasm|symbols> <file> [--base addr] [-o out]".into())
            }
            other if input.is_none() => input = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(Options {
        command,
        input: input.ok_or("missing input file")?,
        base,
        output,
    })
}

fn hexdump(bytes: &[u8], base: u32) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (i, chunk) in bytes.chunks(16).enumerate() {
        let _ = write!(out, "{:08x}: ", base as usize + i * 16);
        for b in chunk {
            let _ = write!(out, "{b:02x} ");
        }
        out.push('\n');
    }
    out
}

fn run() -> Result<(), String> {
    let options = parse_args(std::env::args().skip(1))?;
    match options.command.as_str() {
        "asm" => {
            let source = std::fs::read_to_string(&options.input)
                .map_err(|e| format!("read {}: {e}", options.input))?;
            let program = assemble(&source, options.base).map_err(|e| e.to_string())?;
            match &options.output {
                Some(path) => {
                    std::fs::write(path, &program.bytes)
                        .map_err(|e| format!("write {path}: {e}"))?;
                    eprintln!(
                        "wrote {} bytes at base {:#x} ({} relocation sites)",
                        program.bytes.len(),
                        program.origin,
                        program.reloc_sites.len(),
                    );
                }
                None => {
                    print!("{}", hexdump(&program.bytes, program.origin));
                    if !program.reloc_sites.is_empty() {
                        println!("relocation sites (byte offsets): {:?}", program.reloc_sites);
                    }
                }
            }
        }
        "disasm" => {
            let bytes = std::fs::read(&options.input)
                .map_err(|e| format!("read {}: {e}", options.input))?;
            match disassemble(&bytes, options.base) {
                Ok(lines) => print!("{}", listing(&lines)),
                Err((prefix, error, addr)) => {
                    print!("{}", listing(&prefix));
                    return Err(format!("decode error at {addr:#010x}: {error}"));
                }
            }
        }
        "symbols" => {
            let source = std::fs::read_to_string(&options.input)
                .map_err(|e| format!("read {}: {e}", options.input))?;
            let program = assemble(&source, options.base).map_err(|e| e.to_string())?;
            for (name, addr) in &program.symbols {
                println!("{addr:08x} {name}");
            }
        }
        other => return Err(format!("unknown command `{other}`")),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("sp32: {message}");
            ExitCode::FAILURE
        }
    }
}
