//! Binary instruction encoding.
//!
//! Layout of the primary word:
//!
//! ```text
//! [31:24] opcode
//! [23:21] rd
//! [20:18] rs
//! [17:16] reserved (condition code for Jcc lives in [23:21])
//! [15:0]  imm16 / displacement / vector
//! ```
//!
//! Instructions with a 32-bit immediate ([`Instr::MovImm`], [`Instr::Jmp`],
//! [`Instr::Jcc`], [`Instr::Call`]) are followed by one extension word
//! holding the immediate verbatim.

use crate::isa::{Cond, Instr, Reg};
use std::fmt;

mod op {
    pub const NOP: u32 = 0x00;
    pub const HLT: u32 = 0x01;
    pub const MOVR: u32 = 0x02;
    pub const MOVI: u32 = 0x03;
    pub const ADD: u32 = 0x10;
    pub const SUB: u32 = 0x11;
    pub const AND: u32 = 0x12;
    pub const OR: u32 = 0x13;
    pub const XOR: u32 = 0x14;
    pub const SHL: u32 = 0x15;
    pub const SHR: u32 = 0x16;
    pub const ADDI: u32 = 0x17;
    pub const MUL: u32 = 0x18;
    pub const NOT: u32 = 0x19;
    pub const CMP: u32 = 0x1a;
    pub const CMPI: u32 = 0x1b;
    pub const LDW: u32 = 0x20;
    pub const STW: u32 = 0x21;
    pub const LDB: u32 = 0x22;
    pub const STB: u32 = 0x23;
    pub const JMP: u32 = 0x30;
    pub const JCC: u32 = 0x31;
    pub const JMPR: u32 = 0x32;
    pub const CALL: u32 = 0x33;
    pub const RET: u32 = 0x34;
    pub const PUSH: u32 = 0x40;
    pub const POP: u32 = 0x41;
    pub const INT: u32 = 0x50;
    pub const IRET: u32 = 0x51;
    pub const STI: u32 = 0x52;
    pub const CLI: u32 = 0x53;
}

fn word(opcode: u32, rd: u32, rs: u32, imm16: u32) -> u32 {
    (opcode << 24) | (rd << 21) | (rs << 18) | (imm16 & 0xffff)
}

/// Encodes an instruction into one or two 32-bit words, appended to `out`.
///
/// # Examples
///
/// ```
/// use sp32::{encode, Instr, Reg};
///
/// let mut words = Vec::new();
/// encode(&Instr::MovImm { rd: Reg::R0, imm: 0x1234_5678 }, &mut words);
/// assert_eq!(words.len(), 2);
/// assert_eq!(words[1], 0x1234_5678);
/// ```
pub fn encode(instr: &Instr, out: &mut Vec<u32>) {
    use op::*;
    match *instr {
        Instr::Nop => out.push(word(NOP, 0, 0, 0)),
        Instr::Hlt => out.push(word(HLT, 0, 0, 0)),
        Instr::MovReg { rd, rs } => out.push(word(MOVR, rd.index() as u32, rs.index() as u32, 0)),
        Instr::MovImm { rd, imm } => {
            out.push(word(MOVI, rd.index() as u32, 0, 0));
            out.push(imm);
        }
        Instr::Add { rd, rs } => out.push(word(ADD, rd.index() as u32, rs.index() as u32, 0)),
        Instr::AddImm { rd, imm } => out.push(word(ADDI, rd.index() as u32, 0, imm as u16 as u32)),
        Instr::Sub { rd, rs } => out.push(word(SUB, rd.index() as u32, rs.index() as u32, 0)),
        Instr::Mul { rd, rs } => out.push(word(MUL, rd.index() as u32, rs.index() as u32, 0)),
        Instr::And { rd, rs } => out.push(word(AND, rd.index() as u32, rs.index() as u32, 0)),
        Instr::Or { rd, rs } => out.push(word(OR, rd.index() as u32, rs.index() as u32, 0)),
        Instr::Xor { rd, rs } => out.push(word(XOR, rd.index() as u32, rs.index() as u32, 0)),
        Instr::Not { rd } => out.push(word(NOT, rd.index() as u32, 0, 0)),
        Instr::Shl { rd, rs } => out.push(word(SHL, rd.index() as u32, rs.index() as u32, 0)),
        Instr::Shr { rd, rs } => out.push(word(SHR, rd.index() as u32, rs.index() as u32, 0)),
        Instr::Cmp { rd, rs } => out.push(word(CMP, rd.index() as u32, rs.index() as u32, 0)),
        Instr::CmpImm { rd, imm } => out.push(word(CMPI, rd.index() as u32, 0, imm as u16 as u32)),
        Instr::Ldw { rd, rs, disp } => out.push(word(
            LDW,
            rd.index() as u32,
            rs.index() as u32,
            disp as u16 as u32,
        )),
        Instr::Stw { rd, rs, disp } => out.push(word(
            STW,
            rd.index() as u32,
            rs.index() as u32,
            disp as u16 as u32,
        )),
        Instr::Ldb { rd, rs, disp } => out.push(word(
            LDB,
            rd.index() as u32,
            rs.index() as u32,
            disp as u16 as u32,
        )),
        Instr::Stb { rd, rs, disp } => out.push(word(
            STB,
            rd.index() as u32,
            rs.index() as u32,
            disp as u16 as u32,
        )),
        Instr::Jmp { target } => {
            out.push(word(JMP, 0, 0, 0));
            out.push(target);
        }
        Instr::Jcc { cond, target } => {
            out.push(word(JCC, cond.code(), 0, 0));
            out.push(target);
        }
        Instr::JmpReg { rs } => out.push(word(JMPR, 0, rs.index() as u32, 0)),
        Instr::Call { target } => {
            out.push(word(CALL, 0, 0, 0));
            out.push(target);
        }
        Instr::Ret => out.push(word(RET, 0, 0, 0)),
        Instr::Push { rs } => out.push(word(PUSH, 0, rs.index() as u32, 0)),
        Instr::Pop { rd } => out.push(word(POP, rd.index() as u32, 0, 0)),
        Instr::Int { vector } => out.push(word(INT, 0, 0, vector as u32)),
        Instr::Iret => out.push(word(IRET, 0, 0, 0)),
        Instr::Sti => out.push(word(STI, 0, 0, 0)),
        Instr::Cli => out.push(word(CLI, 0, 0, 0)),
    }
}

/// How many 32-bit words the instruction starting with `first_word` occupies.
///
/// This never fails: unknown opcodes are reported as single-word so that a
/// decoder can step over them and report a precise [`DecodeError`].
pub fn encoded_len_words(first_word: u32) -> usize {
    match first_word >> 24 {
        op::MOVI | op::JMP | op::JCC | op::CALL => 2,
        _ => 1,
    }
}

/// An error produced when decoding a malformed instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode byte does not name any SP32 instruction.
    UnknownOpcode(u8),
    /// The instruction needs an extension word but none was supplied.
    MissingExtWord,
    /// A conditional jump used a reserved condition code.
    BadCondition(u32),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::MissingExtWord => write!(f, "missing immediate extension word"),
            DecodeError::BadCondition(code) => write!(f, "reserved condition code {code}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn rd_of(w: u32) -> Reg {
    Reg::from_index((w >> 21) & 0x7).expect("3-bit field is always a valid register")
}

fn rs_of(w: u32) -> Reg {
    Reg::from_index((w >> 18) & 0x7).expect("3-bit field is always a valid register")
}

fn imm16_of(w: u32) -> i16 {
    (w & 0xffff) as u16 as i16
}

/// Decodes one instruction from its primary word and optional extension word.
///
/// # Errors
///
/// Returns [`DecodeError::UnknownOpcode`] for an unassigned opcode byte,
/// [`DecodeError::MissingExtWord`] if a two-word instruction is decoded
/// without its extension word, and [`DecodeError::BadCondition`] for a
/// reserved `Jcc` condition code.
///
/// # Examples
///
/// ```
/// use sp32::{decode, encode, Instr, Reg};
///
/// # fn main() -> Result<(), sp32::DecodeError> {
/// let mut words = Vec::new();
/// encode(&Instr::Add { rd: Reg::R1, rs: Reg::R2 }, &mut words);
/// let decoded = decode(words[0], None)?;
/// assert_eq!(decoded, Instr::Add { rd: Reg::R1, rs: Reg::R2 });
/// # Ok(())
/// # }
/// ```
pub fn decode(first: u32, ext: Option<u32>) -> Result<Instr, DecodeError> {
    use op::*;
    let opcode = first >> 24;
    let ext_or = |_: ()| ext.ok_or(DecodeError::MissingExtWord);
    Ok(match opcode {
        NOP => Instr::Nop,
        HLT => Instr::Hlt,
        MOVR => Instr::MovReg {
            rd: rd_of(first),
            rs: rs_of(first),
        },
        MOVI => Instr::MovImm {
            rd: rd_of(first),
            imm: ext_or(())?,
        },
        ADD => Instr::Add {
            rd: rd_of(first),
            rs: rs_of(first),
        },
        ADDI => Instr::AddImm {
            rd: rd_of(first),
            imm: imm16_of(first),
        },
        SUB => Instr::Sub {
            rd: rd_of(first),
            rs: rs_of(first),
        },
        MUL => Instr::Mul {
            rd: rd_of(first),
            rs: rs_of(first),
        },
        AND => Instr::And {
            rd: rd_of(first),
            rs: rs_of(first),
        },
        OR => Instr::Or {
            rd: rd_of(first),
            rs: rs_of(first),
        },
        XOR => Instr::Xor {
            rd: rd_of(first),
            rs: rs_of(first),
        },
        NOT => Instr::Not { rd: rd_of(first) },
        SHL => Instr::Shl {
            rd: rd_of(first),
            rs: rs_of(first),
        },
        SHR => Instr::Shr {
            rd: rd_of(first),
            rs: rs_of(first),
        },
        CMP => Instr::Cmp {
            rd: rd_of(first),
            rs: rs_of(first),
        },
        CMPI => Instr::CmpImm {
            rd: rd_of(first),
            imm: imm16_of(first),
        },
        LDW => Instr::Ldw {
            rd: rd_of(first),
            rs: rs_of(first),
            disp: imm16_of(first),
        },
        STW => Instr::Stw {
            rd: rd_of(first),
            rs: rs_of(first),
            disp: imm16_of(first),
        },
        LDB => Instr::Ldb {
            rd: rd_of(first),
            rs: rs_of(first),
            disp: imm16_of(first),
        },
        STB => Instr::Stb {
            rd: rd_of(first),
            rs: rs_of(first),
            disp: imm16_of(first),
        },
        JMP => Instr::Jmp {
            target: ext_or(())?,
        },
        JCC => {
            let code = (first >> 21) & 0x7;
            let cond = Cond::from_code(code).ok_or(DecodeError::BadCondition(code))?;
            Instr::Jcc {
                cond,
                target: ext_or(())?,
            }
        }
        JMPR => Instr::JmpReg { rs: rs_of(first) },
        CALL => Instr::Call {
            target: ext_or(())?,
        },
        RET => Instr::Ret,
        PUSH => Instr::Push { rs: rs_of(first) },
        POP => Instr::Pop { rd: rd_of(first) },
        INT => Instr::Int {
            vector: (first & 0xff) as u8,
        },
        IRET => Instr::Iret,
        STI => Instr::Sti,
        CLI => Instr::Cli,
        other => return Err(DecodeError::UnknownOpcode(other as u8)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(instr: Instr) {
        let mut words = Vec::new();
        encode(&instr, &mut words);
        assert_eq!(words.len() * 4, instr.size_bytes() as usize);
        assert_eq!(encoded_len_words(words[0]), words.len());
        let decoded = decode(words[0], words.get(1).copied()).expect("decode");
        assert_eq!(decoded, instr);
    }

    #[test]
    fn roundtrip_all_forms() {
        use crate::isa::{Cond, Reg};
        let samples = [
            Instr::Nop,
            Instr::Hlt,
            Instr::MovReg {
                rd: Reg::R3,
                rs: Reg::R5,
            },
            Instr::MovImm {
                rd: Reg::R7,
                imm: 0xffff_ffff,
            },
            Instr::Add {
                rd: Reg::R0,
                rs: Reg::R1,
            },
            Instr::AddImm {
                rd: Reg::R2,
                imm: -4,
            },
            Instr::Sub {
                rd: Reg::R4,
                rs: Reg::R4,
            },
            Instr::Mul {
                rd: Reg::R1,
                rs: Reg::R6,
            },
            Instr::And {
                rd: Reg::R5,
                rs: Reg::R2,
            },
            Instr::Or {
                rd: Reg::R5,
                rs: Reg::R2,
            },
            Instr::Xor {
                rd: Reg::R5,
                rs: Reg::R2,
            },
            Instr::Not { rd: Reg::R6 },
            Instr::Shl {
                rd: Reg::R1,
                rs: Reg::R0,
            },
            Instr::Shr {
                rd: Reg::R1,
                rs: Reg::R0,
            },
            Instr::Cmp {
                rd: Reg::R3,
                rs: Reg::R2,
            },
            Instr::CmpImm {
                rd: Reg::R3,
                imm: 32767,
            },
            Instr::Ldw {
                rd: Reg::R0,
                rs: Reg::R7,
                disp: -32768,
            },
            Instr::Stw {
                rd: Reg::R7,
                rs: Reg::R0,
                disp: 32767,
            },
            Instr::Ldb {
                rd: Reg::R2,
                rs: Reg::R3,
                disp: 1,
            },
            Instr::Stb {
                rd: Reg::R3,
                rs: Reg::R2,
                disp: -1,
            },
            Instr::Jmp {
                target: 0xdead_beec,
            },
            Instr::Jcc {
                cond: Cond::Nz,
                target: 0x1000,
            },
            Instr::JmpReg { rs: Reg::R4 },
            Instr::Call { target: 0x2000 },
            Instr::Ret,
            Instr::Push { rs: Reg::R6 },
            Instr::Pop { rd: Reg::R6 },
            Instr::Int { vector: 0x30 },
            Instr::Iret,
            Instr::Sti,
            Instr::Cli,
        ];
        for instr in samples {
            roundtrip(instr);
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert_eq!(
            decode(0xff << 24, None),
            Err(DecodeError::UnknownOpcode(0xff))
        );
    }

    #[test]
    fn missing_ext_word_rejected() {
        let mut words = Vec::new();
        encode(&Instr::Jmp { target: 4 }, &mut words);
        assert_eq!(decode(words[0], None), Err(DecodeError::MissingExtWord));
    }

    #[test]
    fn bad_condition_rejected() {
        // JCC with condition code 7 (reserved).
        let first = (super::op::JCC << 24) | (7 << 21);
        assert_eq!(decode(first, Some(0)), Err(DecodeError::BadCondition(7)));
    }

    fn arb_reg() -> impl Strategy<Value = crate::Reg> {
        (0u32..8).prop_map(|i| crate::Reg::from_index(i).unwrap())
    }

    fn arb_cond() -> impl Strategy<Value = crate::Cond> {
        (0u32..6).prop_map(|i| crate::Cond::from_code(i).unwrap())
    }

    /// Every one of the ISA's 31 instruction forms, with arbitrary
    /// operands — keep this exhaustive so the round-trip property covers
    /// any variant added later.
    fn arb_instr() -> impl Strategy<Value = Instr> {
        let rr = |make: fn(crate::Reg, crate::Reg) -> Instr| {
            (arb_reg(), arb_reg()).prop_map(move |(rd, rs)| make(rd, rs))
        };
        let mem = |make: fn(crate::Reg, crate::Reg, i16) -> Instr| {
            (arb_reg(), arb_reg(), any::<i16>()).prop_map(move |(rd, rs, disp)| make(rd, rs, disp))
        };
        prop_oneof![
            Just(Instr::Nop),
            Just(Instr::Hlt),
            rr(|rd, rs| Instr::MovReg { rd, rs }),
            (arb_reg(), any::<u32>()).prop_map(|(rd, imm)| Instr::MovImm { rd, imm }),
            rr(|rd, rs| Instr::Add { rd, rs }),
            (arb_reg(), any::<i16>()).prop_map(|(rd, imm)| Instr::AddImm { rd, imm }),
            rr(|rd, rs| Instr::Sub { rd, rs }),
            rr(|rd, rs| Instr::Mul { rd, rs }),
            rr(|rd, rs| Instr::And { rd, rs }),
            rr(|rd, rs| Instr::Or { rd, rs }),
            rr(|rd, rs| Instr::Xor { rd, rs }),
            arb_reg().prop_map(|rd| Instr::Not { rd }),
            rr(|rd, rs| Instr::Shl { rd, rs }),
            rr(|rd, rs| Instr::Shr { rd, rs }),
            rr(|rd, rs| Instr::Cmp { rd, rs }),
            (arb_reg(), any::<i16>()).prop_map(|(rd, imm)| Instr::CmpImm { rd, imm }),
            mem(|rd, rs, disp| Instr::Ldw { rd, rs, disp }),
            mem(|rd, rs, disp| Instr::Stw { rd, rs, disp }),
            mem(|rd, rs, disp| Instr::Ldb { rd, rs, disp }),
            mem(|rd, rs, disp| Instr::Stb { rd, rs, disp }),
            any::<u32>().prop_map(|target| Instr::Jmp { target }),
            (arb_cond(), any::<u32>()).prop_map(|(cond, target)| Instr::Jcc { cond, target }),
            arb_reg().prop_map(|rs| Instr::JmpReg { rs }),
            any::<u32>().prop_map(|target| Instr::Call { target }),
            Just(Instr::Ret),
            arb_reg().prop_map(|rs| Instr::Push { rs }),
            arb_reg().prop_map(|rd| Instr::Pop { rd }),
            any::<u8>().prop_map(|vector| Instr::Int { vector }),
            Just(Instr::Iret),
            Just(Instr::Sti),
            Just(Instr::Cli),
        ]
    }

    proptest! {
        #[test]
        fn prop_encode_decode_roundtrip(instr in arb_instr()) {
            let mut words = Vec::new();
            encode(&instr, &mut words);
            let decoded = decode(words[0], words.get(1).copied()).unwrap();
            prop_assert_eq!(decoded, instr);
        }

        #[test]
        fn prop_decode_never_panics(first in any::<u32>(), ext in any::<u32>()) {
            let _ = decode(first, Some(ext));
        }
    }
}
