//! Shared basic-block boundary rules for SP32 code.
//!
//! Two independent consumers walk SP32 text looking for block
//! boundaries: `tytan-lint`'s static CFG recovery and `tytan-emu`'s
//! block translation engine. If their notions of "what ends a block"
//! or "what can be fetched here" drift apart, the static and dynamic
//! views of the same program silently diverge — so both are defined
//! once, here, next to the ISA they describe.

use crate::{decode, encoded_len_words, DecodeError, Instr, Reg};

/// How an instruction transfers control, viewed architecturally.
///
/// This is the third shared boundary definition (after
/// [`is_terminator`] / [`ends_block`]): the control-flow attestation
/// plane needs the static side (tytan-lint's admissible-edge
/// extraction) and the dynamic side (tytan-emu's edge monitor) to agree
/// exactly on *which* instructions emit a taken edge and where it can
/// go. Defining the classification here, next to the ISA, keeps the
/// two views from drifting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferKind {
    /// No control transfer: the only successor is fall-through.
    None,
    /// Unconditional direct jump to an absolute target.
    Jump { target: u32 },
    /// Conditional direct jump: taken edge to `target`, else
    /// fall-through.
    CondJump { target: u32 },
    /// Direct call: pushes the return address, jumps to `target`.
    Call { target: u32 },
    /// Indirect jump through `rs`: target known only at runtime.
    IndirectJump { rs: Reg },
    /// Return through the stack: target is the pushed return address.
    Return,
    /// Software interrupt / interrupt return: control leaves the task
    /// through the kernel and is not part of the task's own CFG.
    Interrupt,
    /// `Hlt`: execution stops; no edge is emitted.
    Halt,
}

/// Classifies how `instr` transfers control.
pub fn transfer_kind(instr: &Instr) -> TransferKind {
    match instr {
        Instr::Jmp { target } => TransferKind::Jump { target: *target },
        Instr::Jcc { target, .. } => TransferKind::CondJump { target: *target },
        Instr::Call { target } => TransferKind::Call { target: *target },
        Instr::JmpReg { rs } => TransferKind::IndirectJump { rs: *rs },
        Instr::Ret => TransferKind::Return,
        Instr::Int { .. } | Instr::Iret => TransferKind::Interrupt,
        Instr::Hlt => TransferKind::Halt,
        _ => TransferKind::None,
    }
}

/// True for instructions with no fall-through successor: control never
/// reaches the next sequential instruction.
pub fn is_terminator(instr: &Instr) -> bool {
    matches!(
        instr,
        Instr::Jmp { .. } | Instr::JmpReg { .. } | Instr::Ret | Instr::Iret | Instr::Hlt
    )
}

/// True for instructions that end a basic block: terminators plus the
/// two-successor instructions (`Jcc`, `Call`) whose fall-through starts
/// a new block.
pub fn ends_block(instr: &Instr) -> bool {
    is_terminator(instr) || matches!(instr, Instr::Jcc { .. } | Instr::Call { .. })
}

/// Why a fetch at a pc could not produce an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchError {
    /// The pc is misaligned, or the instruction (first word or
    /// extension word) extends past the end of `text`.
    Unfetchable,
    /// The word(s) at the pc do not decode.
    Decode(DecodeError),
}

/// One instruction fetched from a text byte slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchedInstr {
    /// Address of the first word, relative to the start of `text`.
    pub pc: u32,
    /// The decoded instruction.
    pub instr: Instr,
    /// Encoded size in bytes (4 or 8).
    pub size: u32,
}

fn word_at(text: &[u8], pc: u32) -> u32 {
    let i = pc as usize;
    u32::from_le_bytes([text[i], text[i + 1], text[i + 2], text[i + 3]])
}

/// Fetches and decodes the instruction at `pc` within `text`.
///
/// `pc` is a byte offset into `text`. The alignment and bounds rules
/// are exactly the ones the emulator's fetch path enforces: a
/// misaligned pc or a word that runs off the end of `text` is
/// [`FetchError::Unfetchable`].
pub fn fetch(text: &[u8], pc: u32) -> Result<FetchedInstr, FetchError> {
    let text_len = text.len() as u32;
    if !pc.is_multiple_of(4) || pc.checked_add(4).is_none_or(|end| end > text_len) {
        return Err(FetchError::Unfetchable);
    }
    let first = word_at(text, pc);
    let size = (encoded_len_words(first) * 4) as u32;
    if pc.checked_add(size).is_none_or(|end| end > text_len) {
        return Err(FetchError::Unfetchable);
    }
    let ext = if size == 8 {
        Some(word_at(text, pc + 4))
    } else {
        None
    };
    let instr = decode(first, ext).map_err(FetchError::Decode)?;
    Ok(FetchedInstr { pc, instr, size })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::{Cond, Reg};

    #[test]
    fn terminators_and_block_enders() {
        let jmp = Instr::Jmp { target: 0 };
        let jcc = Instr::Jcc {
            cond: Cond::Z,
            target: 0,
        };
        let call = Instr::Call { target: 0 };
        let nop = Instr::Nop;
        assert!(is_terminator(&jmp));
        assert!(!is_terminator(&jcc));
        assert!(!is_terminator(&call));
        assert!(!is_terminator(&nop));
        assert!(ends_block(&jmp));
        assert!(ends_block(&jcc));
        assert!(ends_block(&call));
        assert!(!ends_block(&nop));
        assert!(is_terminator(&Instr::JmpReg { rs: Reg::R1 }));
        assert!(is_terminator(&Instr::Ret));
        assert!(is_terminator(&Instr::Iret));
        assert!(is_terminator(&Instr::Hlt));
    }

    #[test]
    fn transfer_kinds_cover_the_isa() {
        assert_eq!(
            transfer_kind(&Instr::Jmp { target: 8 }),
            TransferKind::Jump { target: 8 }
        );
        assert_eq!(
            transfer_kind(&Instr::Jcc {
                cond: Cond::Z,
                target: 12
            }),
            TransferKind::CondJump { target: 12 }
        );
        assert_eq!(
            transfer_kind(&Instr::Call { target: 16 }),
            TransferKind::Call { target: 16 }
        );
        assert_eq!(
            transfer_kind(&Instr::JmpReg { rs: Reg::R3 }),
            TransferKind::IndirectJump { rs: Reg::R3 }
        );
        assert_eq!(transfer_kind(&Instr::Ret), TransferKind::Return);
        assert_eq!(
            transfer_kind(&Instr::Int { vector: 1 }),
            TransferKind::Interrupt
        );
        assert_eq!(transfer_kind(&Instr::Iret), TransferKind::Interrupt);
        assert_eq!(transfer_kind(&Instr::Hlt), TransferKind::Halt);
        assert_eq!(transfer_kind(&Instr::Nop), TransferKind::None);
        assert_eq!(
            transfer_kind(&Instr::Push { rs: Reg::R1 }),
            TransferKind::None
        );
    }

    #[test]
    fn fetch_walks_a_program() {
        let program = assemble("main:\n movi r1, 0x12345678\n nop\n hlt\n", 0).unwrap();
        let first = fetch(&program.bytes, 0).unwrap();
        assert_eq!(first.size, 8); // movi with 32-bit immediate
        let second = fetch(&program.bytes, first.size).unwrap();
        assert_eq!(second.instr, Instr::Nop);
        assert_eq!(second.size, 4);
    }

    #[test]
    fn fetch_rejects_misaligned_and_out_of_bounds() {
        let program = assemble("main:\n nop\n", 0).unwrap();
        assert_eq!(fetch(&program.bytes, 1), Err(FetchError::Unfetchable));
        assert_eq!(fetch(&program.bytes, 4), Err(FetchError::Unfetchable));
        assert_eq!(fetch(&program.bytes, !3u32), Err(FetchError::Unfetchable));
    }

    #[test]
    fn fetch_rejects_truncated_extension_word() {
        // A two-word instruction whose extension word is cut off.
        let program = assemble("main:\n movi r1, 0x12345678\n", 0).unwrap();
        assert_eq!(program.bytes.len(), 8);
        assert_eq!(fetch(&program.bytes[..4], 0), Err(FetchError::Unfetchable));
    }

    #[test]
    fn fetch_surfaces_decode_errors() {
        let bytes = [0xff, 0xff, 0xff, 0xff];
        assert!(matches!(fetch(&bytes, 0), Err(FetchError::Decode(_))));
    }
}
