//! SP32: the instruction set of the TyTAN platform simulator.
//!
//! SP32 is a small 32-bit ISA standing in for the Intel Siskiyou Peak core
//! the TyTAN paper (DAC 2015) targets: a flat, physical addressing model,
//! eight general-purpose registers, an `EIP`/`EFLAGS` pair saved by the
//! hardware exception engine, software interrupts (`INT n`) used to invoke
//! the secure IPC proxy, and memory-mapped I/O for peripherals.
//!
//! The crate provides the instruction definitions ([`Instr`]), a binary
//! [`encode`]/[`decode`] pair with fixed 32-bit instruction words (plus one
//! extension word for 32-bit immediates), a two-pass [`asm`] assembler used
//! to author guest tasks, and a [`disasm`] disassembler for debugging.
//!
//! # Examples
//!
//! ```
//! use sp32::asm::assemble;
//!
//! # fn main() -> Result<(), sp32::asm::AssembleError> {
//! let program = assemble(
//!     "start:\n\
//!      movi r0, 41\n\
//!      addi r0, 1\n\
//!      hlt\n",
//!     0x1000,
//! )?;
//! assert_eq!(program.origin, 0x1000);
//! assert!(!program.bytes.is_empty());
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod cfg;
pub mod disasm;
mod encode;
mod isa;

pub use encode::{decode, encode, encoded_len_words, DecodeError};
pub use isa::{Cond, Instr, Reg, EFLAGS_CF, EFLAGS_IF, EFLAGS_SF, EFLAGS_ZF};
