//! Criterion wrapper for the Table 1 use-case experiment: one full
//! before/while/after measurement of the cruise-control scenario.

use criterion::{criterion_group, criterion_main, Criterion};
use tytan::platform::{Platform, PlatformConfig};
use tytan::usecase::CruiseControl;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("use_case_window", |b| {
        b.iter(|| {
            let mut platform: Platform = Platform::boot(PlatformConfig::default()).expect("boots");
            let mut scenario = CruiseControl::install(&mut platform).expect("installs");
            scenario
                .measure_window(&mut platform, 200_000)
                .expect("window")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
