//! Criterion wrapper for Table 5: relocation cost vs. site count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tytan_bench::experiments::measure_relocation;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5");
    for n in [0u32, 1, 2, 4] {
        group.bench_with_input(BenchmarkId::new("relocate", n), &n, |b, &n| {
            b.iter(|| measure_relocation(n))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
