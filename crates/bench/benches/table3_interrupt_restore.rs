//! Criterion wrapper for Table 3: the secure context-restore measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use tytan_bench::experiments::{measure_baseline_restore, measure_secure_restore};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("secure_restore", |b| b.iter(measure_secure_restore));
    group.bench_function("baseline_restore", |b| b.iter(measure_baseline_restore));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
