//! Criterion wrapper for Table 6: EA-MPU dynamic configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tytan_bench::experiments::measure_eampu_config;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6");
    for position in [1usize, 2, 18] {
        group.bench_with_input(
            BenchmarkId::new("configure_slot", position),
            &position,
            |b, &position| b.iter(|| measure_eampu_config(position)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
