//! Criterion wrapper for Table 8: the footprint model (trivially fast;
//! kept so every table has a bench target).

use criterion::{criterion_group, criterion_main, Criterion};
use tytan::footprint;

fn bench(c: &mut Criterion) {
    c.bench_function("table8/footprint", |b| b.iter(footprint::footprint));
}

criterion_group!(benches, bench);
criterion_main!(benches);
