//! Criterion wrapper for the secure IPC latency experiment (§6 text).

use criterion::{criterion_group, criterion_main, Criterion};
use tytan_bench::experiments::measure_ipc;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ipc");
    group.sample_size(10);
    group.bench_function("sync_send", |b| b.iter(measure_ipc));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
