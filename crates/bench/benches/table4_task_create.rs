//! Criterion wrapper for Table 4: dynamic task creation, secure vs normal.

use criterion::{criterion_group, criterion_main, Criterion};
use tytan_bench::experiments::measure_task_create;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    group.bench_function("create_secure_task", |b| {
        b.iter(|| measure_task_create(true))
    });
    group.bench_function("create_normal_task", |b| {
        b.iter(|| measure_task_create(false))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
