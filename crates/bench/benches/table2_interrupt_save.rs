//! Criterion wrapper for Table 2: the secure context-save measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use tytan_bench::experiments::{measure_baseline_save, measure_secure_save};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("secure_save", |b| b.iter(measure_secure_save));
    group.bench_function("baseline_save", |b| b.iter(measure_baseline_save));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
