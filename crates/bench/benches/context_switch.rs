//! Host-side scheduler throughput: full yield round-trips per second on
//! the baseline platform (save stub → kernel → dispatch → restore).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rtos::{layout, Runner, RunnerConfig, StaticTask};

fn yielding_runner() -> Runner {
    let mut runner = Runner::new(RunnerConfig::default()).expect("boots");
    for name in ["a", "b"] {
        runner
            .add_task(StaticTask {
                name: name.into(),
                priority: 1,
                source: format!(
                    "main:\nloop:\n movi r1, 0\n int {vec:#x}\n jmp loop\n",
                    vec = layout::SYSCALL_VECTOR
                ),
                stack_len: 256,
            })
            .expect("adds");
    }
    runner.start().expect("starts");
    runner
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("context_switch");
    const SWITCHES: u64 = 1_000;
    group.throughput(Throughput::Elements(SWITCHES));
    group.bench_function("yield_round_trip", |b| {
        let mut runner = yielding_runner();
        b.iter(|| {
            let start = runner.machine().stats().interrupts;
            while runner.machine().stats().interrupts - start < SWITCHES {
                runner.run_for(100_000).expect("runs");
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
