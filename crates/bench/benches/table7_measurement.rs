//! Criterion wrapper for Table 7: RTM measurement cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tytan_bench::experiments::measure_measurement;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table7");
    for blocks in [1u32, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("measure_blocks", blocks),
            &blocks,
            |b, &n| b.iter(|| measure_measurement(n, 0)),
        );
    }
    for sites in [0u32, 1, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("measure_reverts", sites),
            &sites,
            |b, &n| b.iter(|| measure_measurement(4, n)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
