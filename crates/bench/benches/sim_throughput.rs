//! Host-side throughput of the simulator itself: how many guest
//! instructions per second the interpreter retires, with and without
//! EA-MPU checking. Not a paper table — a health metric for the
//! reproduction substrate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sp32::asm::assemble;
use sp_emu::{Machine, MachineConfig};

fn busy_machine(mpu_enabled: bool) -> Machine {
    let mut machine = Machine::new(MachineConfig::default());
    machine.set_mpu_enabled(mpu_enabled);
    let program = assemble(
        "main:\n movi r1, 0x9000\n movi r2, 0\n\
         loop:\n ldw r3, [r1]\n add r3, r2\n stw [r1], r3\n addi r2, 1\n jmp loop\n",
        0x1000,
    )
    .unwrap();
    machine.load_image(0x1000, &program.bytes).unwrap();
    machine.set_eip(0x1000);
    machine
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    const INSTRUCTIONS: u64 = 10_000;
    group.throughput(Throughput::Elements(INSTRUCTIONS));
    for (label, mpu) in [("mpu_on", true), ("mpu_off", false)] {
        group.bench_function(label, |b| {
            let mut machine = busy_machine(mpu);
            b.iter(|| {
                let start = machine.stats().instructions;
                while machine.stats().instructions - start < INSTRUCTIONS {
                    machine.run(50_000);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
