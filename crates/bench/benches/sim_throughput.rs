//! Host-side throughput of the simulator itself: how many guest
//! instructions per second each execution engine retires. Not a paper
//! table — a health metric for the reproduction substrate, and the
//! before/after yardstick for the engines (fast interpreter, block
//! translator) against the legacy reference loop.
//!
//! Workloads:
//! - `mpu_on` / `mpu_off` — the plain compute loop, with and without
//!   EA-MPU checking (fast interpreter, the default).
//! - `mpu_on_translated` / `mpu_off_translated` — the same loops on the
//!   block translation engine; `mpu_on` vs. `mpu_on_translated` is the
//!   translator speedup over the interpreter.
//! - `mpu_on_fast_off` — the same loop on the legacy per-instruction
//!   reference loop; `mpu_on` vs. this is the fast-path speedup.
//! - `mmio_heavy` — every iteration reads a sensor register and writes a
//!   UART register, so device routing dominates.
//! - `irq_heavy` — a ~200-cycle timer interrupt storm through the IDT.
//! - `smc_thrash` — self-modifying code: every iteration stores into its
//!   own code line, invalidating the predecode and translation caches
//!   (worst case).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sp32::asm::assemble;
use sp_emu::devices::{Sensor, Timer, Uart};
use sp_emu::{EngineKind, Machine, MachineConfig};

fn machine_with(engine: EngineKind, mpu_enabled: bool) -> Machine {
    let mut machine = Machine::new(MachineConfig {
        engine,
        ..MachineConfig::default()
    });
    machine.set_mpu_enabled(mpu_enabled);
    machine
}

fn load(machine: &mut Machine, source: &str) {
    let program = assemble(source, 0x1000).unwrap();
    machine.load_image(0x1000, &program.bytes).unwrap();
    machine.set_eip(0x1000);
}

fn busy_machine(engine: EngineKind, mpu_enabled: bool) -> Machine {
    let mut machine = machine_with(engine, mpu_enabled);
    load(
        &mut machine,
        "main:\n movi r1, 0x9000\n movi r2, 0\n\
         loop:\n ldw r3, [r1]\n add r3, r2\n stw [r1], r3\n addi r2, 1\n jmp loop\n",
    );
    machine
}

fn mmio_machine() -> Machine {
    let mut machine = machine_with(EngineKind::Fast, true);
    machine.add_device(Box::new(Sensor::new(0xf000_0110, 7)));
    machine.add_device(Box::new(Uart::new(0xf000_0200)));
    load(
        &mut machine,
        "main:\n movi r1, 0xf0000110\n movi r2, 0xf0000200\n\
         loop:\n ldw r3, [r1]\n stw [r2], r3\n jmp loop\n",
    );
    machine
}

fn irq_machine() -> Machine {
    let mut machine = machine_with(EngineKind::Fast, true);
    let program = assemble(
        "main:\n sti\nloop:\n addi r2, 1\n jmp loop\n\
         handler:\n addi r3, 1\n iret\n",
        0x1000,
    )
    .unwrap();
    let handler = program.symbol("handler").unwrap();
    machine.load_image(0x1000, &program.bytes).unwrap();
    machine.set_eip(0x1000);
    machine.set_reg(sp32::Reg::R7, 0x8000);
    machine.set_idt_base(0x40);
    machine.set_idt_entry(32, handler).unwrap();
    let timer = machine.add_device(Box::new(Timer::new(0xf000_0000, 32)));
    machine
        .device_mut::<Timer>(timer)
        .unwrap()
        .configure(200, true);
    machine
}

fn smc_machine() -> Machine {
    let mut machine = machine_with(EngineKind::Fast, true);
    // The store rewrites `target` with its own current encoding: semantics
    // never change, but the predecode line is invalidated every iteration.
    load(
        &mut machine,
        "main:\n movi r1, target\n ldw r2, [r1]\n\
         loop:\ntarget:\n addi r4, 1\n stw [r1], r2\n jmp loop\n",
    );
    machine
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    const INSTRUCTIONS: u64 = 10_000;
    group.throughput(Throughput::Elements(INSTRUCTIONS));
    type Case = (&'static str, fn() -> Machine);
    let cases: Vec<Case> = vec![
        ("mpu_on", || busy_machine(EngineKind::Fast, true)),
        ("mpu_off", || busy_machine(EngineKind::Fast, false)),
        ("mpu_on_translated", || {
            busy_machine(EngineKind::Translated, true)
        }),
        ("mpu_off_translated", || {
            busy_machine(EngineKind::Translated, false)
        }),
        ("mpu_on_fast_off", || busy_machine(EngineKind::Legacy, true)),
        ("mmio_heavy", mmio_machine),
        ("irq_heavy", irq_machine),
        ("smc_thrash", smc_machine),
    ];
    for (label, build) in cases {
        group.bench_function(label, |b| {
            let mut machine = build();
            b.iter(|| {
                let start = machine.stats().instructions;
                while machine.stats().instructions - start < INSTRUCTIONS {
                    machine.run(50_000);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
