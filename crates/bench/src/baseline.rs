//! The bench regression gate: compares a freshly rendered
//! `BENCH_tables.json` against a checked-in baseline.
//!
//! Both documents are flattened to `metric-key → value` maps
//! (`tables.<id>.<label>`, `counters.<name>`, `latency.<name>.<field>`)
//! and every baseline metric is checked against the current value under a
//! per-family tolerance. The gate is **two-sided**: a metric that got
//! *better* beyond tolerance also fails, because an unexplained
//! improvement usually means the measurement changed, not the code — the
//! fix is to regenerate the baseline deliberately, with review.
//!
//! Wall-clock-dependent metrics (`host_guest_ips`, rows measured in
//! `images/s`, `instr/s`, `atts/s`, or host-nanosecond `ns`) are
//! excluded: they vary with the CI host and would make the gate flaky. Everything else in the document is
//! simulated-cycle-derived and deterministic, so tolerances exist only to
//! absorb deliberate small cost-model adjustments and histogram bin
//! granularity (log-linear bins are exact below 16 and within 1/16
//! above — see `tytan_trace::hist`).
//!
//! Metrics present in the baseline but missing from the current document
//! are violations (a silently dropped measurement is a regression of the
//! harness itself); metrics new in the current document are reported as
//! skipped, not failed, so adding coverage never breaks the gate.

use tytan_trace::json::{self, Value};

/// Relative/absolute tolerance pair: a change is accepted when it is
/// within `rel * baseline` **or** within `abs` of the baseline,
/// whichever is looser (the absolute floor keeps tiny baselines from
/// rejecting ±1-cycle jitter).
#[derive(Debug, Clone, Copy)]
struct Tolerance {
    rel: f64,
    abs: f64,
}

impl Tolerance {
    fn allows(self, baseline: f64, current: f64) -> bool {
        let delta = (current - baseline).abs();
        delta <= self.abs || delta <= self.rel * baseline.abs()
    }
}

/// Deterministic cycle counts and derived kHz figures move only when the
/// cost model deliberately changes.
const TABLE_TOLERANCE: Tolerance = Tolerance {
    rel: 0.02,
    abs: 16.0,
};
/// Raw event counters may drift slightly with workload re-tuning.
const COUNTER_TOLERANCE: Tolerance = Tolerance {
    rel: 0.05,
    abs: 16.0,
};
/// Event counts per distribution are near-deterministic.
const LATENCY_COUNT_TOLERANCE: Tolerance = Tolerance {
    rel: 0.02,
    abs: 4.0,
};
/// Quantiles carry up to 1/16 log-linear bin error on top of genuine
/// cost-model slack.
const LATENCY_QUANTILE_TOLERANCE: Tolerance = Tolerance {
    rel: 0.125,
    abs: 16.0,
};
/// The max is a single-sample extreme; give it the widest band.
const LATENCY_MAX_TOLERANCE: Tolerance = Tolerance {
    rel: 0.25,
    abs: 32.0,
};

/// Row units whose values depend on host wall-clock speed, not simulated
/// cycles — excluded from the gate.
const WALL_CLOCK_UNITS: &[&str] = &["images/s", "instr/s", "speedup", "atts/s", "ns"];

/// Outcome of a baseline comparison.
#[derive(Debug, Default)]
pub struct Comparison {
    /// Number of metrics checked against a tolerance.
    pub checked: usize,
    /// Metrics present but not gated (wall-clock, or new since the
    /// baseline), with the reason.
    pub skipped: Vec<String>,
    /// Tolerance violations, human-readable, one per metric.
    pub violations: Vec<String>,
}

impl Comparison {
    /// True when every gated metric stayed within tolerance.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One flattened metric: key, value, tolerance family, and whether the
/// gate should ignore it.
struct Metric {
    key: String,
    value: f64,
    tolerance: Tolerance,
    wall_clock: bool,
}

/// Compares two rendered `BENCH_tables.json` documents.
///
/// # Errors
///
/// Returns a message when either document fails to parse or lacks the
/// expected top-level shape; tolerance violations are *not* errors — they
/// are reported in [`Comparison::violations`].
pub fn compare_documents(baseline: &str, current: &str) -> Result<Comparison, String> {
    let baseline = flatten(baseline).map_err(|e| format!("baseline: {e}"))?;
    let current = flatten(current).map_err(|e| format!("current: {e}"))?;

    let mut cmp = Comparison::default();
    for m in &baseline {
        if m.wall_clock {
            cmp.skipped
                .push(format!("{} (wall-clock, not gated)", m.key));
            continue;
        }
        let Some(cur) = current.iter().find(|c| c.key == m.key) else {
            cmp.violations.push(format!(
                "{}: present in baseline ({}) but missing from current document",
                m.key, m.value
            ));
            continue;
        };
        cmp.checked += 1;
        if !m.tolerance.allows(m.value, cur.value) {
            let direction = if cur.value > m.value {
                "regressed"
            } else {
                "improved beyond tolerance (regenerate the baseline if intended)"
            };
            cmp.violations.push(format!(
                "{}: {} — baseline {}, current {} ({:+.1}%, allowed ±{:.1}% or ±{})",
                m.key,
                direction,
                m.value,
                cur.value,
                percent_change(m.value, cur.value),
                m.tolerance.rel * 100.0,
                m.tolerance.abs,
            ));
        }
    }
    for c in &current {
        if !c.wall_clock && !baseline.iter().any(|m| m.key == c.key) {
            cmp.skipped
                .push(format!("{} (new since baseline, not gated)", c.key));
        }
    }
    Ok(cmp)
}

fn percent_change(baseline: f64, current: f64) -> f64 {
    if baseline == 0.0 {
        if current == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (current - baseline) / baseline.abs() * 100.0
    }
}

/// Flattens a `BENCH_tables.json` document into gateable metrics.
fn flatten(doc: &str) -> Result<Vec<Metric>, String> {
    let doc = json::parse(doc).map_err(|e| format!("JSON parse error: {e}"))?;
    let mut out = Vec::new();

    if let Some(ips) = doc.get("host_guest_ips").and_then(Value::as_number) {
        out.push(Metric {
            key: "host_guest_ips".to_string(),
            value: ips,
            tolerance: TABLE_TOLERANCE,
            wall_clock: true,
        });
    }

    let Some(Value::Object(counters)) = doc.get("counters") else {
        return Err("missing \"counters\" object".to_string());
    };
    for (name, value) in counters {
        if let Value::Number(n) = value {
            out.push(Metric {
                key: format!("counters.{name}"),
                value: *n,
                tolerance: COUNTER_TOLERANCE,
                wall_clock: false,
            });
        }
    }

    let Some(Value::Object(latency)) = doc.get("latency") else {
        return Err("missing \"latency\" object".to_string());
    };
    for (name, summary) in latency {
        for (field, tolerance) in [
            ("count", LATENCY_COUNT_TOLERANCE),
            ("p50", LATENCY_QUANTILE_TOLERANCE),
            ("p90", LATENCY_QUANTILE_TOLERANCE),
            ("p99", LATENCY_QUANTILE_TOLERANCE),
            ("max", LATENCY_MAX_TOLERANCE),
        ] {
            if let Some(v) = summary.get(field).and_then(Value::as_number) {
                out.push(Metric {
                    key: format!("latency.{name}.{field}"),
                    value: v,
                    tolerance,
                    wall_clock: false,
                });
            }
        }
    }

    let Some(Value::Array(tables)) = doc.get("tables") else {
        return Err("missing \"tables\" array".to_string());
    };
    for table in tables {
        let id = table
            .get("id")
            .and_then(Value::as_str)
            .ok_or("table without \"id\"")?;
        let Some(Value::Array(rows)) = table.get("rows") else {
            return Err(format!("table {id:?} without \"rows\""));
        };
        for row in rows {
            let label = row
                .get("label")
                .and_then(Value::as_str)
                .ok_or("row without \"label\"")?;
            let unit = row.get("unit").and_then(Value::as_str).unwrap_or("");
            let Some(measured) = row.get("measured").and_then(Value::as_number) else {
                continue;
            };
            out.push(Metric {
                key: format!("tables.{id}.{label}"),
                value: measured,
                tolerance: TABLE_TOLERANCE,
                wall_clock: WALL_CLOCK_UNITS.contains(&unit),
            });
        }
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(tweak: impl FnOnce(&mut String)) -> String {
        let mut s = String::from(
            r#"{
              "host_guest_ips": 1000000,
              "counters": {
                "predecode_hit_rate": 0.97,
                "emu_instr_alu": 12345
              },
              "latency": {
                "lat_irq_entry": {"count": 15, "p50": 180, "p90": 220, "p99": 260, "max": 291},
                "lat_ipc_rtt": {"count": 1, "p50": 1280, "p90": 1280, "p99": 1280, "max": 1300}
              },
              "tables": [
                {
                  "id": "table2",
                  "title": "demo",
                  "rows": [
                    {"label": "overall", "paper": 95, "measured": 9500, "unit": "cycles"},
                    {"label": "throughput", "paper": null, "measured": 123456, "unit": "instr/s"}
                  ]
                }
              ]
            }"#,
        );
        tweak(&mut s);
        s
    }

    #[test]
    fn identical_documents_pass() {
        let cmp = compare_documents(&doc(|_| {}), &doc(|_| {})).expect("parses");
        assert!(cmp.passed(), "{:?}", cmp.violations);
        // host_guest_ips and the instr/s row are skipped, not checked.
        assert!(cmp.checked >= 12, "checked {}", cmp.checked);
        assert_eq!(cmp.skipped.len(), 2, "{:?}", cmp.skipped);
    }

    #[test]
    fn cycle_regression_beyond_tolerance_fails() {
        // +10% on a cycles row, far past the ±2% table tolerance.
        let current = doc(|s| {
            *s = s.replace("\"measured\": 9500", "\"measured\": 10450");
        });
        let cmp = compare_documents(&doc(|_| {}), &current).expect("parses");
        assert!(!cmp.passed());
        assert!(
            cmp.violations
                .iter()
                .any(|v| v.contains("tables.table2.overall") && v.contains("regressed")),
            "{:?}",
            cmp.violations
        );
    }

    #[test]
    fn improvement_beyond_tolerance_also_fails() {
        let current = doc(|s| {
            *s = s.replace("\"measured\": 9500", "\"measured\": 8000");
        });
        let cmp = compare_documents(&doc(|_| {}), &current).expect("parses");
        assert!(
            cmp.violations
                .iter()
                .any(|v| v.contains("tables.table2.overall") && v.contains("improved")),
            "{:?}",
            cmp.violations
        );
    }

    #[test]
    fn latency_quantile_within_bin_slack_passes() {
        // +10% on p99 stays inside the ±12.5% quantile tolerance.
        let current = doc(|s| {
            *s = s.replace("\"p99\": 260", "\"p99\": 286");
        });
        let cmp = compare_documents(&doc(|_| {}), &current).expect("parses");
        assert!(cmp.passed(), "{:?}", cmp.violations);
    }

    #[test]
    fn latency_quantile_beyond_slack_fails() {
        let current = doc(|s| {
            *s = s.replace("\"p99\": 260", "\"p99\": 340");
        });
        let cmp = compare_documents(&doc(|_| {}), &current).expect("parses");
        assert!(
            cmp.violations
                .iter()
                .any(|v| v.contains("latency.lat_irq_entry.p99")),
            "{:?}",
            cmp.violations
        );
    }

    #[test]
    fn small_absolute_changes_on_tiny_baselines_pass() {
        // count 15 → 17 is +13% relative but within the ±4 absolute floor.
        let current = doc(|s| {
            *s = s.replace("\"count\": 15", "\"count\": 17");
        });
        let cmp = compare_documents(&doc(|_| {}), &current).expect("parses");
        assert!(cmp.passed(), "{:?}", cmp.violations);
    }

    #[test]
    fn wall_clock_metrics_are_ignored() {
        // Halve the host simulation rate and the instr/s row: not gated.
        let current = doc(|s| {
            *s = s
                .replace("\"host_guest_ips\": 1000000", "\"host_guest_ips\": 500000")
                .replace("\"measured\": 123456", "\"measured\": 61728");
        });
        let cmp = compare_documents(&doc(|_| {}), &current).expect("parses");
        assert!(cmp.passed(), "{:?}", cmp.violations);
    }

    #[test]
    fn metric_missing_from_current_is_a_violation() {
        let current = doc(|s| {
            *s = s.replace(
                "\"predecode_hit_rate\": 0.97,\n                \"emu_instr_alu\": 12345",
                "\"predecode_hit_rate\": 0.97",
            );
        });
        let cmp = compare_documents(&doc(|_| {}), &current).expect("parses");
        assert!(
            cmp.violations
                .iter()
                .any(|v| v.contains("counters.emu_instr_alu") && v.contains("missing")),
            "{:?}",
            cmp.violations
        );
    }

    #[test]
    fn new_metric_in_current_is_skipped_not_failed() {
        let current = doc(|s| {
            *s = s.replace(
                "\"emu_instr_alu\": 12345",
                "\"emu_instr_alu\": 12345, \"emu_instr_new\": 7",
            );
        });
        let cmp = compare_documents(&doc(|_| {}), &current).expect("parses");
        assert!(cmp.passed(), "{:?}", cmp.violations);
        assert!(
            cmp.skipped
                .iter()
                .any(|s| s.contains("counters.emu_instr_new") && s.contains("new since baseline")),
            "{:?}",
            cmp.skipped
        );
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(compare_documents("not json", &doc(|_| {}))
            .unwrap_err()
            .contains("baseline"));
        assert!(compare_documents(&doc(|_| {}), "{}")
            .unwrap_err()
            .contains("current"));
    }
}
