//! Prints every reproduced table/figure of the paper's evaluation.
//!
//! Run with: `cargo run -p tytan-bench --bin tables --release`
//!
//! With `--json`, additionally emits the same data as JSON — paper value,
//! measured value, and unit per row, plus the host-side simulation rate
//! (`host_guest_ips`) — and writes it to `BENCH_tables.json` in the
//! current directory.

use tytan_bench::{experiments, render, render_json};

fn main() {
    let json_mode = std::env::args().any(|arg| arg == "--json");
    let tables = experiments::all();
    if json_mode {
        let json = render_json(&tables, experiments::host_guest_ips());
        if let Err(err) = std::fs::write("BENCH_tables.json", &json) {
            eprintln!("warning: could not write BENCH_tables.json: {err}");
        }
        print!("{json}");
        return;
    }
    println!("TyTAN (DAC 2015) — reproduced evaluation");
    println!("paper values vs. cycle counts measured on the simulated platform");
    println!();
    for table in tables {
        println!("{}", render(&table));
    }
}
