//! Prints every reproduced table/figure of the paper's evaluation.
//!
//! Run with: `cargo run -p tytan-bench --bin tables --release`

use tytan_bench::{experiments, render};

fn main() {
    println!("TyTAN (DAC 2015) — reproduced evaluation");
    println!("paper values vs. cycle counts measured on the simulated platform");
    println!();
    for table in experiments::all() {
        println!("{}", render(&table));
    }
}
