//! Prints every reproduced table/figure of the paper's evaluation.
//!
//! Run with: `cargo run -p tytan-bench --bin tables --release`
//!
//! Flags (combinable):
//!
//! - `--json`: additionally emits the same data as JSON — paper value,
//!   measured value, and unit per row, the host-side simulation rate
//!   (`host_guest_ips`), and the fast-path cache counters — and writes it
//!   to `BENCH_tables.json` in the current directory.
//! - `--check`: validates the JSON document against the checked-in schema
//!   (`crates/bench/schema/bench_tables.schema.json`) and exits nonzero on
//!   any violation. Implies computing the document; combine with `--json`
//!   to also write it.
//! - `--trace`: runs the traced paper workload and writes its Chrome
//!   `trace_event` export to `BENCH_trace.json` (load in `chrome://tracing`
//!   or Perfetto).

use tytan_bench::{experiments, render, render_json, schema};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for arg in &args {
        if !matches!(arg.as_str(), "--json" | "--check" | "--trace") {
            eprintln!("unknown flag {arg}; known flags: --json --check --trace");
            std::process::exit(2);
        }
    }
    let json_mode = args.iter().any(|a| a == "--json");
    let check_mode = args.iter().any(|a| a == "--check");
    let trace_mode = args.iter().any(|a| a == "--trace");

    if trace_mode {
        let trace = experiments::chrome_trace_use_case();
        if let Err(err) = std::fs::write("BENCH_trace.json", &trace) {
            eprintln!("error: could not write BENCH_trace.json: {err}");
            std::process::exit(1);
        }
        eprintln!("wrote BENCH_trace.json ({} bytes)", trace.len());
        if !json_mode && !check_mode {
            return;
        }
    }

    if json_mode || check_mode {
        let tables = experiments::all();
        let counters = experiments::fast_path_counters();
        let json = render_json(&tables, experiments::host_guest_ips(), &counters);
        if check_mode {
            if let Err(errors) = schema::check_bench_tables(&json) {
                eprintln!("BENCH_tables.json violates its schema:");
                for error in errors {
                    eprintln!("  - {error}");
                }
                std::process::exit(1);
            }
            eprintln!("schema check passed");
        }
        if json_mode {
            if let Err(err) = std::fs::write("BENCH_tables.json", &json) {
                eprintln!("warning: could not write BENCH_tables.json: {err}");
            }
            print!("{json}");
        }
        return;
    }

    println!("TyTAN (DAC 2015) — reproduced evaluation");
    println!("paper values vs. cycle counts measured on the simulated platform");
    println!();
    for table in experiments::all() {
        println!("{}", render(&table));
    }
}
