//! Prints every reproduced table/figure of the paper's evaluation.
//!
//! Run with: `cargo run -p tytan-bench --bin tables --release`
//!
//! Flags (combinable):
//!
//! - `--json`: additionally emits the same data as JSON — paper value,
//!   measured value, and unit per row, the host-side simulation rate
//!   (`host_guest_ips`), the fast-path cache counters, and the latency
//!   histogram summaries of the observed workload — and writes it to
//!   `BENCH_tables.json` in the current directory.
//! - `--check`: validates the JSON document against the checked-in schema
//!   (`crates/bench/schema/bench_tables.schema.json`) and exits nonzero on
//!   any violation. Implies computing the document; combine with `--json`
//!   to also write it.
//! - `--baseline <path>`: compares the freshly computed document against a
//!   previously written `BENCH_tables.json` at `<path>` (the regression
//!   gate — see `tytan_bench::baseline`) and exits nonzero on any
//!   tolerance violation. Implies computing the document.
//! - `--trace`: runs the traced paper workload and writes its Chrome
//!   `trace_event` export to `BENCH_trace.json` (load in `chrome://tracing`
//!   or Perfetto).
//! - `--profile`: runs the profiled use-case workload and writes the
//!   folded-stack flamegraph text to `BENCH_profile.folded` (feed to
//!   `flamegraph.pl` or speedscope); prints the top cycle consumers and
//!   symbolization coverage to stderr.
//! - `--engine-floor <x>`: asserts the block translator's speedup over the
//!   fast interpreter (the `translator speedup` row of the
//!   `engine_throughput` table) is at least `<x>`, exiting nonzero
//!   otherwise. Implies computing the document.

use tytan_bench::{baseline, experiments, render, render_json, schema};

fn main() {
    let mut json_mode = false;
    let mut check_mode = false;
    let mut trace_mode = false;
    let mut profile_mode = false;
    let mut baseline_path: Option<String> = None;
    let mut engine_floor: Option<f64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_mode = true,
            "--check" => check_mode = true,
            "--trace" => trace_mode = true,
            "--profile" => profile_mode = true,
            "--baseline" => match args.next() {
                Some(path) => baseline_path = Some(path),
                None => {
                    eprintln!("--baseline requires a path argument");
                    std::process::exit(2);
                }
            },
            "--engine-floor" => match args.next().as_deref().map(str::parse::<f64>) {
                Some(Ok(floor)) => engine_floor = Some(floor),
                _ => {
                    eprintln!("--engine-floor requires a numeric argument");
                    std::process::exit(2);
                }
            },
            _ => {
                eprintln!(
                    "unknown flag {arg}; known flags: --json --check --trace --profile \
                     --baseline <path> --engine-floor <x>"
                );
                std::process::exit(2);
            }
        }
    }

    if trace_mode {
        let trace = experiments::chrome_trace_use_case();
        if let Err(err) = std::fs::write("BENCH_trace.json", &trace) {
            eprintln!("error: could not write BENCH_trace.json: {err}");
            std::process::exit(1);
        }
        eprintln!("wrote BENCH_trace.json ({} bytes)", trace.len());
    }

    if profile_mode {
        let report = experiments::profile_use_case();
        let folded = report.folded();
        if let Err(err) = std::fs::write("BENCH_profile.folded", &folded) {
            eprintln!("error: could not write BENCH_profile.folded: {err}");
            std::process::exit(1);
        }
        eprintln!(
            "wrote BENCH_profile.folded ({} stacks, {:.1}% of {} cycles symbolized)",
            folded.lines().count(),
            report.coverage() * 100.0,
            report.total,
        );
        eprint!("{}", report.top(15));
    }

    if json_mode || check_mode || baseline_path.is_some() || engine_floor.is_some() {
        let tables = experiments::all();
        let counters = experiments::fast_path_counters();
        let latency = experiments::latency_snapshot();
        let json = render_json(&tables, experiments::host_guest_ips(), &counters, &latency);
        if check_mode {
            if let Err(errors) = schema::check_bench_tables(&json) {
                eprintln!("BENCH_tables.json violates its schema:");
                for error in errors {
                    eprintln!("  - {error}");
                }
                std::process::exit(1);
            }
            eprintln!("schema check passed");
        }
        if json_mode {
            if let Err(err) = std::fs::write("BENCH_tables.json", &json) {
                eprintln!("warning: could not write BENCH_tables.json: {err}");
            }
            print!("{json}");
        }
        if let Some(floor) = engine_floor {
            let speedup = tables
                .iter()
                .find(|t| t.id == "engine_throughput")
                .and_then(|t| t.rows.iter().find(|r| r.label == "translator speedup"))
                .map(|r| r.measured);
            match speedup {
                Some(speedup) if speedup >= floor => {
                    eprintln!("engine floor passed: translator speedup {speedup:.2}x >= {floor}x");
                }
                Some(speedup) => {
                    eprintln!(
                        "engine floor FAILED: translator speedup {speedup:.2}x < required {floor}x"
                    );
                    std::process::exit(1);
                }
                None => {
                    eprintln!("engine floor FAILED: no engine_throughput speedup row computed");
                    std::process::exit(1);
                }
            }
        }
        if let Some(path) = baseline_path {
            let old = match std::fs::read_to_string(&path) {
                Ok(contents) => contents,
                Err(err) => {
                    eprintln!("error: could not read baseline {path}: {err}");
                    std::process::exit(1);
                }
            };
            match baseline::compare_documents(&old, &json) {
                Ok(cmp) => {
                    for note in &cmp.skipped {
                        eprintln!("skipped: {note}");
                    }
                    if cmp.passed() {
                        eprintln!(
                            "baseline check passed: {} metric(s) within tolerance of {path}",
                            cmp.checked
                        );
                    } else {
                        eprintln!("baseline check FAILED against {path}:");
                        for violation in &cmp.violations {
                            eprintln!("  - {violation}");
                        }
                        std::process::exit(1);
                    }
                }
                Err(err) => {
                    eprintln!("error: baseline comparison failed: {err}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }

    if trace_mode || profile_mode {
        return;
    }

    println!("TyTAN (DAC 2015) — reproduced evaluation");
    println!("paper values vs. cycle counts measured on the simulated platform");
    println!();
    for table in experiments::all() {
        println!("{}", render(&table));
    }
}
