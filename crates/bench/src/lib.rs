//! The TyTAN evaluation harness.
//!
//! One experiment per table/figure of the paper's evaluation (§6). Every
//! experiment runs the corresponding code path on the simulated platform,
//! measures **simulated clock cycles** (the unit the paper reports), and
//! returns a [`Table`] pairing each measured value with the paper's
//! number. `cargo run -p tytan-bench --bin tables` prints them all; the
//! Criterion benches in `benches/` wrap the same experiments for
//! host-side performance tracking.
//!
//! Absolute cycle counts come from the documented cost model (DESIGN.md)
//! — the reproduced claims are the *shapes*: which phases dominate, what
//! scales linearly in what, and where real-time behaviour holds.

pub mod experiments;

use std::fmt::Write as _;

/// One measured row of an experiment.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (workload/parameter).
    pub label: String,
    /// The paper's reported value, if it reports one for this row.
    pub paper: Option<f64>,
    /// Our measured value.
    pub measured: f64,
    /// Unit of both values.
    pub unit: &'static str,
}

impl Row {
    /// Builds a row with a paper reference value.
    pub fn with_paper(
        label: impl Into<String>,
        paper: f64,
        measured: f64,
        unit: &'static str,
    ) -> Self {
        Row { label: label.into(), paper: Some(paper), measured, unit }
    }

    /// Builds a measurement-only row (no paper counterpart).
    pub fn measured_only(label: impl Into<String>, measured: f64, unit: &'static str) -> Self {
        Row { label: label.into(), paper: None, measured, unit }
    }

    /// measured / paper, when the paper value exists and is nonzero.
    pub fn ratio(&self) -> Option<f64> {
        match self.paper {
            Some(p) if p != 0.0 => Some(self.measured / p),
            _ => None,
        }
    }
}

/// One reproduced table or figure.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id ("table1", …).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// Notes on methodology / interpretation.
    pub note: &'static str,
    /// The rows.
    pub rows: Vec<Row>,
}

/// Renders a table as aligned text.
pub fn render(table: &Table) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} — {} ==", table.id, table.title);
    let width = table.rows.iter().map(|r| r.label.len()).max().unwrap_or(10).max(10);
    let _ = writeln!(
        out,
        "{:width$}  {:>14}  {:>14}  {:>8}  unit",
        "row", "paper", "measured", "ratio",
    );
    for row in &table.rows {
        let paper = match row.paper {
            Some(p) => format_num(p),
            None => "—".to_string(),
        };
        let ratio = match row.ratio() {
            Some(r) => format!("{r:.2}x"),
            None => "—".to_string(),
        };
        let _ = writeln!(
            out,
            "{:width$}  {:>14}  {:>14}  {:>8}  {}",
            row.label,
            paper,
            format_num(row.measured),
            ratio,
            row.unit,
        );
    }
    if !table.note.is_empty() {
        let _ = writeln!(out, "note: {}", table.note);
    }
    out
}

fn format_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        let n = v as i64;
        let raw = n.abs().to_string();
        let mut grouped = String::new();
        for (i, c) in raw.chars().enumerate() {
            if i > 0 && (raw.len() - i).is_multiple_of(3) {
                grouped.push(',');
            }
            grouped.push(c);
        }
        if n < 0 {
            format!("-{grouped}")
        } else {
            grouped
        }
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_ratio() {
        let row = Row::with_paper("x", 100.0, 150.0, "cycles");
        assert_eq!(row.ratio(), Some(1.5));
        assert_eq!(Row::measured_only("y", 1.0, "kHz").ratio(), None);
    }

    #[test]
    fn render_contains_all_rows() {
        let table = Table {
            id: "tableX",
            title: "demo",
            note: "n",
            rows: vec![
                Row::with_paper("alpha", 1000.0, 1100.0, "cycles"),
                Row::measured_only("beta", 2.5, "kHz"),
            ],
        };
        let text = render(&table);
        assert!(text.contains("alpha"));
        assert!(text.contains("beta"));
        assert!(text.contains("1,000"));
        assert!(text.contains("1.10x"));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_num(642241.0), "642,241");
        assert_eq!(format_num(95.0), "95");
        assert_eq!(format_num(15.92), "15.92");
    }
}
