//! The TyTAN evaluation harness.
//!
//! One experiment per table/figure of the paper's evaluation (§6). Every
//! experiment runs the corresponding code path on the simulated platform,
//! measures **simulated clock cycles** (the unit the paper reports), and
//! returns a [`Table`] pairing each measured value with the paper's
//! number. `cargo run -p tytan-bench --bin tables` prints them all; the
//! Criterion benches in `benches/` wrap the same experiments for
//! host-side performance tracking.
//!
//! Absolute cycle counts come from the documented cost model (DESIGN.md)
//! — the reproduced claims are the *shapes*: which phases dominate, what
//! scales linearly in what, and where real-time behaviour holds.

pub mod baseline;
pub mod experiments;
pub mod schema;

use std::fmt::Write as _;
use tytan_trace::hist::Summary;

/// One measured row of an experiment.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (workload/parameter).
    pub label: String,
    /// The paper's reported value, if it reports one for this row.
    pub paper: Option<f64>,
    /// Our measured value.
    pub measured: f64,
    /// Unit of both values.
    pub unit: &'static str,
}

impl Row {
    /// Builds a row with a paper reference value.
    pub fn with_paper(
        label: impl Into<String>,
        paper: f64,
        measured: f64,
        unit: &'static str,
    ) -> Self {
        Row {
            label: label.into(),
            paper: Some(paper),
            measured,
            unit,
        }
    }

    /// Builds a measurement-only row (no paper counterpart).
    pub fn measured_only(label: impl Into<String>, measured: f64, unit: &'static str) -> Self {
        Row {
            label: label.into(),
            paper: None,
            measured,
            unit,
        }
    }

    /// measured / paper, when the paper value exists and is nonzero.
    pub fn ratio(&self) -> Option<f64> {
        match self.paper {
            Some(p) if p != 0.0 => Some(self.measured / p),
            _ => None,
        }
    }
}

/// One reproduced table or figure.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id ("table1", …).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// Notes on methodology / interpretation.
    pub note: &'static str,
    /// The rows.
    pub rows: Vec<Row>,
}

/// Renders a table as aligned text.
pub fn render(table: &Table) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} — {} ==", table.id, table.title);
    let width = table
        .rows
        .iter()
        .map(|r| r.label.len())
        .max()
        .unwrap_or(10)
        .max(10);
    let _ = writeln!(
        out,
        "{:width$}  {:>14}  {:>14}  {:>8}  unit",
        "row", "paper", "measured", "ratio",
    );
    for row in &table.rows {
        let paper = match row.paper {
            Some(p) => format_num(p),
            None => "—".to_string(),
        };
        let ratio = match row.ratio() {
            Some(r) => format!("{r:.2}x"),
            None => "—".to_string(),
        };
        let _ = writeln!(
            out,
            "{:width$}  {:>14}  {:>14}  {:>8}  {}",
            row.label,
            paper,
            format_num(row.measured),
            ratio,
            row.unit,
        );
    }
    if !table.note.is_empty() {
        let _ = writeln!(out, "note: {}", table.note);
    }
    out
}

/// Renders all tables as a JSON document for machine consumption
/// (`tables --json` writes this to `BENCH_tables.json`; the document
/// validates against `schema/bench_tables.schema.json`).
///
/// `host_guest_ips` is the host-side simulation rate (guest instructions
/// per host second) measured on the standard busy loop — the fast-path
/// health metric tracked alongside the paper numbers. `counters` is the
/// flat instrumentation snapshot (see
/// [`experiments::fast_path_counters`]): raw per-layer event counts plus
/// the derived cache hit rates. `latency` is the histogram snapshot of
/// the observed workload (see [`experiments::latency_snapshot`]): one
/// count/p50/p90/p99/max record per measured distribution.
pub fn render_json(
    tables: &[Table],
    host_guest_ips: f64,
    counters: &[(String, f64)],
    latency: &[(String, Summary)],
) -> String {
    let mut out = String::from("{\n");
    let _ = write!(out, "  \"host_guest_ips\": {host_guest_ips:.0},");
    out.push_str("\n  \"counters\": {");
    for (i, (name, value)) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    {}: {}", json_string(name), json_number(*value));
    }
    if !counters.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"latency\": {");
    for (i, (name, s)) in latency.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {}: {{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
            json_string(name),
            s.count,
            s.p50,
            s.p90,
            s.p99,
            s.max,
        );
    }
    if !latency.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"tables\": [");
    for (t, table) in tables.iter().enumerate() {
        if t > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\n      \"id\": {},\n      \"title\": {},\n      \"rows\": [",
            json_string(table.id),
            json_string(table.title),
        );
        for (r, row) in table.rows.iter().enumerate() {
            if r > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n        {{\"label\": {}, \"paper\": {}, \"measured\": {}, \"unit\": {}}}",
                json_string(&row.label),
                row.paper.map_or("null".to_string(), json_number),
                json_number(row.measured),
                json_string(row.unit),
            );
        }
        out.push_str("\n      ]\n    }");
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn format_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        let n = v as i64;
        let raw = n.abs().to_string();
        let mut grouped = String::new();
        for (i, c) in raw.chars().enumerate() {
            if i > 0 && (raw.len() - i).is_multiple_of(3) {
                grouped.push(',');
            }
            grouped.push(c);
        }
        if n < 0 {
            format!("-{grouped}")
        } else {
            grouped
        }
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_ratio() {
        let row = Row::with_paper("x", 100.0, 150.0, "cycles");
        assert_eq!(row.ratio(), Some(1.5));
        assert_eq!(Row::measured_only("y", 1.0, "kHz").ratio(), None);
    }

    #[test]
    fn render_contains_all_rows() {
        let table = Table {
            id: "tableX",
            title: "demo",
            note: "n",
            rows: vec![
                Row::with_paper("alpha", 1000.0, 1100.0, "cycles"),
                Row::measured_only("beta", 2.5, "kHz"),
            ],
        };
        let text = render(&table);
        assert!(text.contains("alpha"));
        assert!(text.contains("beta"));
        assert!(text.contains("1,000"));
        assert!(text.contains("1.10x"));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_num(642241.0), "642,241");
        assert_eq!(format_num(95.0), "95");
        assert_eq!(format_num(15.92), "15.92");
    }

    #[test]
    fn json_rendering() {
        let table = Table {
            id: "tableX",
            title: "demo \"quoted\"",
            note: "n",
            rows: vec![
                Row::with_paper("alpha", 1000.0, 1100.5, "cycles"),
                Row::measured_only("beta", 2.5, "kHz"),
            ],
        };
        let counters = vec![
            ("predecode_hit_rate".to_string(), 0.97),
            ("eampu_cache_hit_rate".to_string(), 0.99),
            ("emu_block_compile".to_string(), 12.0),
            ("emu_block_hit".to_string(), 480.0),
            ("emu_block_invalidate_smc".to_string(), 1.0),
            ("emu_block_invalidate_mpu".to_string(), 2.0),
        ];
        let latency = vec![
            (
                "lat_irq_entry".to_string(),
                Summary {
                    count: 15,
                    sum: 3_000,
                    p50: 180,
                    p90: 220,
                    p99: 260,
                    max: 291,
                },
            ),
            (
                "lat_ctx_save".to_string(),
                Summary {
                    count: 15,
                    sum: 1_500,
                    p50: 96,
                    p90: 100,
                    p99: 104,
                    max: 104,
                },
            ),
            (
                "lat_ctx_restore".to_string(),
                Summary {
                    count: 14,
                    sum: 1_400,
                    p50: 96,
                    p90: 100,
                    p99: 104,
                    max: 104,
                },
            ),
            (
                "lat_ipc_rtt".to_string(),
                Summary {
                    count: 1,
                    sum: 1_300,
                    p50: 1_280,
                    p90: 1_280,
                    p99: 1_280,
                    max: 1_300,
                },
            ),
        ];
        // The schema contract demands the fleet_throughput,
        // cfa_throughput, and verify_cost_breakdown tables with their
        // contractual rows; render all three alongside the demo table.
        let fleet = Table {
            id: "fleet_throughput",
            title: "fleet attestation service",
            note: "n",
            rows: vec![
                Row::measured_only("throughput @1k devices", 4500.0, "atts/s"),
                Row::measured_only("throughput @10k devices", 5190.0, "atts/s"),
                Row::measured_only("verify p50 @10k devices", 1856.0, "ns"),
                Row::measured_only("verify p99 @10k devices", 4608.0, "ns"),
            ],
        };
        let cfa = Table {
            id: "cfa_throughput",
            title: "control-flow attestation plane",
            note: "n",
            rows: vec![
                Row::measured_only("cf reports accepted @1k devices", 1000.0, "count"),
                Row::measured_only("detours rejected inadmissible @1k devices", 100.0, "count"),
                Row::measured_only("cfa verify throughput @1k devices", 3800.0, "atts/s"),
                Row::measured_only("cfa verify p99 @1k devices", 5120.0, "ns"),
            ],
        };
        let cost = Table {
            id: "verify_cost_breakdown",
            title: "verify cost attribution",
            note: "n",
            rows: vec![
                Row::measured_only("cf edges replayed @1k devices", 50_000.0, "count"),
                Row::measured_only("cf log compression ratio @1k devices", 450.0, "x"),
                Row::measured_only("cfa/static verify cost ratio @1k devices", 9.5, "speedup"),
                Row::measured_only("stage hmac p50 (static)", 900.0, "ns"),
                Row::measured_only("stage edge replay p50 (cfa)", 8_000.0, "ns"),
                Row::measured_only("stage chain refold p50 (cfa)", 600.0, "ns"),
            ],
        };
        let json = render_json(
            &[table, fleet, cfa, cost],
            12_345_678.9,
            &counters,
            &latency,
        );
        assert!(json.contains("\"host_guest_ips\": 12345679"));
        assert!(json.contains("\"predecode_hit_rate\": 0.97"));
        assert!(json.contains(
            "\"lat_irq_entry\": {\"count\": 15, \"p50\": 180, \"p90\": 220, \"p99\": 260, \"max\": 291}"
        ));
        assert!(json.contains("\"id\": \"tableX\""));
        assert!(json.contains("\"title\": \"demo \\\"quoted\\\"\""));
        assert!(json.contains("\"paper\": 1000, \"measured\": 1100.5"));
        assert!(json.contains("\"paper\": null, \"measured\": 2.5"));
        let parsed = tytan_trace::json::parse(&json).expect("render_json emits valid JSON");
        assert!(parsed.get("counters").is_some());
        // The rendered document honours the checked-in schema contract.
        schema::check_bench_tables(&json).expect("schema-valid");
    }

    #[test]
    fn json_rendering_with_empty_counters_is_still_valid_json() {
        let json = render_json(&[], 0.0, &[], &[]);
        tytan_trace::json::parse(&json).expect("valid JSON");
    }
}
