//! Schema validation for `BENCH_tables.json`.
//!
//! The schema is checked in at `schema/bench_tables.schema.json` (and
//! embedded here at compile time) so the document shape is a reviewed
//! contract: CI runs `tables --json --check` and fails the build when the
//! emitted document drifts from it.
//!
//! The validator implements the subset of JSON Schema the contract uses —
//! `type` (single name or alternatives), `properties`, `required`,
//! `additionalProperties` (boolean or schema), `items`, `minItems`,
//! `minimum`, `const`, `contains`, and `allOf` — on top of the
//! dependency-free reader in [`tytan_trace::json`]. Unknown keywords are
//! ignored, as JSON Schema specifies.

use tytan_trace::json::{self, Value};

/// The checked-in schema for `BENCH_tables.json`, embedded verbatim.
pub const BENCH_TABLES_SCHEMA: &str = include_str!("../schema/bench_tables.schema.json");

/// Validates a rendered `BENCH_tables.json` document against the
/// checked-in schema.
///
/// # Errors
///
/// Returns every violation found (JSON-path prefixed), or a single parse
/// error if `doc` is not valid JSON.
///
/// # Panics
///
/// Panics if the embedded schema itself fails to parse — a build defect,
/// covered by tests.
pub fn check_bench_tables(doc: &str) -> Result<(), Vec<String>> {
    let schema = json::parse(BENCH_TABLES_SCHEMA).expect("embedded schema parses");
    let doc = json::parse(doc).map_err(|e| vec![format!("JSON parse error: {e}")])?;
    validate(&schema, &doc)
}

/// Validates `doc` against `schema`, returning all violations.
///
/// # Errors
///
/// Returns one message per violation, prefixed with the JSON path (`$` is
/// the document root).
pub fn validate(schema: &Value, doc: &Value) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    validate_at(schema, doc, "$", &mut errors);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn validate_at(schema: &Value, doc: &Value, path: &str, errors: &mut Vec<String>) {
    if let Some(t) = schema.get("type") {
        let names: Vec<&str> = match t {
            Value::String(s) => vec![s.as_str()],
            Value::Array(alternatives) => alternatives.iter().filter_map(Value::as_str).collect(),
            _ => Vec::new(),
        };
        if !names.is_empty() && !names.iter().any(|n| type_matches(n, doc)) {
            errors.push(format!(
                "{path}: expected {}, got {}",
                names.join(" or "),
                doc.type_name()
            ));
            // The structural keywords below assume the right type.
            return;
        }
    }

    if let Some(expected) = schema.get("const") {
        if doc != expected {
            errors.push(format!(
                "{path}: value does not equal the schema const {}",
                brief(expected)
            ));
        }
    }

    if let Some(Value::Array(subschemas)) = schema.get("allOf") {
        for subschema in subschemas {
            validate_at(subschema, doc, path, errors);
        }
    }

    if let (Some(min), Value::Number(n)) = (schema.get("minimum").and_then(Value::as_number), doc) {
        if *n < min {
            errors.push(format!("{path}: {n} is below minimum {min}"));
        }
    }

    if let Value::Object(fields) = doc {
        if let Some(Value::Array(required)) = schema.get("required") {
            for key in required.iter().filter_map(Value::as_str) {
                if doc.get(key).is_none() {
                    errors.push(format!("{path}: missing required property {key:?}"));
                }
            }
        }
        let properties = schema.get("properties");
        for (key, value) in fields {
            let child_path = format!("{path}.{key}");
            match properties.and_then(|p| p.get(key)) {
                Some(property_schema) => validate_at(property_schema, value, &child_path, errors),
                None => match schema.get("additionalProperties") {
                    Some(Value::Bool(false)) => {
                        errors.push(format!("{path}: unexpected property {key:?}"));
                    }
                    Some(additional @ Value::Object(_)) => {
                        validate_at(additional, value, &child_path, errors);
                    }
                    _ => {}
                },
            }
        }
    }

    if let Value::Array(items) = doc {
        if let Some(min) = schema.get("minItems").and_then(Value::as_number) {
            if (items.len() as f64) < min {
                errors.push(format!(
                    "{path}: {} item(s) is below minItems {min}",
                    items.len()
                ));
            }
        }
        if let Some(item_schema) = schema.get("items") {
            for (i, item) in items.iter().enumerate() {
                validate_at(item_schema, item, &format!("{path}[{i}]"), errors);
            }
        }
        if let Some(contains_schema) = schema.get("contains") {
            let matched = items.iter().any(|item| {
                let mut scratch = Vec::new();
                validate_at(contains_schema, item, path, &mut scratch);
                scratch.is_empty()
            });
            if !matched {
                // A failing CI run needs "which required item is wrong",
                // not just "something is missing". When the subschema pins
                // a discriminator (`id`/`label` const) and some item
                // carries it, that item is present but malformed — report
                // its actual violations. Otherwise name the missing const.
                let discriminant = ["id", "label"].iter().find_map(|key| {
                    let pinned = contains_schema.get("properties")?.get(key)?.get("const")?;
                    Some((*key, pinned))
                });
                let candidate = discriminant.and_then(|(key, pinned)| {
                    items
                        .iter()
                        .enumerate()
                        .find(|(_, item)| item.get(key) == Some(pinned))
                });
                match candidate {
                    Some((i, item)) => {
                        validate_at(contains_schema, item, &format!("{path}[{i}]"), errors);
                    }
                    None => {
                        let hint = discriminant
                            .and_then(|(_, pinned)| pinned.as_str())
                            .map(|name| format!(" (no item with {name:?})"))
                            .unwrap_or_default();
                        errors.push(format!(
                            "{path}: no array item matches the `contains` schema{hint}"
                        ));
                    }
                }
            }
        }
    }
}

/// One-line rendering of a schema value for error messages.
fn brief(value: &Value) -> String {
    match value {
        Value::String(s) => format!("{s:?}"),
        Value::Number(n) => format!("{n}"),
        Value::Bool(b) => format!("{b}"),
        Value::Null => "null".to_string(),
        Value::Array(_) => "array".to_string(),
        Value::Object(_) => "object".to_string(),
    }
}

fn type_matches(name: &str, doc: &Value) -> bool {
    match name {
        "object" => matches!(doc, Value::Object(_)),
        "array" => matches!(doc, Value::Array(_)),
        "string" => matches!(doc, Value::String(_)),
        "number" => matches!(doc, Value::Number(_)),
        "integer" => matches!(doc, Value::Number(n) if n.fract() == 0.0),
        "boolean" => matches!(doc, Value::Bool(_)),
        "null" => matches!(doc, Value::Null),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(tweak: impl FnOnce(&mut String)) -> String {
        let mut s = String::from(
            r#"{
              "host_guest_ips": 1000000,
              "counters": {
                "predecode_hit_rate": 0.97,
                "eampu_cache_hit_rate": 0.99,
                "emu_block_compile": 12,
                "emu_block_hit": 480,
                "emu_block_invalidate_smc": 1,
                "emu_block_invalidate_mpu": 2,
                "emu_instr_alu": 12345
              },
              "latency": {
                "lat_irq_entry": {"count": 15, "p50": 180, "p90": 220, "p99": 260, "max": 291},
                "lat_ctx_save": {"count": 15, "p50": 96, "p90": 100, "p99": 104, "max": 104},
                "lat_ctx_restore": {"count": 14, "p50": 96, "p90": 100, "p99": 104, "max": 104},
                "lat_ipc_rtt": {"count": 1, "p50": 1280, "p90": 1280, "p99": 1280, "max": 1300}
              },
              "tables": [
                {
                  "id": "table2",
                  "title": "demo",
                  "rows": [
                    {"label": "overall", "paper": 95, "measured": 95, "unit": "cycles"},
                    {"label": "extra", "paper": null, "measured": 1.5, "unit": "kHz"}
                  ]
                },
                {
                  "id": "fleet_throughput",
                  "title": "fleet attestation service",
                  "rows": [
                    {"label": "throughput @1k devices", "paper": null, "measured": 4500.0, "unit": "atts/s"},
                    {"label": "throughput @10k devices", "paper": null, "measured": 5190.0, "unit": "atts/s"},
                    {"label": "verify p50 @10k devices", "paper": null, "measured": 1856, "unit": "ns"},
                    {"label": "verify p99 @10k devices", "paper": null, "measured": 4608, "unit": "ns"}
                  ]
                },
                {
                  "id": "cfa_throughput",
                  "title": "control-flow attestation plane",
                  "rows": [
                    {"label": "cf reports accepted @1k devices", "paper": null, "measured": 1000, "unit": "count"},
                    {"label": "detours rejected inadmissible @1k devices", "paper": null, "measured": 100, "unit": "count"},
                    {"label": "cfa verify throughput @1k devices", "paper": null, "measured": 3800.0, "unit": "atts/s"},
                    {"label": "cfa verify p99 @1k devices", "paper": null, "measured": 5120, "unit": "ns"}
                  ]
                },
                {
                  "id": "verify_cost_breakdown",
                  "title": "verify cost attribution",
                  "rows": [
                    {"label": "cf edges replayed @1k devices", "paper": null, "measured": 50000, "unit": "count"},
                    {"label": "cf log compression ratio @1k devices", "paper": null, "measured": 450.0, "unit": "x"},
                    {"label": "cfa/static verify cost ratio @1k devices", "paper": null, "measured": 9.5, "unit": "speedup"},
                    {"label": "stage hmac p50 (static)", "paper": null, "measured": 900, "unit": "ns"},
                    {"label": "stage edge replay p50 (cfa)", "paper": null, "measured": 8000, "unit": "ns"},
                    {"label": "stage chain refold p50 (cfa)", "paper": null, "measured": 600, "unit": "ns"}
                  ]
                }
              ]
            }"#,
        );
        tweak(&mut s);
        s
    }

    #[test]
    fn embedded_schema_parses() {
        json::parse(BENCH_TABLES_SCHEMA).expect("schema is valid JSON");
    }

    #[test]
    fn valid_document_passes() {
        check_bench_tables(&doc(|_| {})).expect("valid");
    }

    #[test]
    fn missing_counter_is_reported() {
        let errors = check_bench_tables(&doc(|s| {
            *s = s.replace("predecode_hit_rate", "predecode_hits")
        }))
        .unwrap_err();
        assert!(
            errors
                .iter()
                .any(|e| e.contains("predecode_hit_rate") && e.contains("missing")),
            "{errors:?}"
        );
    }

    #[test]
    fn wrong_type_is_reported_with_path() {
        let errors = check_bench_tables(&doc(|s| {
            *s = s.replace("\"paper\": 95", "\"paper\": \"95\"");
        }))
        .unwrap_err();
        assert!(
            errors
                .iter()
                .any(|e| e.contains("$.tables[0].rows[0].paper") && e.contains("number or null")),
            "{errors:?}"
        );
    }

    #[test]
    fn unexpected_property_is_rejected() {
        let errors = check_bench_tables(&doc(|s| {
            *s = s.replace(
                "\"id\": \"table2\"",
                "\"id\": \"table2\", \"idd\": \"typo\"",
            );
        }))
        .unwrap_err();
        assert!(errors.iter().any(|e| e.contains("\"idd\"")), "{errors:?}");
    }

    #[test]
    fn non_numeric_counter_is_rejected() {
        let errors = check_bench_tables(&doc(|s| {
            *s = s.replace("12345", "\"many\"");
        }))
        .unwrap_err();
        assert!(
            errors
                .iter()
                .any(|e| e.contains("$.counters.emu_instr_alu")),
            "{errors:?}"
        );
    }

    #[test]
    fn missing_latency_distribution_is_reported() {
        let errors = check_bench_tables(&doc(|s| {
            *s = s.replace("lat_irq_entry", "lat_irq_entrance");
        }))
        .unwrap_err();
        assert!(
            errors
                .iter()
                .any(|e| e.contains("lat_irq_entry") && e.contains("missing")),
            "{errors:?}"
        );
    }

    #[test]
    fn malformed_latency_summary_is_rejected() {
        let errors = check_bench_tables(&doc(|s| {
            *s = s.replace("\"p50\": 180", "\"p50\": \"fast\"");
        }))
        .unwrap_err();
        assert!(
            errors
                .iter()
                .any(|e| e.contains("$.latency.lat_irq_entry.p50")),
            "{errors:?}"
        );
    }

    #[test]
    fn empty_tables_violate_min_items() {
        let valid = doc(|_| {});
        let start = valid.find("\"tables\"").unwrap();
        let truncated = format!("{}\"tables\": []\n}}", &valid[..start]);
        let errors = check_bench_tables(&truncated).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("minItems")), "{errors:?}");
    }

    #[test]
    fn garbage_input_reports_parse_error() {
        let errors = check_bench_tables("not json").unwrap_err();
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("parse error"));
    }

    #[test]
    fn missing_fleet_table_is_reported() {
        let errors = check_bench_tables(&doc(|s| {
            *s = s.replace("\"id\": \"fleet_throughput\"", "\"id\": \"fleet_renamed\"");
        }))
        .unwrap_err();
        assert!(
            errors
                .iter()
                .any(|e| e.contains("contains") && e.contains("fleet_throughput")),
            "{errors:?}"
        );
    }

    #[test]
    fn missing_cfa_table_is_reported() {
        let errors = check_bench_tables(&doc(|s| {
            *s = s.replace("\"id\": \"cfa_throughput\"", "\"id\": \"cfa_renamed\"");
        }))
        .unwrap_err();
        assert!(
            errors
                .iter()
                .any(|e| e.contains("contains") && e.contains("cfa_throughput")),
            "{errors:?}"
        );
    }

    #[test]
    fn missing_verify_cost_table_is_reported() {
        let errors = check_bench_tables(&doc(|s| {
            *s = s.replace(
                "\"id\": \"verify_cost_breakdown\"",
                "\"id\": \"verify_cost_renamed\"",
            );
        }))
        .unwrap_err();
        assert!(
            errors
                .iter()
                .any(|e| e.contains("contains") && e.contains("verify_cost_breakdown")),
            "{errors:?}"
        );
    }

    #[test]
    fn cfa_table_missing_its_rejection_row_is_reported() {
        // The detour-rejection count is the row the CFA gate exists for;
        // a document without it must fail the contract, with the missing
        // label named.
        let errors = check_bench_tables(&doc(|s| {
            *s = s.replace(
                "detours rejected inadmissible @1k devices",
                "detours waved through",
            );
        }))
        .unwrap_err();
        assert!(
            errors.iter().any(|e| e.contains("contains")
                && e.contains("detours rejected inadmissible @1k devices")),
            "{errors:?}"
        );
    }

    #[test]
    fn fleet_table_missing_a_required_row_is_reported() {
        let errors = check_bench_tables(&doc(|s| {
            *s = s.replace("throughput @10k devices", "throughput at ten thousand");
        }))
        .unwrap_err();
        assert!(
            errors
                .iter()
                .any(|e| e.contains("contains") && e.contains("throughput @10k devices")),
            "{errors:?}"
        );
    }

    #[test]
    fn fleet_row_with_wrong_unit_is_reported() {
        // The p99 row must be in host nanoseconds; retagging it breaks the
        // `const` inside the row-level `contains`.
        let errors = check_bench_tables(&doc(|s| {
            *s = s.replace(
                "{\"label\": \"verify p99 @10k devices\", \"paper\": null, \"measured\": 4608, \"unit\": \"ns\"}",
                "{\"label\": \"verify p99 @10k devices\", \"paper\": null, \"measured\": 4608, \"unit\": \"cycles\"}",
            );
        }))
        .unwrap_err();
        assert!(
            errors
                .iter()
                .any(|e| e.contains(".unit") && e.contains("\"ns\"")),
            "{errors:?}"
        );
    }

    #[test]
    fn const_keyword_pins_exact_values() {
        let schema = json::parse(r#"{"properties": {"v": {"const": 7}}}"#).unwrap();
        assert!(validate(&schema, &json::parse(r#"{"v": 7}"#).unwrap()).is_ok());
        let errors = validate(&schema, &json::parse(r#"{"v": 8}"#).unwrap()).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("$.v")), "{errors:?}");
    }

    #[test]
    fn all_of_reports_every_failing_branch() {
        let schema =
            json::parse(r#"{"allOf": [{"required": ["a"]}, {"required": ["b"]}]}"#).unwrap();
        assert!(validate(&schema, &json::parse(r#"{"a": 1, "b": 2}"#).unwrap()).is_ok());
        let errors = validate(&schema, &json::parse("{}").unwrap()).unwrap_err();
        assert_eq!(errors.len(), 2, "{errors:?}");
    }

    #[test]
    fn contains_needs_only_one_matching_item() {
        let schema = json::parse(r#"{"contains": {"const": 3}}"#).unwrap();
        assert!(validate(&schema, &json::parse("[1, 2, 3]").unwrap()).is_ok());
        let errors = validate(&schema, &json::parse("[1, 2]").unwrap()).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("contains")), "{errors:?}");
    }
}
