//! The experiments: one function per table/figure of the paper.

use crate::{Row, Table};
use eampu::{EaMpu, Perms, Region, Rule};
use rtos::{layout, Runner, RunnerConfig, StaticTask};
use sp_emu::{EngineKind, Event, Machine, MachineConfig};
use std::sync::Arc;
use tytan::allocator::Allocator;
use tytan::footprint;
use tytan::loader::{LoadJob, LoadProgress, LoadReport};
use tytan::platform::{LoadStatus, Platform, PlatformConfig};
use tytan::rtm::{MeasureJob, MeasureProgress, Rtm};
use tytan::toolchain::{build_normal_task, SecureTaskBuilder, TaskSource};
use tytan::usecase::{engine_control_source, radar_monitor_source, CruiseControl};
use tytan_crypto::{Sha1, TaskId};
use tytan_fleet::{run_fleet, run_fleet_with_tracer, FleetConfig};
use tytan_image::TaskImage;
use tytan_lint::{LintPolicy, Linter, Severity};
use tytan_profile::{CycleProfiler, Report};
use tytan_trace::hist::Summary;
use tytan_trace::{chrome, RingRecorder, Tracer};

fn boot() -> Platform {
    boot_with(MachineConfig::default())
}

fn boot_with(machine: MachineConfig) -> Platform {
    Platform::boot(PlatformConfig {
        machine,
        ..Default::default()
    })
    .expect("platform boots")
}

/// Runs `platform` until the given firmware trap fires, returning the
/// cycle count at arrival. Kernel traps along the way are serviced.
fn run_until_trap(platform: &mut Platform, target: u32) -> u64 {
    loop {
        match platform
            .run_one_event(10_000_000)
            .expect("platform healthy")
        {
            Event::FirmwareTrap { addr } if addr == target => {
                return platform.machine().cycles();
            }
            _ => {}
        }
    }
}

/// Runs the raw machine until the kernel trap is *reached* (not yet
/// serviced) and returns the cycle count at arrival.
fn run_until_kernel_trap_arrival(platform: &mut Platform) -> u64 {
    loop {
        match platform.machine_mut().run(10_000_000) {
            Event::FirmwareTrap { addr } if addr == layout::KERNEL_TRAP => {
                return platform.machine().cycles();
            }
            Event::FirmwareTrap { .. } => {
                // A leftover phase trap: step past it.
                platform.machine_mut().step().expect("step past trap");
            }
            Event::Fault(fault) => panic!("unexpected fault: {fault}"),
            _ => {}
        }
    }
}

fn spin_task(name: &str) -> TaskSource {
    SecureTaskBuilder::new(
        name,
        "main:\n movi r1, counter\n\
         loop:\n ldw r2, [r1]\n addi r2, 1\n stw [r1], r2\n jmp loop\n",
    )
    .data("counter:\n .word 0\n")
    .build()
    .expect("assembles")
}

// ---------------------------------------------------------------- table 1

/// Table 1 / Figure 2: the adaptive cruise-control use case. `t0`/`t1`
/// hold their 1.5 kHz rate before, while, and after loading `t2`; the
/// blocking-load ablation shows the deadline misses TyTAN prevents.
pub fn table1_use_case() -> Table {
    let window = 960_000; // 20 ms at 48 MHz

    let measure = |interruptible: bool| {
        let config = PlatformConfig {
            interruptible_load: interruptible,
            ..Default::default()
        };
        let mut platform: Platform = Platform::boot(config).expect("boots");
        let mut scenario = CruiseControl::install(&mut platform).expect("installs");
        platform.run_for(200_000).expect("warmup");
        let before = scenario
            .measure_window(&mut platform, window)
            .expect("before");
        let (token, source) = scenario.activate_cruise_control(&mut platform);
        let during = scenario
            .measure_window(&mut platform, window)
            .expect("during");
        let (t2, _) = platform.wait_load(token, 400_000_000).expect("t2 loads");
        scenario.finish_activation(&platform, t2, &source);
        platform.run_for(200_000).expect("settle");
        let after = scenario
            .measure_window(&mut platform, window)
            .expect("after");
        (before, during, after)
    };

    let (before, during, after) = measure(true);
    let (_, abl_during, _) = measure(false);

    Table {
        id: "table1",
        title: "use-case task rates before/while/after loading t2 (kHz @48 MHz)",
        note: "paper: all tasks hold 1.5 kHz in every phase; the ablation rows show the \
               blocking (non-interruptible) loader starving t0/t1 during the load",
        rows: vec![
            Row::with_paper("before: t1", 1.5, before.t1_rate_khz_at_48mhz(), "kHz"),
            Row::with_paper("before: t0", 1.5, before.t0_rate_khz_at_48mhz(), "kHz"),
            Row::with_paper("while:  t1", 1.5, during.t1_rate_khz_at_48mhz(), "kHz"),
            Row::with_paper("while:  t0", 1.5, during.t0_rate_khz_at_48mhz(), "kHz"),
            Row::with_paper("after:  t1", 1.5, after.t1_rate_khz_at_48mhz(), "kHz"),
            Row::with_paper("after:  t2", 1.5, after.t2_rate_khz_at_48mhz(), "kHz"),
            Row::with_paper("after:  t0", 1.5, after.t0_rate_khz_at_48mhz(), "kHz"),
            Row::measured_only(
                "ablation while: t1",
                abl_during.t1_rate_khz_at_48mhz(),
                "kHz",
            ),
            Row::measured_only(
                "ablation while: t0",
                abl_during.t0_rate_khz_at_48mhz(),
                "kHz",
            ),
        ],
    }
}

// ---------------------------------------------------------------- table 2

/// Result of one secure context-save measurement.
#[derive(Debug, Clone, Copy)]
pub struct SavePhases {
    /// Register-store phase cycles.
    pub store: u64,
    /// Register-wipe phase cycles.
    pub wipe: u64,
    /// Branch-to-handler phase cycles.
    pub branch: u64,
}

impl SavePhases {
    /// Total save cost.
    pub fn overall(&self) -> u64 {
        self.store + self.wipe + self.branch
    }
}

/// Measures the TyTAN Int Mux save path phase by phase.
pub fn measure_secure_save() -> SavePhases {
    measure_secure_save_with(false)
}

/// Like [`measure_secure_save`], optionally with the hardware-assisted
/// context save (§4's latency/hardware trade-off) instead of the stub.
pub fn measure_secure_save_with(hardware_save: bool) -> SavePhases {
    let config = PlatformConfig {
        hardware_context_save: hardware_save,
        ..Default::default()
    };
    let mut platform: Platform = Platform::boot(config).expect("boots");
    let source = spin_task("interruptee");
    let token = platform.begin_load(&source, 2);
    platform.wait_load(token, 400_000_000).expect("loads");
    platform.run_for(50_000).expect("task running");

    let save = platform.stubs().save_stubs[&layout::TICK_VECTOR];
    let wipe = platform
        .stubs()
        .wipe_starts
        .get(&layout::TICK_VECTOR)
        .copied();
    let branch = platform.stubs().branch_starts[&layout::TICK_VECTOR];
    // Under the hardware-save ablation the stub has no store/wipe phases,
    // so the save and branch labels coincide.
    let branch_is_save = branch == save;
    let machine = platform.machine_mut();
    machine.add_firmware_trap(save);
    if let Some(wipe) = wipe {
        machine.add_firmware_trap(wipe);
    }
    if !branch_is_save {
        machine.add_firmware_trap(branch);
    }

    let t_save = run_until_trap(&mut platform, save);
    platform.machine_mut().remove_firmware_trap(save);
    let t_wipe = match wipe {
        Some(wipe) => {
            let t = run_until_trap(&mut platform, wipe);
            platform.machine_mut().remove_firmware_trap(wipe);
            t
        }
        None => t_save,
    };
    let t_branch = if branch_is_save {
        t_save
    } else {
        let t = run_until_trap(&mut platform, branch);
        platform.machine_mut().remove_firmware_trap(branch);
        t
    };
    let t_end = run_until_kernel_trap_arrival(&mut platform);
    platform.run_one_event(0).expect("service trap");

    SavePhases {
        store: t_wipe - t_save,
        wipe: t_branch - t_wipe,
        branch: t_end - t_branch,
    }
}

/// Ablation (§4): software Int Mux save vs. hardware-assisted save.
pub fn ablation_hw_save() -> Table {
    let software = measure_secure_save_with(false);
    let hardware = measure_secure_save_with(true);
    Table {
        id: "ablation-hw-save",
        title: "context save: Int Mux software stub vs. hardware-assisted (cycles)",
        note: "the paper notes the context save \"can be implemented in hardware, reducing \
               latency at the cost of additional hardware\"; the hardware path folds \
               store+wipe into the exception engine",
        rows: vec![
            Row::measured_only(
                "software: store+wipe+branch",
                software.overall() as f64,
                "cycles",
            ),
            Row::measured_only(
                "hardware: store+wipe+branch",
                hardware.overall() as f64,
                "cycles",
            ),
            Row::measured_only(
                "latency saved",
                software.overall().saturating_sub(hardware.overall()) as f64,
                "cycles",
            ),
        ],
    }
}

/// Measures the baseline (unmodified FreeRTOS) save path.
pub fn measure_baseline_save() -> u64 {
    let mut runner = Runner::new(RunnerConfig::default()).expect("runner boots");
    runner
        .add_task(StaticTask {
            name: "interruptee".into(),
            priority: 1,
            source: "main:\n movi r1, counter\n\
                     loop:\n ldw r2, [r1]\n addi r2, 1\n stw [r1], r2\n jmp loop\n\
                     counter:\n .word 0\n"
                .into(), // baseline platform: no EA-MPU, inline data is fine
            stack_len: 256,
        })
        .expect("task added");
    runner.start().expect("starts");
    runner.run_for(50_000).expect("running");

    let save = runner.stubs().save_stubs[&layout::TICK_VECTOR];
    runner.machine_mut().add_firmware_trap(save);
    let t_save = loop {
        match runner.run_one_event(10_000_000).expect("healthy") {
            Event::FirmwareTrap { addr } if addr == save => break runner.machine().cycles(),
            _ => {}
        }
    };
    runner.machine_mut().remove_firmware_trap(save);
    let t_end = loop {
        match runner.machine_mut().run(10_000_000) {
            Event::FirmwareTrap { addr } if addr == layout::KERNEL_TRAP => {
                break runner.machine().cycles();
            }
            Event::Fault(fault) => panic!("fault: {fault}"),
            _ => {}
        }
    };
    runner.run_one_event(0).expect("service");
    t_end - t_save
}

/// Table 2: cost of saving the context of a secure task.
pub fn table2_interrupt_save() -> Table {
    let phases = measure_secure_save();
    let baseline = measure_baseline_save();
    let overall = phases.overall();
    Table {
        id: "table2",
        title: "saving the context of a secure task (cycles)",
        note: "store/wipe/branch are real guest instructions of the Int Mux stub; \
               overhead = TyTAN overall − unmodified-FreeRTOS save",
        rows: vec![
            Row::with_paper("store context", 38.0, phases.store as f64, "cycles"),
            Row::with_paper("wipe registers", 16.0, phases.wipe as f64, "cycles"),
            Row::with_paper("branch", 41.0, phases.branch as f64, "cycles"),
            Row::with_paper("overall", 95.0, overall as f64, "cycles"),
            Row::with_paper(
                "overhead",
                57.0,
                overall.saturating_sub(baseline) as f64,
                "cycles",
            ),
            Row::measured_only("baseline (FreeRTOS) save", baseline as f64, "cycles"),
        ],
    }
}

// ---------------------------------------------------------------- table 3

/// Result of one context-restore measurement.
#[derive(Debug, Clone, Copy)]
pub struct RestorePhases {
    /// Branch-to-task (scheduler dispatch) cycles.
    pub branch: u64,
    /// Entry-routine context-restore cycles.
    pub restore: u64,
}

impl RestorePhases {
    /// Total restore cost.
    pub fn overall(&self) -> u64 {
        self.branch + self.restore
    }
}

fn yield_body() -> &'static str {
    "main:\n\
     loop:\n movi r1, 0\n int SYS_VECTOR\n\
     after_int:\n jmp loop\n"
}

/// Measures the secure-task restore path: the task yields; the kernel
/// branches to its entry routine (branch phase), which restores the saved
/// context and IRETs (restore phase).
pub fn measure_secure_restore() -> RestorePhases {
    let mut platform = boot();
    let source = SecureTaskBuilder::new("yielder", yield_body())
        .build()
        .expect("assembles");
    let after_int_off = source.symbol_offset("after_int").expect("label");
    let token = platform.begin_load(&source, 2);
    let (handle, _) = platform.wait_load(token, 400_000_000).expect("loads");
    let base = platform.task_base(handle).expect("loaded");

    // Let the first yield round-trip complete so the task has a saved
    // context (resume path, not start path).
    platform.run_for(20_000).expect("warm");

    let t_arrive = run_until_kernel_trap_arrival(&mut platform);
    platform
        .machine_mut()
        .add_firmware_trap(base + after_int_off);
    platform.run_one_event(0).expect("service trap");
    let t_dispatched = platform.machine().cycles();
    let t_done = run_until_trap(&mut platform, base + after_int_off);
    platform
        .machine_mut()
        .remove_firmware_trap(base + after_int_off);

    RestorePhases {
        branch: t_dispatched - t_arrive,
        restore: t_done - t_dispatched,
    }
}

/// Measures the baseline restore: the OS pops the context itself.
pub fn measure_baseline_restore() -> RestorePhases {
    let mut runner = Runner::new(RunnerConfig::default()).expect("boots");
    let handle = runner
        .add_task(StaticTask {
            name: "yielder".into(),
            priority: 1,
            source: format!(
                "main:\nloop:\n movi r1, 0\n int {vec:#x}\nafter_int:\n jmp loop\n",
                vec = layout::SYSCALL_VECTOR
            ),
            stack_len: 256,
        })
        .expect("added");
    runner.start().expect("starts");
    runner.run_for(20_000).expect("warm");
    let after_int = runner.task_symbol(handle, "after_int").expect("label");

    let t_arrive = loop {
        match runner.machine_mut().run(10_000_000) {
            Event::FirmwareTrap { addr } if addr == layout::KERNEL_TRAP => {
                break runner.machine().cycles();
            }
            Event::Fault(fault) => panic!("fault: {fault}"),
            _ => {}
        }
    };
    runner.machine_mut().add_firmware_trap(after_int);
    runner.run_one_event(0).expect("service");
    let t_dispatched = runner.machine().cycles();
    let t_done = loop {
        match runner.run_one_event(10_000_000).expect("healthy") {
            Event::FirmwareTrap { addr } if addr == after_int => {
                break runner.machine().cycles();
            }
            _ => {}
        }
    };
    runner.machine_mut().remove_firmware_trap(after_int);
    RestorePhases {
        branch: t_dispatched - t_arrive,
        restore: t_done - t_dispatched,
    }
}

/// Table 3: cost of restoring the context of a secure task.
pub fn table3_interrupt_restore() -> Table {
    let secure = measure_secure_restore();
    let baseline = measure_baseline_restore();
    Table {
        id: "table3",
        title: "restoring the context of a secure task (cycles)",
        note: "branch = scheduler dispatch to the entry routine; restore = entry routine \
               reason check + context pops + IRET (real guest instructions)",
        rows: vec![
            Row::with_paper("branch", 106.0, secure.branch as f64, "cycles"),
            Row::with_paper("restore", 254.0, secure.restore as f64, "cycles"),
            Row::with_paper("overall", 384.0, secure.overall() as f64, "cycles"),
            Row::with_paper(
                "overhead",
                130.0,
                secure.overall().saturating_sub(baseline.overall()) as f64,
                "cycles",
            ),
            Row::measured_only(
                "baseline (FreeRTOS) overall",
                baseline.overall() as f64,
                "cycles",
            ),
        ],
    }
}

// ---------------------------------------------------------------- table 4

/// Loads the paper's reference task (≈3,962 bytes, 9 relocations) as a
/// secure or normal task on a fresh platform and returns the load report.
pub fn measure_task_create(secure: bool) -> LoadReport {
    measure_task_create_with(secure, MachineConfig::default())
}

/// Like [`measure_task_create`], on a machine built from `machine` (the
/// cycle-identity tests thread each `EngineKind` through here).
pub fn measure_task_create_with(secure: bool, machine: MachineConfig) -> LoadReport {
    let mut platform = boot_with(machine);
    let source = if secure {
        radar_monitor_source(TaskId::from_u64(1))
    } else {
        let inner = radar_monitor_source(TaskId::from_u64(1));
        // Same body scale, normal task wrapper.
        let _ = inner;
        build_normal_task(
            "normal-ref",
            "main:\nloop:\n movi r1, 1\n jmp loop\ntable:\n .word main, loop, main, loop, main, loop, main, loop\n .space 3200\n",
            "",
            512,
        )
        .expect("assembles")
    };
    let token = platform.begin_load(&source, 2);
    platform.wait_load(token, 400_000_000).expect("loads");
    match platform.load_status(token).expect("token valid") {
        LoadStatus::Done { report, .. } => report,
        other => panic!("load not done: {other:?}"),
    }
}

/// Table 4: cost of creating a secure vs a normal task.
pub fn table4_task_create() -> Table {
    let secure = measure_task_create(true);
    let normal = measure_task_create(false);
    let secure_overhead = secure.reloc_cycles + secure.mpu_cycles + secure.rtm_cycles;
    let normal_overhead = normal.reloc_cycles + normal.mpu_cycles;
    Table {
        id: "table4",
        title: "creating a task, ~3,962-byte image with 9 relocations (cycles)",
        note: "EA-MPU row is the policy-checked task rule (the paper charges only the \
               rule write, 225); overhead = relocation + EA-MPU + RTM vs static creation",
        rows: vec![
            Row::with_paper(
                "secure: relocation",
                3_692.0,
                secure.reloc_cycles as f64,
                "cycles",
            ),
            Row::with_paper(
                "secure: EA-MPU",
                225.0,
                secure.mpu_primary_cycles as f64,
                "cycles",
            ),
            Row::with_paper("secure: RTM", 433_433.0, secure.rtm_cycles as f64, "cycles"),
            Row::with_paper(
                "secure: overall",
                642_241.0,
                secure.total_cycles() as f64,
                "cycles",
            ),
            Row::with_paper(
                "secure: overhead",
                437_380.0,
                secure_overhead as f64,
                "cycles",
            ),
            Row::with_paper(
                "normal: relocation",
                3_692.0,
                normal.reloc_cycles as f64,
                "cycles",
            ),
            Row::with_paper(
                "normal: EA-MPU",
                225.0,
                normal.mpu_primary_cycles as f64,
                "cycles",
            ),
            Row::with_paper("normal: RTM", 0.0, normal.rtm_cycles as f64, "cycles"),
            Row::with_paper(
                "normal: overall",
                208_808.0,
                normal.total_cycles() as f64,
                "cycles",
            ),
            Row::with_paper(
                "normal: overhead",
                3_917.0,
                normal_overhead as f64,
                "cycles",
            ),
        ],
    }
}

// ---------------------------------------------------------------- table 5

/// Measures the loader's relocation cost for an image with `n` sites.
pub fn measure_relocation(n: u32) -> u64 {
    measure_relocation_with(n, MachineConfig::default())
}

/// Like [`measure_relocation`], on a machine built from `config`.
pub fn measure_relocation_with(n: u32, config: MachineConfig) -> u64 {
    let mut machine = Machine::new(config);
    let mut kernel = rtos::Kernel::new(rtos::KernelConfig::default());
    let mut rtm = Rtm::new();
    let mut allocator = Allocator::new(layout::HEAP_BASE, 0x4_0000);
    let actors = tytan::driver::TrustedActors {
        trusted: Region::new(layout::TRUSTED_BASE, layout::TRUSTED_CODE_LEN),
        kernel: Region::new(layout::KERNEL_BASE, layout::KERNEL_CODE_LEN),
        kernel_entry: layout::KERNEL_TRAP,
    };
    let sites: Vec<u32> = (0..n).map(|i| i * 4).collect();
    let image = TaskImage::new(
        "reloc-probe",
        false,
        0,
        vec![0u8; 256],
        vec![],
        0,
        128,
        sites,
    )
    .expect("valid image");
    let mut job: LoadJob<Sha1> = LoadJob::new(image, 0, 1);
    loop {
        match job
            .step(
                &mut machine,
                &mut kernel,
                &mut rtm,
                &mut allocator,
                actors,
                4,
            )
            .expect("load steps")
        {
            LoadProgress::Done { .. } => break,
            LoadProgress::InProgress(_) => {}
        }
    }
    job.report().reloc_cycles
}

/// Table 5: relocation runtime vs. number of patched addresses.
pub fn table5_relocation() -> Table {
    let rows = [(0u32, 37.0), (1, 673.0), (2, 1_346.0), (4, 2_634.0)]
        .iter()
        .map(|&(n, paper_min)| {
            Row::with_paper(
                format!("{n} addresses"),
                paper_min,
                measure_relocation(n) as f64,
                "cycles",
            )
        })
        .collect();
    Table {
        id: "table5",
        title: "relocation runtime vs. relocated addresses (cycles; paper column = min)",
        note: "linear in n, matching the paper; our deterministic model makes min == avg",
        rows,
    }
}

// ---------------------------------------------------------------- table 6

/// Measures EA-MPU configuration with the first free slot at `position`
/// (1-based) in a table of 18 slots.
pub fn measure_eampu_config(position: usize) -> eampu::ConfigureCost {
    let mut mpu = EaMpu::new(18);
    for i in 0..position - 1 {
        let base = 0x1_0000 + i as u32 * 0x400;
        mpu.set_rule(
            i,
            Rule::new(
                Region::new(base, 0x100),
                base,
                Region::new(base + 0x200, 0x100),
                Perms::RW,
            ),
        );
    }
    let new_base = 0x8_0000;
    let outcome = mpu
        .configure(Rule::new(
            Region::new(new_base, 0x100),
            new_base,
            Region::new(new_base + 0x200, 0x100),
            Perms::RW,
        ))
        .expect("configures");
    assert_eq!(outcome.slot, position - 1);
    outcome.cost
}

/// Table 6: EA-MPU configuration cost vs. position of the first free slot.
pub fn table6_eampu_config() -> Table {
    let mut rows = Vec::new();
    for (position, paper_find, paper_overall) in [
        (1usize, 76.0, 1_125.0),
        (2, 95.0, 1_144.0),
        (18, 399.0, 1_448.0),
    ] {
        let cost = measure_eampu_config(position);
        rows.push(Row::with_paper(
            format!("slot {position}: find free slot"),
            paper_find,
            cost.find_slot as f64,
            "cycles",
        ));
        rows.push(Row::with_paper(
            format!("slot {position}: policy check"),
            824.0,
            cost.policy_check as f64,
            "cycles",
        ));
        rows.push(Row::with_paper(
            format!("slot {position}: write rule"),
            225.0,
            cost.write_rule as f64,
            "cycles",
        ));
        rows.push(Row::with_paper(
            format!("slot {position}: overall"),
            paper_overall,
            cost.total() as f64,
            "cycles",
        ));
    }
    Table {
        id: "table6",
        title: "EA-MPU configuration vs. first-free-slot position (18 slots, cycles)",
        note: "find-slot scales linearly with the slot position; check and write constant",
        rows,
    }
}

// ---------------------------------------------------------------- table 7

/// Measures a full RTM measurement of a `blocks`-block image with
/// `reloc_sites` relocated addresses.
pub fn measure_measurement(blocks: u32, reloc_sites: u32) -> u64 {
    measure_measurement_with(blocks, reloc_sites, MachineConfig::default())
}

/// Like [`measure_measurement`], on a machine built from `config`.
pub fn measure_measurement_with(blocks: u32, reloc_sites: u32, config: MachineConfig) -> u64 {
    let text_len = blocks * 64 - 24; // header is 24 bytes
    let sites: Vec<u32> = (0..reloc_sites).map(|i| i * 4).collect();
    let image = TaskImage::new(
        "measure-probe",
        true,
        0,
        vec![0u8; text_len as usize],
        vec![],
        0,
        64,
        sites,
    )
    .expect("valid image");
    let mut machine = Machine::new(config);
    machine
        .load_image(0x8000, &image.loadable_bytes())
        .expect("fits in RAM");
    let start = machine.cycles();
    let mut job: MeasureJob<Sha1> = MeasureJob::new(&image, 0x8000);
    loop {
        match job.step(&mut machine, 0, 8).expect("measures") {
            MeasureProgress::Done => break,
            MeasureProgress::InProgress { .. } => {}
        }
    }
    let _ = job.finish();
    machine.cycles() - start
}

/// Table 7: measurement runtime vs. memory size and relocated addresses.
pub fn table7_measurement() -> Table {
    let mut rows = Vec::new();
    for (blocks, paper) in [(1u32, 8_261.0), (2, 12_200.0), (4, 20_078.0), (8, 35_790.0)] {
        rows.push(Row::with_paper(
            format!("{blocks} block(s)"),
            paper,
            measure_measurement(blocks, 0) as f64,
            "cycles",
        ));
    }
    let base = measure_measurement(4, 0);
    for (sites, paper) in [(0u32, 114.0), (1, 680.0), (2, 1_188.0), (4, 2_187.0)] {
        let with_sites = measure_measurement(4, sites);
        // The paper's second sub-table reports the revert-handling cost;
        // a=0 still pays the constant setup (~100 cycles), which our model
        // charges inside the base measurement, so add it back for
        // comparability.
        let revert_cost = (with_sites - base) + 100;
        rows.push(Row::with_paper(
            format!("{sites} relocated address(es)"),
            paper,
            revert_cost as f64,
            "cycles",
        ));
    }
    Table {
        id: "table7",
        title: "RTM measurement vs. memory size (blocks) and relocated addresses (cycles)",
        note: "fits the paper's model T ≈ 4,300 + b·3,900 + 100 + a·500",
        rows,
    }
}

// ---------------------------------------------------------------- table 8

/// Table 8: OS memory consumption, FreeRTOS vs. TyTAN.
pub fn table8_memory() -> Table {
    let fp = footprint::footprint();
    let mut rows = vec![
        Row::with_paper("FreeRTOS image", 215_617.0, fp.freertos as f64, "bytes"),
        Row::with_paper("TyTAN image", 249_943.0, fp.tytan as f64, "bytes"),
        Row::with_paper("overhead", 15.92, fp.overhead_percent(), "%"),
    ];
    for c in footprint::components().iter().filter(|c| c.tytan_only) {
        rows.push(Row::measured_only(
            format!("  + {}", c.name),
            c.total() as f64,
            "bytes",
        ));
    }
    Table {
        id: "table8",
        title: "memory consumption of the OS image (no tasks loaded)",
        note: "component-level size model calibrated to the paper's totals; \
               per-component breakdown shown for auditability",
        rows,
    }
}

// ------------------------------------------------------------- secure IPC

/// Measured phases of one synchronous secure IPC send.
#[derive(Debug, Clone, Copy)]
pub struct IpcPhases {
    /// IPC proxy cycles (sender lookup, receiver lookup, mailbox write).
    pub proxy: u64,
    /// Receiver entry-routine cycles up to message-payload consumption.
    pub entry: u64,
}

/// The secure IPC receiver of the bench workloads: waits, consumes the
/// payload in its message entry routine.
fn ipc_receiver_source() -> TaskSource {
    SecureTaskBuilder::new(
        "receiver",
        "main:\nwait:\n jmp wait\n\
         on_message:\n movi r1, __mailbox\n ldw r2, [r1+16]\n\
         handled:\n jmp wait\n",
    )
    .handles_messages(true)
    .build()
    .expect("assembles")
}

/// The matching sender: sleeps three ticks (so measurement loops are
/// armed before the send), fires one synchronous `INT 0x30`, then parks
/// in a long delay loop so it never starves lower-priority tasks.
fn ipc_sender_source(receiver_id: TaskId) -> TaskSource {
    let (hi, lo) = receiver_id.to_register_words();
    SecureTaskBuilder::new(
        "sender",
        format!(
            "main:\n movi r1, SYS_DELAY\n movi r2, 3\n int SYS_VECTOR\n\
             movi r1, {hi:#010x}\n movi r2, {lo:#010x}\n\
             movi r3, 77\n movi r4, 0\n movi r5, 0\n movi r6, 1\n\
             int IPC_VECTOR\n\
             park:\n movi r1, SYS_DELAY\n movi r2, 100000\n int SYS_VECTOR\n jmp park\n"
        ),
    )
    .build()
    .expect("assembles")
}

fn task_identity(source: &TaskSource) -> TaskId {
    TaskId::from_digest(&<Sha1 as tytan_crypto::Digest>::digest(
        &source.image.measurement_bytes(),
    ))
}

/// Measures one synchronous guest-to-guest IPC send.
pub fn measure_ipc() -> IpcPhases {
    measure_ipc_with(MachineConfig::default())
}

/// Like [`measure_ipc`], on a machine built from `machine`.
pub fn measure_ipc_with(machine: MachineConfig) -> IpcPhases {
    let mut platform = boot_with(machine);
    let receiver = ipc_receiver_source();
    let receiver_id = task_identity(&receiver);
    let handled_off = receiver.symbol_offset("handled").expect("label");
    let sender = ipc_sender_source(receiver_id);

    let token = platform.begin_load(&receiver, 2);
    let (rh, _) = platform
        .wait_load(token, 400_000_000)
        .expect("receiver loads");
    let rbase = platform.task_base(rh).expect("loaded");
    let token = platform.begin_load(&sender, 3);
    platform
        .wait_load(token, 400_000_000)
        .expect("sender loads");

    // Run until the IPC trap arrives (the sender's INT 0x30 goes through
    // the Int Mux stub to the kernel trap with r0 = IPC vector).
    let t_arrive = loop {
        let arrived = run_until_kernel_trap_arrival(&mut platform);
        if platform.machine().reg(sp32::Reg::R0) as u8 == layout::IPC_VECTOR {
            break arrived;
        }
        platform.run_one_event(0).expect("service non-IPC trap");
    };
    platform.machine_mut().add_firmware_trap(rbase); // receiver entry
    platform
        .machine_mut()
        .add_firmware_trap(rbase + handled_off);
    platform.run_one_event(0).expect("service IPC trap");
    let t_at_entry = platform.machine().cycles();
    assert_eq!(
        platform.machine().eip(),
        rbase,
        "sync dispatch branched to entry"
    );
    platform.machine_mut().remove_firmware_trap(rbase);
    let t_handled = run_until_trap(&mut platform, rbase + handled_off);
    platform
        .machine_mut()
        .remove_firmware_trap(rbase + handled_off);

    IpcPhases {
        proxy: t_at_entry - t_arrive,
        entry: t_handled - t_at_entry,
    }
}

/// §6 "Secure IPC": proxy + receiver entry routine.
pub fn ipc_latency() -> Table {
    let phases = measure_ipc();
    Table {
        id: "ipc",
        title: "secure IPC latency (cycles)",
        note: "proxy = sender authentication, receiver lookup, mailbox write; \
               entry = receiver entry routine up to payload consumption",
        rows: vec![
            Row::with_paper("IPC proxy", 1_208.0, phases.proxy as f64, "cycles"),
            Row::with_paper(
                "receiver entry routine",
                116.0,
                phases.entry as f64,
                "cycles",
            ),
            Row::with_paper(
                "overall",
                1_324.0,
                (phases.proxy + phases.entry) as f64,
                "cycles",
            ),
        ],
    }
}

// --------------------------------------------------------- host throughput

/// Measures the host-side simulation rate: guest instructions retired per
/// host wall-clock second on the standard busy loop (MPU enforcement on,
/// engine at its default). This is the substrate health metric the
/// `sim_throughput` bench tracks, exported into `BENCH_tables.json`.
pub fn host_guest_ips() -> f64 {
    host_guest_ips_with(MachineConfig::default().engine)
}

/// Like [`host_guest_ips`], pinned to one execution engine.
pub fn host_guest_ips_with(engine: EngineKind) -> f64 {
    let mut machine = Machine::new(MachineConfig {
        engine,
        ..MachineConfig::default()
    });
    machine.set_mpu_enabled(true);
    let program = sp32::asm::assemble(
        "main:\n movi r1, 0x9000\n movi r2, 0\n\
         loop:\n ldw r3, [r1]\n add r3, r2\n stw [r1], r3\n addi r2, 1\n jmp loop\n",
        0x1000,
    )
    .expect("assembles");
    machine
        .load_image(0x1000, &program.bytes)
        .expect("fits in RAM");
    machine.set_eip(0x1000);

    let warmed = 100_000;
    while machine.stats().instructions < warmed {
        machine.run(50_000);
    }
    const INSTRUCTIONS: u64 = 2_000_000;
    let start_instr = machine.stats().instructions;
    let start = std::time::Instant::now();
    while machine.stats().instructions - start_instr < INSTRUCTIONS {
        machine.run(50_000);
    }
    let elapsed = start.elapsed().as_secs_f64();
    (machine.stats().instructions - start_instr) as f64 / elapsed.max(1e-9)
}

/// Compares execution-engine throughput on the mpu_on busy loop: the
/// legacy reference loop, the fast interpreter, and the block
/// translator, plus the derived speedup ratios. The `translator speedup`
/// row (translator over fast interpreter) is the PR's headline metric —
/// the `--engine-floor` gate in `tables` asserts it stays above a floor.
pub fn engine_throughput() -> Table {
    let legacy = host_guest_ips_with(EngineKind::Legacy);
    let interpreter = host_guest_ips_with(EngineKind::Fast);
    let translated = host_guest_ips_with(EngineKind::Translated);
    Table {
        id: "engine_throughput",
        title: "execution-engine throughput (mpu_on busy loop)",
        note: "host-side wall-clock metric; speedups = block translator over \
               the fast interpreter / the legacy reference on the same workload",
        rows: vec![
            Row::measured_only("legacy reference", legacy, "instr/s"),
            Row::measured_only("fast interpreter", interpreter, "instr/s"),
            Row::measured_only("block translator", translated, "instr/s"),
            Row::measured_only(
                "translator speedup",
                translated / interpreter.max(1e-9),
                "speedup",
            ),
            Row::measured_only(
                "translator speedup vs legacy",
                translated / legacy.max(1e-9),
                "speedup",
            ),
        ],
    }
}

// --------------------------------------------------------- lint throughput

/// The policy the shipped use-case images are verified against: one RW
/// window over the platform MMIO page (sensors + actuator at
/// `0xf000_0000..0xf000_0400`), no peers, default budgets.
pub fn usecase_lint_policy() -> LintPolicy {
    LintPolicy {
        windows: vec![(Region::new(0xf000_0000, 0x400), Perms::RW)],
        ..LintPolicy::default()
    }
}

/// The shipped use-case images the lint workload runs over.
fn lint_workload_images() -> Vec<TaskImage> {
    vec![
        spin_task("lint-spin").image,
        engine_control_source().image,
        radar_monitor_source(TaskId::from_u64(1)).image,
    ]
}

/// Measures the static verifier's throughput: full lint passes (CFG
/// recovery, EA-MPU conformance, stack and cycle bounds) per host second
/// over the shipped use-case images. Analysis is host-side, so the unit
/// is wall-clock, not guest cycles. Also asserts the shipped images lint
/// clean — the linter's own regression guard.
pub fn lint_throughput() -> Table {
    let images = lint_workload_images();
    let linter = Linter::new(usecase_lint_policy());

    let mut instructions = 0usize;
    for image in &images {
        let report = linter.lint(image);
        assert_eq!(
            report.count(Severity::Error),
            0,
            "shipped image `{}` must lint clean: {report}",
            report.image_name
        );
        instructions += report.stats.instructions;
    }

    // Warm, then time a fixed number of full passes over the image set.
    const PASSES: u32 = 200;
    for _ in 0..20 {
        for image in &images {
            let _ = linter.lint(image);
        }
    }
    let start = std::time::Instant::now();
    for _ in 0..PASSES {
        for image in &images {
            let _ = linter.lint(image);
        }
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let images_per_sec = f64::from(PASSES) * images.len() as f64 / elapsed;

    Table {
        id: "lint_throughput",
        title: "static verifier throughput over the shipped use-case images",
        note: "host-side wall-clock metric (the verifier consumes zero guest cycles); \
               instructions = distinct reachable instructions across the image set",
        rows: vec![
            Row::measured_only("images linted", images_per_sec, "images/s"),
            Row::measured_only(
                "instructions analyzed",
                images_per_sec / images.len() as f64 * instructions as f64,
                "instr/s",
            ),
            Row::measured_only("image set size", images.len() as f64, "images"),
        ],
    }
}

// ------------------------------------------------------- trace + counters

/// The observed paper workload, shared by the trace export, the counter
/// snapshot, the latency tables, and the profiler: a spinning secure
/// worker, a secure IPC pair (one synchronous send through the proxy),
/// half a million cycles of scheduled execution under tick interrupts,
/// and a remote attestation. Runs the same guest sequence whether or not
/// a tracer/profiler is attached — the cycle-identity suite relies on it.
pub fn observed_workload_body(platform: &mut Platform) {
    let source = spin_task("traced");
    let token = platform.begin_load(&source, 2);
    let (_, id) = platform.wait_load(token, 400_000_000).expect("loads");
    let receiver = ipc_receiver_source();
    let receiver_id = task_identity(&receiver);
    let token = platform.begin_load(&receiver, 2);
    platform
        .wait_load(token, 400_000_000)
        .expect("receiver loads");
    let token = platform.begin_load(&ipc_sender_source(receiver_id), 3);
    platform
        .wait_load(token, 400_000_000)
        .expect("sender loads");
    platform.run_for(500_000).expect("runs");
    let _ = platform.remote_attest(id, b"bench-nonce").expect("attests");
    platform.flush_trace();
}

/// Runs the observed workload with `tracer` attached and returns the
/// platform.
fn traced_workload(tracer: Tracer) -> Platform {
    let mut platform = boot();
    platform.attach_tracer(tracer);
    observed_workload_body(&mut platform);
    platform
}

/// Latency distributions of the observed workload: interrupt-entry path,
/// context save/restore, IPC round-trip, attestation, and secure-load
/// phases, each as a log-linear histogram summary. `tables --json`
/// exports this as the `latency` object; the baseline gate diffs it.
pub fn latency_snapshot() -> Vec<(String, Summary)> {
    let tracer = Tracer::null();
    let _platform = traced_workload(tracer.clone());
    tracer.histograms().snapshot()
}

/// Runs the observed workload with the exact guest-cycle profiler
/// attached and returns the symbolized report: folded stacks for
/// flamegraph tooling (`tables --profile` writes `BENCH_profile.folded`),
/// hot-spot table, and named-coverage fraction.
pub fn profile_use_case() -> Report {
    let mut platform = boot();
    platform.attach_tracer(Tracer::null());
    let profiler = CycleProfiler::new(platform.machine().ram_size());
    platform.attach_profiler(profiler);
    observed_workload_body(&mut platform);
    platform.profile_report().expect("profiler attached")
}

/// The flat counter snapshot of the traced workload above, plus the
/// derived cache hit rates (`predecode_hit_rate`, `eampu_cache_hit_rate`)
/// of the fast-path caches. `tables --json` merges this into
/// `BENCH_tables.json` as the `counters` object.
///
/// Under `TYTAN_EXEC_ENGINE=legacy` the predecode counters stay zero and
/// the derived rate reports 0 — the legacy loop has no cache to measure.
/// Under `TYTAN_EXEC_ENGINE=translated` the block-translation counters
/// (`emu_block_compile`, `emu_block_hit`, …) are live instead.
pub fn fast_path_counters() -> Vec<(String, f64)> {
    // A deliberately small ring so the workload overflows it: the
    // drop-oldest shed count is itself a surfaced counter
    // (`trace_ring_dropped`), proving silent trace loss is visible.
    let ring = Arc::new(RingRecorder::new(1 << 8));
    let tracer = Tracer::new(ring.clone());
    let _platform = traced_workload(tracer.clone());

    // The lint counter group (images checked, findings by severity,
    // unproven sites) rides on the same registry: verify the shipped
    // use-case images so `tables --json` reports the group populated.
    let linter = Linter::with_tracer(usecase_lint_policy(), tracer.clone());
    for image in &lint_workload_images() {
        let _ = linter.lint(image);
    }

    let mut out: Vec<(String, f64)> = tracer
        .counters()
        .snapshot()
        .into_iter()
        .map(|(name, value)| (name, value as f64))
        .collect();
    let get = |name: &str| tracer.counters().get(name).unwrap_or(0) as f64;
    let rate = |hit: f64, miss: f64| {
        if hit + miss > 0.0 {
            hit / (hit + miss)
        } else {
            0.0
        }
    };
    out.push((
        "predecode_hit_rate".to_string(),
        rate(get("emu_predecode_hit"), get("emu_predecode_miss")),
    ));
    out.push((
        "eampu_cache_hit_rate".to_string(),
        rate(
            get("eampu_access_cache_hit") + get("eampu_transfer_cache_hit"),
            get("eampu_access_cache_miss") + get("eampu_transfer_cache_miss"),
        ),
    ));
    out.push(("trace_ring_dropped".to_string(), ring.dropped() as f64));
    out
}

/// Runs the traced workload with a recording sink and exports the event
/// stream as Chrome `trace_event` JSON (one pid per layer, spans for IRQ
/// entry/exit, loader, IPC, and attestation phases) — loadable in
/// `chrome://tracing` or Perfetto. `tables --trace` writes this to
/// `BENCH_trace.json`.
pub fn chrome_trace_use_case() -> String {
    let ring = Arc::new(RingRecorder::new(1 << 16));
    let _platform = traced_workload(Tracer::new(ring.clone()));
    chrome::chrome_trace_json(&ring.events())
}

// -------------------------------------------------------- fleet throughput

/// Seed for the fleet benchmark runs: fixed so the count rows (accepted /
/// rejected classes) are bit-for-bit reproducible and baseline-gated.
const FLEET_SEED: u64 = 20260809;

/// Fleet-scale attestation service: boots fleets of fully simulated
/// devices on the work-stealing farm, streams their framed attestation
/// reports into the batched verifier, and reports verified attestations
/// per host second plus per-report verify-latency quantiles at 1k and 10k
/// devices. The 1k run injects replays (every 10th device) and MAC
/// forgeries (every 25th) to prove the rejection books balance under
/// load; the 10k run is clean and sizes throughput.
pub fn fleet_throughput() -> Table {
    let small = run_fleet(&FleetConfig {
        devices: 1_000,
        rounds: 1,
        seed: FLEET_SEED,
        replay_every: Some(10),
        corrupt_every: Some(25),
        ..FleetConfig::default()
    })
    .expect("1k fleet runs");
    assert!(small.clean(), "1k fleet run must be clean: {small:?}");

    let large = run_fleet(&FleetConfig {
        devices: 10_000,
        rounds: 1,
        seed: FLEET_SEED,
        ..FleetConfig::default()
    })
    .expect("10k fleet runs");
    assert!(large.clean(), "10k fleet run must be clean: {large:?}");

    Table {
        id: "fleet_throughput",
        title: "fleet attestation service: throughput and verify latency",
        note: "every device is a full simulated platform (secure boot, RTM measurement, \
               attestation task); count rows are deterministic for the fixed seed and \
               baseline-gated; atts/s and ns rows are host wall-clock and not gated. \
               verify latency is the amortized per-report share of batched HMAC \
               verification",
        rows: vec![
            Row::measured_only(
                "reports accepted @1k devices",
                small.accepted as f64,
                "count",
            ),
            Row::measured_only(
                "replays rejected @1k devices",
                small.rejected_replay as f64,
                "count",
            ),
            Row::measured_only(
                "forgeries rejected @1k devices",
                small.rejected_bad_mac as f64,
                "count",
            ),
            Row::measured_only(
                "decode errors @1k devices",
                small.decode_errors as f64,
                "count",
            ),
            Row::measured_only("throughput @1k devices", small.throughput, "atts/s"),
            Row::measured_only("throughput @10k devices", large.throughput, "atts/s"),
            Row::measured_only("verify p50 @10k devices", large.verify_p50_ns as f64, "ns"),
            Row::measured_only("verify p99 @10k devices", large.verify_p99_ns as f64, "ns"),
        ],
    }
}

// ------------------------------------------------- control-flow attestation

/// Control-flow attestation at fleet scale: the same farm and wire path
/// as [`fleet_throughput`], but every device arms the CF monitor, runs
/// a monitored slice, and answers its challenge with a `CfaReport`
/// frame whose edge log the verifier replays against the static CFG
/// `tytan-lint` extracted from the fleet task. Every 10th device first
/// sends a copy of its report with one edge bent off the CFG — the MAC
/// still verifies (it covers the chain head, not the raw log), so only
/// edge replay can reject it — and the run must balance exactly: every
/// honest report accepted, every detour typed `InadmissibleEdge`, zero
/// chain-mismatch or unproven-site rejections.
pub fn cfa_throughput() -> Table {
    let run = run_fleet(&FleetConfig {
        devices: 1_000,
        rounds: 1,
        seed: FLEET_SEED,
        cfa: true,
        detour_every: Some(10),
        ..FleetConfig::default()
    })
    .expect("1k CFA fleet runs");
    assert!(run.clean(), "1k CFA fleet run must be clean: {run:?}");

    Table {
        id: "cfa_throughput",
        title: "control-flow attestation plane: fleet verify throughput",
        note: "every report carries a Tiny-CFA edge log replayed against the \
               lint-extracted CFG (shadow-stack returns included) and refolded \
               into the MAC'd chain head; count rows are deterministic for the \
               fixed seed and baseline-gated; atts/s and ns rows are host \
               wall-clock and not gated",
        rows: vec![
            Row::measured_only(
                "cf reports accepted @1k devices",
                run.accepted as f64,
                "count",
            ),
            Row::measured_only(
                "detours injected @1k devices",
                run.injected_detours as f64,
                "count",
            ),
            Row::measured_only(
                "detours rejected inadmissible @1k devices",
                run.rejected_inadmissible as f64,
                "count",
            ),
            Row::measured_only(
                "chain mismatches @1k devices",
                run.rejected_chain as f64,
                "count",
            ),
            Row::measured_only(
                "unproven violations @1k devices",
                run.rejected_unproven as f64,
                "count",
            ),
            Row::measured_only(
                "cfa verify throughput @1k devices",
                run.throughput,
                "atts/s",
            ),
            Row::measured_only("cfa verify p50 @1k devices", run.verify_p50_ns as f64, "ns"),
            Row::measured_only("cfa verify p99 @1k devices", run.verify_p99_ns as f64, "ns"),
        ],
    }
}

// ------------------------------------------------ verify cost attribution

/// Per-stage verify-cost attribution: where a fleet verifier
/// nanosecond actually goes, static attestation vs the control-flow
/// plane. Two clean 1k-device runs at the fixed seed report into
/// per-run tracers; the per-stage histograms the verifier populates
/// (frame decode, batched HMAC share, freshness + digest, CFA edge
/// replay, CFA chain refold) quantify the ROADMAP's ~10× CFA-vs-static
/// claim as measured stage medians plus one headline ratio. Count rows
/// (reports verified, edges replayed) are deterministic for the seed
/// and baseline-gated; all ns and ratio rows are host wall-clock and
/// not gated.
pub fn verify_cost_breakdown() -> Table {
    let static_tracer = Tracer::null();
    let static_run = run_fleet_with_tracer(
        &FleetConfig {
            devices: 1_000,
            rounds: 1,
            seed: FLEET_SEED,
            ..FleetConfig::default()
        },
        static_tracer.clone(),
    )
    .expect("1k static fleet runs");
    assert!(
        static_run.clean(),
        "1k static run must be clean: {static_run:?}"
    );

    let cfa_tracer = Tracer::null();
    let cfa_run = run_fleet_with_tracer(
        &FleetConfig {
            devices: 1_000,
            rounds: 1,
            seed: FLEET_SEED,
            cfa: true,
            ..FleetConfig::default()
        },
        cfa_tracer.clone(),
    )
    .expect("1k CFA fleet runs");
    assert!(cfa_run.clean(), "1k CFA run must be clean: {cfa_run:?}");

    let p50 = |tracer: &Tracer, name: &str| {
        tracer
            .histograms()
            .get(name)
            .map_or(0.0, |h| h.summary().p50 as f64)
    };
    let edges = cfa_tracer.counters().get("fleet_cfa_edges").unwrap_or(0);
    let runs = cfa_tracer.counters().get("fleet_cfa_runs").unwrap_or(0);
    let compression = if runs > 0 {
        edges as f64 / runs as f64
    } else {
        0.0
    };
    let ratio = if static_run.verify_p50_ns > 0 {
        cfa_run.verify_p50_ns as f64 / static_run.verify_p50_ns as f64
    } else {
        0.0
    };

    Table {
        id: "verify_cost_breakdown",
        title: "fleet verify cost attribution: static vs control-flow, by stage",
        note: "per-stage medians from the verifier's stage histograms over two clean \
               1k-device runs at the fixed seed; decode is per decoded message, hmac \
               is the per-report share of the batched pass, freshness covers the \
               nonce + digest checks, edge replay and chain refold exist only on the \
               CFA path. edge logs ship run-length compressed: the edges row counts \
               the raw expanded stream, the runs row counts shipped run triples, and \
               the compression ratio is their quotient — all three deterministic for \
               the fixed seed and baseline-gated along with the other count rows; ns \
               and speedup rows are host wall-clock and not gated",
        rows: vec![
            Row::measured_only(
                "reports verified @1k devices",
                static_run.accepted as f64,
                "count",
            ),
            Row::measured_only(
                "cf reports verified @1k devices",
                cfa_run.accepted as f64,
                "count",
            ),
            Row::measured_only("cf edges replayed @1k devices", edges as f64, "count"),
            Row::measured_only("cf runs replayed @1k devices", runs as f64, "count"),
            Row::measured_only("cf log compression ratio @1k devices", compression, "x"),
            Row::measured_only(
                "static verify p50 @1k devices",
                static_run.verify_p50_ns as f64,
                "ns",
            ),
            Row::measured_only(
                "cfa verify p50 @1k devices",
                cfa_run.verify_p50_ns as f64,
                "ns",
            ),
            Row::measured_only("cfa/static verify cost ratio @1k devices", ratio, "speedup"),
            Row::measured_only(
                "stage decode p50 (static)",
                p50(&static_tracer, "lat_fleet_stage_decode"),
                "ns",
            ),
            Row::measured_only(
                "stage hmac p50 (static)",
                p50(&static_tracer, "lat_fleet_stage_hmac"),
                "ns",
            ),
            Row::measured_only(
                "stage freshness p50 (static)",
                p50(&static_tracer, "lat_fleet_stage_freshness"),
                "ns",
            ),
            Row::measured_only(
                "stage hmac p50 (cfa)",
                p50(&cfa_tracer, "lat_fleet_stage_hmac"),
                "ns",
            ),
            Row::measured_only(
                "stage freshness p50 (cfa)",
                p50(&cfa_tracer, "lat_fleet_stage_freshness"),
                "ns",
            ),
            Row::measured_only(
                "stage edge replay p50 (cfa)",
                p50(&cfa_tracer, "lat_fleet_stage_edge_replay"),
                "ns",
            ),
            Row::measured_only(
                "stage chain refold p50 (cfa)",
                p50(&cfa_tracer, "lat_fleet_stage_refold"),
                "ns",
            ),
        ],
    }
}

/// All experiments in paper order.
pub fn all() -> Vec<Table> {
    vec![
        table1_use_case(),
        table2_interrupt_save(),
        table3_interrupt_restore(),
        table4_task_create(),
        table5_relocation(),
        table6_eampu_config(),
        table7_measurement(),
        table8_memory(),
        ipc_latency(),
        ablation_hw_save(),
        lint_throughput(),
        engine_throughput(),
        fleet_throughput(),
        cfa_throughput(),
        verify_cost_breakdown(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shape_holds() {
        let phases = measure_secure_save();
        let baseline = measure_baseline_save();
        // Store dominates wipe; wipe is nonzero only on TyTAN; overhead
        // positive — the paper's qualitative claims.
        assert!(phases.store > phases.wipe);
        assert!(phases.wipe > 0);
        assert!(phases.overall() > baseline);
        // Magnitudes near the paper's.
        assert!((20..=80).contains(&phases.store), "store {}", phases.store);
        assert!((8..=30).contains(&phases.wipe), "wipe {}", phases.wipe);
    }

    #[test]
    fn table3_shape_holds() {
        let secure = measure_secure_restore();
        let baseline = measure_baseline_restore();
        assert!(secure.restore > 0);
        assert!(
            secure.overall() > baseline.overall(),
            "secure restore {} > baseline {}",
            secure.overall(),
            baseline.overall()
        );
    }

    #[test]
    fn table4_shape_holds() {
        let secure = measure_task_create(true);
        let normal = measure_task_create(false);
        assert_eq!(normal.rtm_cycles, 0);
        assert!(secure.rtm_cycles > secure.reloc_cycles);
        assert!(secure.total_cycles() > normal.total_cycles());
        // Same order of magnitude as the paper's 642k / 209k.
        assert!((200_000..=2_000_000).contains(&secure.total_cycles()));
    }

    #[test]
    fn table5_is_linear() {
        let r0 = measure_relocation(0);
        let r1 = measure_relocation(1);
        let r2 = measure_relocation(2);
        let r4 = measure_relocation(4);
        let d1 = r1 - r0;
        assert_eq!(r2 - r1, d1, "constant per-site increment");
        assert_eq!(r4 - r2, 2 * d1);
        assert_eq!(r0, 37, "paper's n=0 fixed cost");
    }

    #[test]
    fn table6_matches_paper_exactly() {
        // The EA-MPU cost model is calibrated to Table 6.
        assert_eq!(measure_eampu_config(1).total(), 1_125);
        assert_eq!(measure_eampu_config(2).total(), 1_144);
        assert_eq!(measure_eampu_config(18).total(), 1_448);
    }

    #[test]
    fn table7_block_scaling() {
        let t1 = measure_measurement(1, 0);
        let t2 = measure_measurement(2, 0);
        let t4 = measure_measurement(4, 0);
        assert_eq!(t2 - t1, 3_900, "per-block cost");
        assert_eq!(t4 - t2, 2 * 3_900);
        let with_reloc = measure_measurement(4, 2);
        assert_eq!(with_reloc - t4, 2 * 500, "per-revert cost");
    }

    #[test]
    fn ipc_phases_positive_and_proxy_dominates() {
        let phases = measure_ipc();
        assert!(phases.proxy >= 1_208, "proxy includes the modelled body");
        assert!(phases.entry > 0);
        assert!(phases.proxy > phases.entry);
    }

    #[test]
    fn table8_round_trips() {
        let table = table8_memory();
        assert!(table.rows.iter().any(|r| r.label.contains("overhead")));
    }

    #[test]
    fn fast_path_counters_report_hit_rates() {
        let counters = fast_path_counters();
        let get = |name: &str| {
            counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("counter {name} missing"))
        };
        for rate in ["predecode_hit_rate", "eampu_cache_hit_rate"] {
            let v = get(rate);
            assert!((0.0..=1.0).contains(&v), "{rate} out of range: {v}");
        }
        // The workload runs a spinning task for half a million cycles:
        // each engine must show its own cache hot. Under the fast
        // interpreter the predecode cache is nearly always hit; under
        // the block translator, compiled blocks are. With the legacy
        // loop (TYTAN_EXEC_ENGINE=legacy) there is no cache and the
        // rates legitimately read 0.
        match sp_emu::MachineConfig::default().engine {
            sp_emu::EngineKind::Legacy => {}
            sp_emu::EngineKind::Fast => {
                assert!(get("predecode_hit_rate") > 0.9);
                assert!(get("emu_predecode_hit") > 0.0);
            }
            sp_emu::EngineKind::Translated => {
                assert!(get("emu_block_compile") > 0.0);
                assert!(get("emu_block_hit") > 0.0);
            }
        }
        assert!(get("emu_instr_alu") > 0.0);
        assert!(get("emu_irq_entry") > 0.0, "tick interrupts fired");
        // The lint counter group rides on the same registry: the shipped
        // images were all checked and none produced an error finding.
        assert_eq!(get("lint_images_checked"), 3.0);
        assert_eq!(get("lint_findings_error"), 0.0);
    }

    #[test]
    fn latency_snapshot_covers_the_required_distributions() {
        let snapshot = latency_snapshot();
        let get = |name: &str| {
            snapshot
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, s)| *s)
                .unwrap_or_else(|| panic!("distribution {name} missing"))
        };
        // The acceptance floor: interrupt entry, context save/restore,
        // IPC round-trip, and load phases all measured on the workload.
        for name in [
            "lat_irq_entry",
            "lat_ctx_save",
            "lat_ctx_restore",
            "lat_ipc_rtt",
            "lat_attest",
            "lat_load_total",
        ] {
            let s = get(name);
            assert!(s.count > 0, "{name} recorded nothing");
            assert!(s.max >= s.p99 && s.p99 >= s.p50, "{name} quantiles ordered");
        }
        // Three loads → three samples per load-phase distribution.
        assert_eq!(get("lat_load_total").count, 3);
        // One synchronous send in the workload.
        assert_eq!(get("lat_ipc_rtt").count, 1);
        assert!(
            get("lat_ipc_rtt").max >= 1_208,
            "proxy body cycles included"
        );
    }

    #[test]
    fn use_case_profile_symbolizes_at_least_95_percent() {
        let report = profile_use_case();
        assert!(report.total > 500_000, "workload attributed its cycles");
        assert!(
            report.coverage() >= 0.95,
            "coverage {:.3} below the acceptance floor\n{}",
            report.coverage(),
            report.top(15)
        );
        let folded = report.folded();
        // Folded-stack lines parse as `stack cycles`.
        for line in folded.lines() {
            let (stack, cycles) = line.rsplit_once(' ').expect("two fields");
            assert!(!stack.is_empty());
            cycles.parse::<u64>().expect("cycle count");
        }
        // The workload's own frames are present and named.
        assert!(folded.contains("traced;"), "worker frames:\n{folded}");
        assert!(folded.contains("[trusted];"), "stub frames");
        assert!(folded.contains("[irq];"), "dispatch frames");
    }

    #[test]
    fn lint_throughput_reports_a_positive_rate() {
        let table = lint_throughput();
        assert_eq!(table.id, "lint_throughput");
        assert!(table.rows[0].measured > 0.0, "images/s must be positive");
        assert!(table.rows[1].measured > table.rows[0].measured);
    }

    #[test]
    fn chrome_trace_export_parses_and_covers_the_layers() {
        use tytan_trace::json::{parse, Value};

        let trace = chrome_trace_use_case();
        let doc = parse(&trace).expect("export is valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        assert!(!events.is_empty());
        let pids: Vec<f64> = events
            .iter()
            .filter_map(|e| e.get("pid").and_then(Value::as_number))
            .collect();
        // The EA-MPU layer (pid 2) reports through counters, not events;
        // emu, rtos, and core all emit spans or marks in this workload.
        for layer in [tytan_trace::Layer::Emu, tytan_trace::Layer::Rtos] {
            assert!(
                pids.contains(&f64::from(layer.pid())),
                "layer {} missing from export",
                layer.name()
            );
        }
        assert!(
            pids.contains(&f64::from(tytan_trace::Layer::Core.pid())),
            "core loader/attestation markers missing"
        );
    }
}
