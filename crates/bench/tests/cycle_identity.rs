//! Cycle-identity: the acceptance harness for the host execution
//! engines.
//!
//! Each test runs a representative paper workload once per
//! [`EngineKind`] — the event-driven fast interpreter, the block
//! translation engine, and the legacy per-instruction reference loop —
//! and asserts the *modelled* results are bit-identical: final clock
//! values, instruction/interrupt counts, and every measured value that
//! feeds a paper-table row. The engines are host-side optimisations
//! only; if any of these diverge, one of them changed the model.

use sp_emu::{EngineKind, MachineConfig};
use std::sync::Arc;
use tytan::platform::{Platform, PlatformConfig};
use tytan::usecase::CruiseControl;
use tytan_bench::experiments;
use tytan_profile::CycleProfiler;
use tytan_trace::{RingRecorder, Tracer};

fn with_engine(engine: EngineKind) -> MachineConfig {
    MachineConfig {
        engine,
        ..MachineConfig::default()
    }
}

fn fast() -> MachineConfig {
    with_engine(EngineKind::Fast)
}

fn legacy() -> MachineConfig {
    with_engine(EngineKind::Legacy)
}

fn translated() -> MachineConfig {
    with_engine(EngineKind::Translated)
}

#[test]
fn table4_secure_load_is_cycle_identical() {
    let report = |config| {
        let r = experiments::measure_task_create_with(true, config);
        (
            r.alloc_cycles,
            r.copy_cycles,
            r.reloc_cycles,
            r.mpu_cycles,
            r.mpu_primary_cycles,
            r.rtm_cycles,
            r.register_cycles,
            r.slices,
            r.started_at,
            r.finished_at,
            r.total_cycles(),
        )
    };
    let reference = report(legacy());
    assert_eq!(report(fast()), reference, "table 4 diverged (fast)");
    assert_eq!(
        report(translated()),
        reference,
        "table 4 diverged (translated)"
    );
}

#[test]
fn table5_relocation_is_cycle_identical() {
    for n in [0u32, 1, 2, 4] {
        let reference = experiments::measure_relocation_with(n, legacy());
        assert_eq!(
            experiments::measure_relocation_with(n, fast()),
            reference,
            "table 5 row ({n} addresses) diverged (fast)"
        );
        assert_eq!(
            experiments::measure_relocation_with(n, translated()),
            reference,
            "table 5 row ({n} addresses) diverged (translated)"
        );
    }
}

#[test]
fn table7_measurement_is_cycle_identical() {
    for (blocks, sites) in [(1u32, 0u32), (4, 0), (4, 2), (8, 0)] {
        let reference = experiments::measure_measurement_with(blocks, sites, legacy());
        assert_eq!(
            experiments::measure_measurement_with(blocks, sites, fast()),
            reference,
            "table 7 row ({blocks} blocks, {sites} sites) diverged (fast)"
        );
        assert_eq!(
            experiments::measure_measurement_with(blocks, sites, translated()),
            reference,
            "table 7 row ({blocks} blocks, {sites} sites) diverged (translated)"
        );
    }
}

#[test]
fn ipc_round_trip_is_cycle_identical() {
    let phases = |config| {
        let p = experiments::measure_ipc_with(config);
        (p.proxy, p.entry)
    };
    let reference = phases(legacy());
    assert_eq!(phases(fast()), reference, "IPC phases diverged (fast)");
    assert_eq!(
        phases(translated()),
        reference,
        "IPC phases diverged (translated)"
    );
}

#[test]
fn tracing_is_cycle_neutral_on_cruise_control_slice() {
    // Same workload as `cruise_control_slice_is_cycle_identical`, but the
    // axis under test is the instrumentation: a fully-wired recorder
    // (machine, EA-MPU, kernel trace, core markers) against no tracer at
    // all, fast path on both sides. If recording an event or bumping a
    // counter ever ticked the machine or changed a decision, these would
    // diverge.
    let run = |traced: bool| {
        let config = PlatformConfig {
            machine: fast(),
            ..Default::default()
        };
        let mut platform: Platform = Platform::boot(config).expect("boots");
        if traced {
            platform.attach_tracer(Tracer::new(Arc::new(RingRecorder::new(1 << 16))));
        }
        let mut scenario = CruiseControl::install(&mut platform).expect("installs");
        platform.run_for(200_000).expect("warmup");
        let before = scenario
            .measure_window(&mut platform, 240_000)
            .expect("before");
        let _ = scenario.activate_cruise_control(&mut platform);
        let during = scenario
            .measure_window(&mut platform, 240_000)
            .expect("during");
        (
            before,
            during,
            platform.machine().cycles(),
            platform.machine().stats(),
        )
    };
    assert_eq!(run(true), run(false), "tracing changed guest cycles");
}

#[test]
fn profiling_is_cycle_neutral_on_cruise_control_slice() {
    // Same workload again, but the axis under test is the *profiling*
    // plane: a per-EIP cycle profiler attached as a CycleObserver plus the
    // latency histograms (registered by attach_tracer, fed by the kernel
    // trap path) against a completely bare platform. Both the observer
    // callbacks and every histogram record are host-side only; any
    // divergence here means attribution ticked the guest clock.
    let run = |profiled: bool| {
        let config = PlatformConfig {
            machine: fast(),
            ..Default::default()
        };
        let mut platform: Platform = Platform::boot(config).expect("boots");
        let attached_at = platform.machine().cycles();
        if profiled {
            platform.attach_tracer(Tracer::null());
            platform.attach_profiler(CycleProfiler::new(platform.machine().ram_size()));
        }
        let mut scenario = CruiseControl::install(&mut platform).expect("installs");
        platform.run_for(200_000).expect("warmup");
        let before = scenario
            .measure_window(&mut platform, 240_000)
            .expect("before");
        let _ = scenario.activate_cruise_control(&mut platform);
        let during = scenario
            .measure_window(&mut platform, 240_000)
            .expect("during");
        if profiled {
            // Exactness, not just neutrality: every cycle since attach is
            // attributed to exactly one bucket.
            let report = platform.profile_report().expect("profiler attached");
            assert_eq!(
                report.total + attached_at,
                platform.machine().cycles(),
                "profiler lost or double-counted cycles"
            );
        }
        (
            before,
            during,
            platform.machine().cycles(),
            platform.machine().stats(),
        )
    };
    assert_eq!(run(true), run(false), "profiling changed guest cycles");
}

#[test]
fn cruise_control_slice_is_cycle_identical() {
    // A slice of the Table 1 use case: boot, install t0/t1, measure a
    // window, then measure a second window while t2 loads interruptibly —
    // ticks, sensor IRQs, the loader, and the RTM all active at once.
    let run = |machine: MachineConfig| {
        let config = PlatformConfig {
            machine,
            ..Default::default()
        };
        let mut platform: Platform = Platform::boot(config).expect("boots");
        let mut scenario = CruiseControl::install(&mut platform).expect("installs");
        platform.run_for(200_000).expect("warmup");
        let before = scenario
            .measure_window(&mut platform, 240_000)
            .expect("before");
        let _ = scenario.activate_cruise_control(&mut platform);
        let during = scenario
            .measure_window(&mut platform, 240_000)
            .expect("during");
        (
            before,
            during,
            platform.machine().cycles(),
            platform.machine().stats(),
        )
    };
    let reference = run(legacy());
    assert_eq!(
        run(fast()),
        reference,
        "cruise-control slice diverged (fast)"
    );
    assert_eq!(
        run(translated()),
        reference,
        "cruise-control slice diverged (translated)"
    );
}
